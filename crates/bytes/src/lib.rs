//! In-repo stand-in for the `bytes` crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the small API subset it actually uses: big-endian
//! integer put/get on a growable write buffer ([`BytesMut`]) and a cheaply
//! cloneable read view ([`Bytes`]). Semantics match the real crate for this
//! subset; anything else is deliberately absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read access to a byte buffer with a cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u32`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64;
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable write buffer; freeze it into [`Bytes`] to read it back.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable, cheaply cloneable
    /// [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            start: 0,
            pos: 0,
            end: None,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte view with a read cursor. Clones share the underlying
/// allocation.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Start of this view within `data`.
    start: usize,
    /// Read cursor, relative to `start`.
    pos: usize,
    /// Exclusive end of this view within `data` (`None` = end of `data`).
    end: Option<usize>,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            pos: 0,
            end: None,
        }
    }

    fn view(&self) -> &[u8] {
        let end = self.end.unwrap_or(self.data.len());
        &self.data[self.start..end]
    }

    /// Length of the view (ignores the cursor).
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.view().is_empty()
    }

    /// A sub-view of this view (cursor reset to its start). Shares the
    /// underlying allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            pos: 0,
            end: Some(self.start + hi),
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let view_start = self.pos;
        assert!(
            self.remaining() >= n,
            "buffer exhausted: need {n}, have {}",
            self.remaining()
        );
        self.pos += n;
        let end = self.end.unwrap_or(self.data.len());
        &self.data[self.start..end][view_start..view_start + n]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
            start: 0,
            pos: 0,
            end: None,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.view() == other.view()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 13);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_sub_view() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3, 4, 5]);
        let b = buf.freeze();
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(s2.as_ref(), &[2, 3]);
    }

    #[test]
    fn clones_do_not_share_the_cursor() {
        let mut buf = BytesMut::new();
        buf.put_u32(42);
        let mut a = buf.freeze();
        let mut b = a.clone();
        assert_eq!(a.get_u32(), 42);
        assert_eq!(a.remaining(), 0);
        assert_eq!(b.remaining(), 4);
        assert_eq!(b.get_u32(), 42);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overread_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.get_u32();
    }
}
