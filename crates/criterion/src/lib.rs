//! In-repo stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach the crates.io registry, so this crate
//! provides the macro/API subset `benches/micro.rs` uses: `criterion_group!`
//! / `criterion_main!`, [`Criterion::bench_function`], benchmark groups,
//! [`Bencher::iter`] and [`Bencher::iter_batched`]. Measurement is a simple
//! best-of-samples wall-clock timer printed as `ns/iter` — adequate for
//! relative comparisons, with none of criterion's statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// How much setup output to keep per batch in [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small routine outputs: batches of many iterations.
    SmallInput,
    /// Large routine outputs: one iteration per batch.
    LargeInput,
}

/// The benchmark driver handed to every registered function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs `f` repeatedly and prints its timing under `name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lowers/raises the number of timing samples taken.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` under `group/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    /// Iterations per sample for the current calibration.
    iters: u64,
    /// Best observed nanoseconds per iteration.
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine` back to back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.record(start.elapsed().as_nanos() as f64, self.iters);
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup
    /// time per batch as well as possible (setup runs outside the timed
    /// region; one input per iteration).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total_ns = 0f64;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.record(total_ns, self.iters);
    }

    fn record(&mut self, total_ns: f64, iters: u64) {
        let per_iter = total_ns / iters.max(1) as f64;
        if per_iter < self.best_ns_per_iter {
            self.best_ns_per_iter = per_iter;
        }
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // calibration: grow the iteration count until one sample takes ≥ ~5ms
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            best_ns_per_iter: f64::INFINITY,
        };
        let start = Instant::now();
        f(&mut b);
        if start.elapsed().as_millis() >= 5 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut bench = Bencher {
        iters,
        best_ns_per_iter: f64::INFINITY,
    };
    for _ in 0..samples {
        f(&mut bench);
    }
    let ns = bench.best_ns_per_iter;
    if ns.is_finite() {
        println!(
            "{name:<40} {:>14} ns/iter (best of {samples} × {iters})",
            format_ns(ns)
        );
    } else {
        println!("{name:<40} (no measurement)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
