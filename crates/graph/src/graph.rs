//! A mutable undirected simple graph with deterministic iteration order.
//!
//! Nodes are dense indices `0..n`. Adjacency is stored as one ordered set
//! per node (`BTreeSet<u32>`), which the linearization engine relies on:
//! "sort the neighbors by identifier" is a plain in-order walk, and
//! iteration order — hence every simulation — is reproducible.

use std::collections::BTreeSet;

/// An undirected simple graph (no self-loops, no parallel edges) over nodes
/// `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<BTreeSet<u32>>,
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph too large for u32 indices");
        Graph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Builds a graph from an edge list. Self-loops are rejected; duplicate
    /// edges are merged.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if it was new.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loop {u}");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge ({u},{v}) out of range"
        );
        let fresh = self.adj[u].insert(v as u32);
        self.adj[v].insert(u as u32);
        fresh
    }

    /// Removes the edge `{u, v}`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let present = self.adj[u].remove(&(v as u32));
        self.adj[v].remove(&(u as u32));
        present
    }

    /// `true` iff the edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&(v as u32))
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Neighbors of `u` in ascending index order.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().map(|&v| v as usize)
    }

    /// All edges, each once, as `(min, max)` pairs in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .map(|&v| v as usize)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Removes all edges incident to `u` (used by the churn/fault injector
    /// when a node crashes). Returns the former neighbors.
    pub fn isolate(&mut self, u: usize) -> Vec<usize> {
        let nbrs: Vec<usize> = self.neighbors(u).collect();
        for &v in &nbrs {
            self.adj[v].remove(&(u as u32));
        }
        self.adj[u].clear();
        nbrs
    }

    /// Appends a fresh isolated node, returning its index (node join under
    /// churn).
    pub fn add_node(&mut self) -> usize {
        let idx = self.adj.len();
        assert!(idx < u32::MAX as usize, "graph too large for u32 indices");
        self.adj.push(BTreeSet::new());
        idx
    }

    /// Degree statistics `(min, max, mean)`; zeros for the empty graph.
    pub fn degree_stats(&self) -> (usize, usize, f64) {
        if self.adj.is_empty() {
            return (0, 0, 0.0);
        }
        let mut min = usize::MAX;
        let mut max = 0;
        let mut sum = 0usize;
        for s in &self.adj {
            min = min.min(s.len());
            max = max.max(s.len());
            sum += s.len();
        }
        (min, max, sum as f64 / self.adj.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge must not be new");
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2).collect::<Vec<_>>(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn edges_listed_once_in_order() {
        let g = Graph::from_edges(4, [(3, 1), (0, 2), (1, 0)]);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn isolate_detaches_node() {
        let mut g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]);
        let nbrs = g.isolate(0);
        assert_eq!(nbrs, vec![1, 2, 3]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn add_node_extends() {
        let mut g = Graph::new(2);
        let idx = g.add_node();
        assert_eq!(idx, 2);
        g.add_edge(idx, 0);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn degree_stats_basic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
        let (min, max, mean) = g.degree_stats();
        assert_eq!((min, max), (1, 3));
        assert!((mean - 1.5).abs() < 1e-12);
    }
}
