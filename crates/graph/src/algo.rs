//! Classic graph algorithms used across the workspace.
//!
//! The consistency checkers need connectivity and component structure ("the
//! network will not be partitioned if it was connected at the beginning");
//! the routing-stretch experiment (E7) needs unweighted shortest paths; the
//! convergence experiments report topology diameters for context.

use std::collections::VecDeque;

use crate::Graph;

/// Marker for "unreachable" in BFS distance arrays.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src`; `UNREACHABLE` where no path exists.
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// One shortest path from `src` to `dst` (inclusive of both ends), or `None`
/// if unreachable. Deterministic: among equal-length paths the smallest
/// predecessor index wins.
pub fn shortest_path(g: &Graph, src: usize, dst: usize) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent = vec![usize::MAX; g.node_count()];
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    'search: while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                if v == dst {
                    break 'search;
                }
                queue.push_back(v);
            }
        }
    }
    if dist[dst] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Connected-component label per node; labels are the smallest node index in
/// each component. Also returns the number of components.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        count += 1;
        label[start] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    (label, count)
}

/// `true` iff the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    let dist = bfs_distances(g, 0);
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Eccentricity of `src` (max BFS distance); `None` if the graph is
/// disconnected from `src`.
pub fn eccentricity(g: &Graph, src: usize) -> Option<u32> {
    let dist = bfs_distances(g, src);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter by all-pairs BFS — O(n·m), fine for the experiment sizes
/// where it is reported. `None` for disconnected graphs.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    let mut max = 0;
    for u in 0..g.node_count() {
        max = max.max(eccentricity(g, u)?);
    }
    Some(max)
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Exact on trees; a good estimate elsewhere.
pub fn diameter_double_sweep(g: &Graph, start: usize) -> Option<u32> {
    let d1 = bfs_distances(g, start);
    let (far, &best) = d1.iter().enumerate().max_by_key(|(_, &d)| d)?;
    if best == UNREACHABLE {
        return None;
    }
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_on_path() {
        let d = bfs_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]);
        let p = shortest_path(&g, 0, 5).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&5));
        assert_eq!(p.len(), 4); // both 0-1-2-5 and 0-3-4-5 have 3 hops
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_trivial_and_missing() {
        let g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(shortest_path(&g, 1, 1), Some(vec![1]));
        assert_eq!(shortest_path(&g, 0, 2), None);
    }

    #[test]
    fn components_count_and_labels() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let (label, count) = components(&g);
        assert_eq!(count, 3);
        assert_eq!(label[0], label[2]);
        assert_eq!(label[4], label[5]);
        assert_ne!(label[0], label[3]);
        assert_eq!(label[3], 3);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&path5()));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter_exact(&path5()), Some(4));
        let cycle = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(diameter_exact(&cycle), Some(3));
        assert_eq!(diameter_exact(&Graph::new(2)), None);
    }

    #[test]
    fn double_sweep_is_exact_on_trees() {
        let tree = Graph::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)]);
        assert_eq!(diameter_double_sweep(&tree, 0), diameter_exact(&tree));
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = path5();
        assert_eq!(eccentricity(&g, 2), Some(2));
        assert_eq!(eccentricity(&g, 0), Some(4));
    }
}
