//! Compressed sparse row (CSR) snapshot of a graph.
//!
//! The discrete-event simulator walks physical neighbor lists on every
//! message hop; a CSR snapshot keeps that walk allocation-free and cache
//! friendly (one contiguous `u32` array) while the mutable [`Graph`] stays
//! the representation of record for topology *changes*.

use crate::Graph;

/// An immutable CSR view of an undirected graph.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[u]..offsets[u+1]` indexes `targets` for node `u`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted neighbor lists.
    targets: Vec<u32>,
}

impl Csr {
    /// Snapshots a [`Graph`].
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0u32);
        for u in 0..n {
            for v in g.neighbors(u) {
                targets.push(v as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Neighbors of `u`, ascending.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Binary-search membership test.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }
}

impl From<&Graph> for Csr {
    fn from(g: &Graph) -> Self {
        Csr::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, [(0, 1), (0, 4), (1, 2), (2, 3), (3, 4), (1, 4)])
    }

    #[test]
    fn snapshot_matches_graph() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 5);
        assert_eq!(csr.edge_count(), g.edge_count());
        for u in 0..5 {
            assert_eq!(csr.degree(u), g.degree(u));
            assert_eq!(
                csr.neighbors(u)
                    .iter()
                    .map(|&v| v as usize)
                    .collect::<Vec<_>>(),
                g.neighbors(u).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn has_edge_agrees() {
        let g = sample();
        let csr: Csr = (&g).into();
        for u in 0..5 {
            for v in 0..5 {
                if u != v {
                    assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn empty_and_isolated() {
        let csr = Csr::from_graph(&Graph::new(3));
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.neighbors(1).is_empty());
    }
}
