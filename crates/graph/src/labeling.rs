//! Mapping between dense graph indices and sparse SSR addresses.
//!
//! SSR "does not assume the nodes' addresses to match the actual network
//! topology": addresses are drawn independently of where a node sits in the
//! physical graph. A [`Labeling`] assigns each dense node index `0..n` a
//! unique 64-bit [`NodeId`] and supports the lookups both directions that
//! the protocols and checkers need.

use std::collections::BTreeMap;

use ssr_types::{NodeId, Rng};

/// A bijection between node indices `0..n` and unique `NodeId`s.
#[derive(Clone, Debug)]
pub struct Labeling {
    ids: Vec<NodeId>,
    index_of: BTreeMap<NodeId, usize>,
}

impl Labeling {
    /// Assigns uniformly random distinct addresses to `n` nodes.
    pub fn random(n: usize, rng: &mut Rng) -> Self {
        let sorted = rng.distinct_node_ids(n);
        // Shuffle so that graph index order carries no information about
        // address order — the paper's premise is that virtual and physical
        // neighborhoods are independent.
        let mut ids = sorted;
        rng.shuffle(&mut ids);
        Self::from_ids(ids)
    }

    /// Uses the given addresses (must be unique).
    ///
    /// # Panics
    /// Panics on duplicate addresses.
    pub fn from_ids(ids: Vec<NodeId>) -> Self {
        let mut index_of = BTreeMap::new();
        for (i, &id) in ids.iter().enumerate() {
            let prev = index_of.insert(id, i);
            assert!(prev.is_none(), "duplicate node id {id}");
        }
        Labeling { ids, index_of }
    }

    /// Sequential addresses `1..=n` scaled by `stride` — convenient for
    /// figure-style examples with small readable ids.
    pub fn sequential(n: usize, stride: u64) -> Self {
        assert!(stride >= 1);
        Self::from_ids((1..=n as u64).map(|i| NodeId(i * stride)).collect())
    }

    /// Number of labeled nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` for the empty labeling.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The address of node index `u`.
    #[inline]
    pub fn id(&self, u: usize) -> NodeId {
        self.ids[u]
    }

    /// The index carrying address `id`, if any.
    #[inline]
    pub fn index(&self, id: NodeId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// All addresses in index order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Node indices sorted by address — the target order of linearization.
    pub fn indices_by_id(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.ids.len()).collect();
        order.sort_by_key(|&u| self.ids[u]);
        order
    }

    /// The index of the node with the numerically largest address — ISPRP's
    /// and VRR's *representative*.
    pub fn representative(&self) -> Option<usize> {
        (0..self.ids.len()).max_by_key(|&u| self.ids[u])
    }

    /// Registers a fresh node (churn join) with a random address distinct
    /// from all existing ones. Returns `(index, id)`; the caller must have
    /// added the node to the graph so indices stay aligned.
    pub fn push_random(&mut self, rng: &mut Rng) -> (usize, NodeId) {
        let id = loop {
            let cand = rng.node_id();
            if !self.index_of.contains_key(&cand) {
                break cand;
            }
        };
        let idx = self.ids.len();
        self.ids.push(id);
        self.index_of.insert(id, idx);
        (idx, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_a_bijection() {
        let mut rng = Rng::new(1);
        let l = Labeling::random(500, &mut rng);
        assert_eq!(l.len(), 500);
        for u in 0..500 {
            assert_eq!(l.index(l.id(u)), Some(u));
        }
    }

    #[test]
    fn sequential_ids() {
        let l = Labeling::sequential(4, 10);
        assert_eq!(l.ids(), &[NodeId(10), NodeId(20), NodeId(30), NodeId(40)]);
        assert_eq!(l.index(NodeId(30)), Some(2));
        assert_eq!(l.index(NodeId(35)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        Labeling::from_ids(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    fn indices_by_id_sorts() {
        let l = Labeling::from_ids(vec![NodeId(30), NodeId(10), NodeId(20)]);
        assert_eq!(l.indices_by_id(), vec![1, 2, 0]);
    }

    #[test]
    fn representative_is_max_address() {
        let l = Labeling::from_ids(vec![NodeId(30), NodeId(99), NodeId(20)]);
        assert_eq!(l.representative(), Some(1));
        assert_eq!(Labeling::from_ids(vec![]).representative(), None);
    }

    #[test]
    fn push_random_extends_bijection() {
        let mut rng = Rng::new(2);
        let mut l = Labeling::sequential(3, 1);
        let (idx, id) = l.push_random(&mut rng);
        assert_eq!(idx, 3);
        assert_eq!(l.index(id), Some(3));
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn shuffled_assignment_differs_from_sorted() {
        // regression guard: Labeling::random must not hand out addresses in
        // index order (that would secretly align physical and virtual space)
        let mut rng = Rng::new(3);
        let l = Labeling::random(100, &mut rng);
        let sorted = {
            let mut v = l.ids().to_vec();
            v.sort();
            v
        };
        assert_ne!(l.ids(), &sorted[..]);
    }
}
