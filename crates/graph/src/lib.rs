//! Graph substrate for the `ssr-linearize` workspace.
//!
//! Everything the paper's evaluation runs on is a synthetic topology: the
//! physical network graph `E_p` of an SSR/VRR deployment (unit-disk graphs
//! for the MANET/sensor motivation), and the random-regular / Erdős–Rényi /
//! power-law graphs on which Onus et al. state their convergence results.
//! This crate provides:
//!
//! * a mutable undirected [`Graph`] with deterministic iteration order (the
//!   round engine of `ssr-linearize` mutates edge sets heavily),
//! * an immutable [`Csr`] snapshot for fast traversal in the simulator,
//! * the topology [`generators`] used by every experiment, and
//! * the classic [`algo`]rithms (BFS, components, diameter, shortest paths)
//!   that the consistency checkers and the stretch experiment need.
//!
//! Node *indices* here are dense `usize`s; the mapping to sparse 64-bit SSR
//! addresses lives in [`labeling`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod csr;
pub mod generators;
pub mod graph;
pub mod labeling;

pub use csr::Csr;
pub use graph::Graph;
pub use labeling::Labeling;
