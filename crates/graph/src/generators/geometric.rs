//! Random geometric (unit-disk) graphs — the standard abstraction of the
//! wireless multi-hop networks (MANETs, sensor/actuator networks) that SSR
//! targets: "nodes are physical neighbors when they are in reach of each
//! other's radio links".

use ssr_types::Rng;

use crate::{algo, Graph};

/// A point in the unit square.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// x coordinate in `[0, 1)`.
    pub x: f64,
    /// y coordinate in `[0, 1)`.
    pub y: f64,
}

impl Point {
    /// Squared Euclidean distance.
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Random geometric graph: `n` nodes uniform in the unit square, an edge
/// whenever two nodes are within `radius`. Returns the graph and the node
/// positions (the MANET experiments report them in traces). Uses a grid
/// bucket index, so construction is near-linear for the sparse radii used in
/// practice.
pub fn random_geometric(n: usize, radius: f64, rng: &mut Rng) -> (Graph, Vec<Point>) {
    assert!(radius > 0.0, "radius must be positive");
    let points: Vec<Point> = (0..n)
        .map(|_| Point {
            x: rng.f64(),
            y: rng.f64(),
        })
        .collect();
    let g = geometric_from_points(&points, radius);
    (g, points)
}

/// Builds the unit-disk graph induced by explicit positions.
pub fn geometric_from_points(points: &[Point], radius: f64) -> Graph {
    let n = points.len();
    let mut g = Graph::new(n);
    let cell = radius.max(1e-9);
    let cells_per_side = ((1.0 / cell).ceil() as usize).max(1);
    let cell_of = |p: Point| -> (usize, usize) {
        (
            ((p.x / cell) as usize).min(cells_per_side - 1),
            ((p.y / cell) as usize).min(cells_per_side - 1),
        )
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(i as u32);
    }
    let r2 = radius * radius;
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &buckets[ny as usize * cells_per_side + nx as usize] {
                    let j = j as usize;
                    if j > i && p.dist2(points[j]) <= r2 {
                        g.add_edge(i, j);
                    }
                }
            }
        }
    }
    g
}

/// The radius at which a random geometric graph becomes connected w.h.p.:
/// `sqrt(ln n / (π n))` — used as the default for experiment topologies,
/// typically scaled by 1.2–1.5 for margin.
pub fn connectivity_radius(n: usize) -> f64 {
    assert!(n >= 2);
    ((n as f64).ln() / (std::f64::consts::PI * n as f64)).sqrt()
}

/// A *connected* unit-disk graph: generates at `scale ×` the connectivity
/// threshold radius and, if the sample still has stragglers, patches the
/// remaining components together with the shortest bridging edges
/// (equivalent to slightly raising those nodes' transmit power — documented
/// substitution, the paper assumes a connected physical graph).
pub fn unit_disk_connected(n: usize, scale: f64, rng: &mut Rng) -> (Graph, Vec<Point>) {
    let radius = connectivity_radius(n) * scale;
    let (mut g, points) = random_geometric(n, radius, rng);
    if !algo::is_connected(&g) {
        bridge_components_by_distance(&mut g, &points);
    }
    (g, points)
}

/// Connects components by repeatedly adding the geometrically shortest edge
/// between the component of node 0 and the rest.
fn bridge_components_by_distance(g: &mut Graph, points: &[Point]) {
    loop {
        let (label, count) = algo::components(g);
        if count <= 1 {
            return;
        }
        let main = label[0];
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..g.node_count() {
            if label[u] != main {
                continue;
            }
            for v in 0..g.node_count() {
                if label[v] == main {
                    continue;
                }
                let d = points[u].dist2(points[v]);
                if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                    best = Some((d, u, v));
                }
            }
        }
        let (_, u, v) = best.expect("disconnected graph must have a bridging pair");
        g.add_edge(u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_zero_point_one_links_close_pairs() {
        let pts = vec![
            Point { x: 0.10, y: 0.10 },
            Point { x: 0.15, y: 0.10 }, // 0.05 from node 0
            Point { x: 0.90, y: 0.90 }, // far away
        ];
        let g = geometric_from_points(&pts, 0.1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn grid_index_agrees_with_brute_force() {
        let mut rng = Rng::new(1);
        let (g, pts) = random_geometric(150, 0.13, &mut rng);
        let r2 = 0.13 * 0.13;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_eq!(
                    g.has_edge(i, j),
                    pts[i].dist2(pts[j]) <= r2,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn connectivity_radius_shrinks_with_n() {
        assert!(connectivity_radius(100) > connectivity_radius(1000));
        assert!(connectivity_radius(1000) > connectivity_radius(10000));
    }

    #[test]
    fn unit_disk_connected_is_connected() {
        for seed in 0..5 {
            let mut rng = Rng::new(seed);
            let (g, _) = unit_disk_connected(200, 1.2, &mut rng);
            assert!(algo::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn unit_disk_connected_even_at_tiny_scale() {
        // scale far below the threshold: bridging must still connect it
        let mut rng = Rng::new(9);
        let (g, _) = unit_disk_connected(100, 0.3, &mut rng);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn deterministic_by_seed() {
        let (a, _) = random_geometric(100, 0.15, &mut Rng::new(42));
        let (b, _) = random_geometric(100, 0.15, &mut Rng::new(42));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn ensure_connected_reexport_compiles() {
        let mut g = Graph::new(3);
        crate::generators::ensure_connected(&mut g, &mut Rng::new(0));
        assert!(algo::is_connected(&g));
    }
}
