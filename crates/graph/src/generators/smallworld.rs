//! Watts–Strogatz small-world graphs: a ring lattice with random rewiring.
//! Included as an extra convergence family for experiment E4 — it
//! interpolates between the (slow) ring lattice and a random graph.

use ssr_types::Rng;

use crate::Graph;

/// Watts–Strogatz: start from a ring lattice where each node connects to its
/// `k` nearest neighbors (`k` even), then rewire each lattice edge's far
/// endpoint with probability `beta` to a uniformly random non-neighbor.
///
/// # Panics
/// Panics unless `k` is even, `k >= 2`, and `n > k`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut Rng) -> Graph {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and positive");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut g = Graph::new(n);
    for u in 0..n {
        for j in 1..=(k / 2) {
            g.add_edge(u, (u + j) % n);
        }
    }
    if beta == 0.0 {
        return g;
    }
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if !rng.chance(beta) {
                continue;
            }
            // pick a new endpoint w != u, not already adjacent
            if g.degree(u) >= n - 1 {
                continue; // saturated, nothing to rewire to
            }
            let w = loop {
                let cand = rng.index(n);
                if cand != u && !g.has_edge(u, cand) {
                    break cand;
                }
            };
            // the edge may have been rewired away already by an earlier step
            if g.remove_edge(u, v) {
                g.add_edge(u, w);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(12, 4, 0.0, &mut Rng::new(1));
        for u in 0..12 {
            assert_eq!(g.degree(u), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 11));
        assert!(g.has_edge(0, 10));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        let g = watts_strogatz(100, 6, 0.3, &mut Rng::new(2));
        assert_eq!(g.edge_count(), 100 * 3);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(200, 4, 0.0, &mut Rng::new(3));
        let small_world = watts_strogatz(200, 4, 0.2, &mut Rng::new(3));
        let d0 = algo::diameter_exact(&lattice).unwrap();
        let d1 = algo::diameter_double_sweep(&small_world, 0);
        assert!(algo::is_connected(&small_world));
        assert!(
            d1.unwrap() < d0,
            "small world {d1:?} not below lattice {d0}"
        );
    }

    #[test]
    fn beta_one_still_valid_simple_graph() {
        let g = watts_strogatz(60, 4, 1.0, &mut Rng::new(4));
        assert_eq!(g.edge_count(), 120);
        for u in 0..60 {
            assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(50, 4, 0.5, &mut Rng::new(5));
        let b = watts_strogatz(50, 4, 0.5, &mut Rng::new(5));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
