//! Erdős–Rényi and random-regular generators.

use ssr_types::Rng;

use crate::Graph;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`. Uses geometric skipping, so the cost is proportional to
/// the number of edges produced, not to `n²`.
pub fn gnp(n: usize, p: f64, rng: &mut Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = Graph::new(n);
    if p <= 0.0 || n < 2 {
        return g;
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        return g;
    }
    // Walk the strictly-upper-triangular pair sequence with geometric jumps.
    let lq = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    loop {
        let r = rng.f64();
        // number of pairs to skip ~ Geometric(p)
        w += 1 + ((1.0 - r).ln() / lq).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v >= n {
            break;
        }
        g.add_edge(w as usize, v as usize);
    }
    g
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges, uniformly.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, rng: &mut Rng) -> Graph {
    let possible = n * n.saturating_sub(1) / 2;
    assert!(m <= possible, "m = {m} exceeds {possible} possible edges");
    let mut g = Graph::new(n);
    let mut placed = 0;
    while placed < m {
        let u = rng.index(n);
        let v = rng.index(n);
        if u != v && g.add_edge(u, v) {
            placed += 1;
        }
    }
    g
}

/// A uniform-ish random `d`-regular graph via the pairing (configuration)
/// model with restarts: `d` stubs per node are matched uniformly; matchings
/// containing self-loops or duplicate edges are rejected and retried. For
/// the `d` used in the experiments (3–8) restarts are cheap.
///
/// # Panics
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, rng: &mut Rng) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    if d == 0 {
        return Graph::new(n);
    }
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    'restart: loop {
        stubs.clear();
        for u in 0..n {
            for _ in 0..d {
                stubs.push(u as u32);
            }
        }
        rng.shuffle(&mut stubs);
        let mut g = Graph::new(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0] as usize, pair[1] as usize);
            if u == v || g.has_edge(u, v) {
                continue 'restart;
            }
            g.add_edge(u, v);
        }
        return g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn gnp_extremes() {
        let mut rng = Rng::new(1);
        assert_eq!(gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = Rng::new(2);
        let n = 400;
        let p = 0.05;
        let m = gnp(n, p, &mut rng).edge_count() as f64;
        let expected = p * (n * (n - 1) / 2) as f64; // 3990
        assert!(
            (m - expected).abs() < 0.15 * expected,
            "m = {m}, expected ~{expected}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        let a = gnp(50, 0.1, &mut Rng::new(7));
        let b = gnp(50, 0.1, &mut Rng::new(7));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnm_exact_count() {
        let mut rng = Rng::new(3);
        let g = gnm(30, 100, &mut rng);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.node_count(), 30);
    }

    #[test]
    fn gnm_full() {
        let mut rng = Rng::new(4);
        let g = gnm(8, 28, &mut rng);
        assert_eq!(g.edge_count(), 28);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_too_many_edges() {
        gnm(4, 7, &mut Rng::new(0));
    }

    #[test]
    fn regular_has_uniform_degree() {
        let mut rng = Rng::new(5);
        for (n, d) in [(20, 3), (40, 4), (64, 6)] {
            let g = random_regular(n, d, &mut rng);
            for u in 0..n {
                assert_eq!(g.degree(u), d, "node {u} in {n}-node {d}-regular");
            }
        }
    }

    #[test]
    fn regular_is_usually_connected() {
        // d >= 3 random regular graphs are connected w.h.p.
        let g = random_regular(100, 3, &mut Rng::new(6));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn regular_degree_zero() {
        let g = random_regular(10, 0, &mut Rng::new(8));
        assert_eq!(g.edge_count(), 0);
    }
}
