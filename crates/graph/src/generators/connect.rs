//! Connectivity patching.
//!
//! Linearization preserves connectedness but cannot create it: "assuming
//! trivially that the physical network graph is connected". Generators whose
//! samples can be fragmented (`G(n,p)` below the threshold, configuration
//! models, sparse unit-disk graphs) are patched here by adding uniformly
//! random inter-component edges until one component remains.

use ssr_types::Rng;

use crate::{algo, Graph};

/// Adds random edges between components until the graph is connected.
/// Returns the number of edges added. Deterministic given the RNG state.
pub fn ensure_connected(g: &mut Graph, rng: &mut Rng) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    let mut added = 0;
    loop {
        let (label, count) = algo::components(g);
        if count <= 1 {
            return added;
        }
        // Pick one representative per component, shuffle, and chain them.
        let mut reps: Vec<usize> = Vec::with_capacity(count);
        let mut seen = std::collections::BTreeSet::new();
        for (u, &lab) in label.iter().enumerate() {
            if seen.insert(lab) {
                reps.push(u);
            }
        }
        rng.shuffle(&mut reps);
        for w in reps.windows(2) {
            // Attach at a random node of each component, not always the rep,
            // to avoid creating artificial hubs.
            let a = random_member(&label, label[w[0]], rng, n);
            let b = random_member(&label, label[w[1]], rng, n);
            if g.add_edge(a, b) {
                added += 1;
            }
        }
    }
}

fn random_member(label: &[usize], component: usize, rng: &mut Rng, n: usize) -> usize {
    // Rejection sampling; components found this way are non-empty.
    loop {
        let u = rng.index(n);
        if label[u] == component {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_connected_is_noop() {
        let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(ensure_connected(&mut g, &mut Rng::new(1)), 0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn connects_isolated_nodes() {
        let mut g = Graph::new(10);
        let added = ensure_connected(&mut g, &mut Rng::new(2));
        assert!(algo::is_connected(&g));
        assert_eq!(
            added, 9,
            "a spanning structure over 10 singletons needs 9 edges"
        );
    }

    #[test]
    fn connects_two_cliques() {
        let mut edges = vec![];
        for u in 0..4 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        let mut g = Graph::from_edges(8, edges);
        let added = ensure_connected(&mut g, &mut Rng::new(3));
        assert!(algo::is_connected(&g));
        assert_eq!(added, 1);
    }

    #[test]
    fn trivial_graphs() {
        let mut g0 = Graph::new(0);
        assert_eq!(ensure_connected(&mut g0, &mut Rng::new(4)), 0);
        let mut g1 = Graph::new(1);
        assert_eq!(ensure_connected(&mut g1, &mut Rng::new(4)), 0);
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut g = Graph::new(20);
            ensure_connected(&mut g, &mut Rng::new(5));
            g.edges().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
