//! Deterministic lattice/structured topologies: figures, unit tests, and
//! worst-case inputs (e.g. pure linearization is slowest on paths and
//! pre-sorted stars).

use crate::Graph;

/// A cycle `0 – 1 – … – (n-1) – 0`.
///
/// # Panics
/// Panics for `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::new(n);
    for u in 0..n {
        g.add_edge(u, (u + 1) % n);
    }
    g
}

/// A path `0 – 1 – … – (n-1)`.
pub fn line(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(u - 1, u);
    }
    g
}

/// A `w × h` grid with 4-neighborhood; node `(x, y)` has index `y*w + x`.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut g = Graph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            if x + 1 < w {
                g.add_edge(u, u + 1);
            }
            if y + 1 < h {
                g.add_edge(u, u + w);
            }
        }
    }
    g
}

/// A `w × h` torus (grid with wrap-around rows and columns).
///
/// # Panics
/// Panics if either dimension is below 3 (wrap-around would create parallel
/// edges or self-loops).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3");
    let mut g = Graph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            g.add_edge(u, y * w + (x + 1) % w);
            g.add_edge(u, ((y + 1) % h) * w + x);
        }
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// A star: node 0 adjacent to all others.
///
/// # Panics
/// Panics for `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "a star needs a center and at least one leaf");
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(0, u);
    }
    g
}

/// A balanced `arity`-ary tree of the given `depth` (depth 0 = single root).
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 1, "arity must be positive");
    // node count = (arity^(depth+1) - 1) / (arity - 1), or depth+1 for arity 1
    let n = if arity == 1 {
        depth + 1
    } else {
        (arity.pow(depth as u32 + 1) - 1) / (arity - 1)
    };
    let mut g = Graph::new(n);
    // children of u are arity*u + 1 ..= arity*u + arity
    for u in 0..n {
        for c in 1..=arity {
            let child = arity * u + c;
            if child < n {
                g.add_edge(u, child);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        for u in 0..5 {
            assert_eq!(g.degree(u), 2);
        }
        assert_eq!(algo::diameter_exact(&g), Some(2));
    }

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(algo::diameter_exact(&g), Some(4));
    }

    #[test]
    fn line_degenerate() {
        assert_eq!(line(0).node_count(), 0);
        assert_eq!(line(1).edge_count(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // h*(w-1) + (h-1)*w = 9+8... check
        assert_eq!(g.edge_count(), 4 * 2 + 3 * 3); // 17
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(4), 4); // center (1,1)
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        for u in 0..20 {
            assert_eq!(g.degree(u), 4);
        }
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(algo::diameter_exact(&g), Some(1));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        for u in 1..7 {
            assert_eq!(g.degree(u), 1);
        }
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3); // 15 nodes
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter_exact(&g), Some(6));
        let unary = balanced_tree(1, 4);
        assert_eq!(unary.node_count(), 5);
        assert_eq!(unary.edge_count(), 4);
    }
}
