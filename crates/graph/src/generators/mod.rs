//! Synthetic topology generators.
//!
//! Every experiment in the reproduction runs on one of these families:
//!
//! * [`random`] — Erdős–Rényi `G(n,p)` / `G(n,m)` and random `d`-regular
//!   graphs (the Onus et al. convergence experiments, E4),
//! * [`powerlaw`] — preferential-attachment and configuration-model
//!   power-law graphs (the "α = 2 converges in < 39 rounds" claim, E5),
//! * [`geometric`] — random geometric / unit-disk graphs, the standard model
//!   of the wireless MANET/sensor networks that motivate SSR (E6–E10),
//! * [`lattice`] — rings, lines, grids, stars, trees, complete graphs (unit
//!   tests, figures, worst cases),
//! * [`smallworld`] — Watts–Strogatz rewiring (extra convergence family).
//!
//! All generators are deterministic functions of `(parameters, rng seed)`.
//! [`connect::ensure_connected`] patches a possibly-fragmented graph into a
//! connected one (documented substitution: the paper assumes "trivially that
//! the physical network graph is connected").

pub mod connect;
pub mod geometric;
pub mod lattice;
pub mod powerlaw;
pub mod random;
pub mod smallworld;

pub use connect::ensure_connected;
pub use geometric::{random_geometric, unit_disk_connected};
pub use lattice::{balanced_tree, complete, grid, line, ring, star, torus};
pub use powerlaw::{barabasi_albert, powerlaw_configuration};
pub use random::{gnm, gnp, random_regular};
pub use smallworld::watts_strogatz;
