//! Power-law (scale-free) topology generators.
//!
//! The paper quotes Onus et al.: linearization with shortcut neighbors
//! converges quickly "for regular random graphs as well as for power law
//! graphs (e.g. a power law graph with α = 2 converges in less than 39
//! rounds)". Experiment E5 reproduces that claim on graphs from the two
//! standard scale-free constructions implemented here.

use ssr_types::Rng;

use crate::Graph;

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes with probability
/// proportional to their degree. Produces a connected graph with a power-law
/// degree tail (exponent ≈ 3).
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut Rng) -> Graph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more nodes than attachments");
    let mut g = Graph::new(n);
    // Seed: clique on m+1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(u, v);
        }
    }
    // `endpoints` holds every edge endpoint once; sampling from it is
    // sampling proportional to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n);
    for (u, v) in g.edges().collect::<Vec<_>>() {
        endpoints.push(u as u32);
        endpoints.push(v as u32);
    }
    for new in (m + 1)..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.index(endpoints.len())] as usize;
            if t != new && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            g.add_edge(new, t);
            endpoints.push(new as u32);
            endpoints.push(t as u32);
        }
    }
    g
}

/// Erased configuration model with degrees drawn from a discrete power law
/// `P(k) ∝ k^{-alpha}` on `k ∈ [min_deg, max_deg]`. Self-loops and duplicate
/// edges from the stub matching are *erased* (the standard simple-graph
/// projection), so realized degrees can be slightly below the drawn ones.
///
/// `max_deg` defaults to `√n·min_deg` when `None` — the structural cutoff
/// that keeps the erasure distortion small.
pub fn powerlaw_configuration(
    n: usize,
    alpha: f64,
    min_deg: usize,
    max_deg: Option<usize>,
    rng: &mut Rng,
) -> Graph {
    assert!(alpha > 0.0, "exponent must be positive");
    assert!(min_deg >= 1, "minimum degree must be at least 1");
    let max_deg = max_deg
        .unwrap_or_else(|| ((n as f64).sqrt() as usize * min_deg).max(min_deg + 1))
        .min(n.saturating_sub(1))
        .max(min_deg);

    // Inverse-CDF table over k = min_deg ..= max_deg.
    let weights: Vec<f64> = (min_deg..=max_deg)
        .map(|k| (k as f64).powf(-alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let sample_degree = |rng: &mut Rng| -> usize {
        let r = rng.f64();
        let idx = cdf.partition_point(|&c| c < r).min(cdf.len() - 1);
        min_deg + idx
    };

    let mut degrees: Vec<usize> = (0..n).map(|_| sample_degree(rng)).collect();
    if degrees.iter().sum::<usize>() % 2 == 1 {
        // Make the stub count even by bumping one node.
        degrees[rng.index(n)] += 1;
    }

    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (u, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(u as u32);
        }
    }
    rng.shuffle(&mut stubs);

    let mut g = Graph::new(n);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0] as usize, pair[1] as usize);
        if u != v {
            g.add_edge(u, v); // duplicate edges merge silently (erasure)
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn ba_node_and_edge_counts() {
        let mut rng = Rng::new(1);
        let (n, m) = (200, 3);
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.node_count(), n);
        // clique edges + m per later node
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
    }

    #[test]
    fn ba_is_connected_with_min_degree() {
        let g = barabasi_albert(500, 2, &mut Rng::new(2));
        assert!(algo::is_connected(&g));
        let (min, _, _) = g.degree_stats();
        assert!(min >= 2);
    }

    #[test]
    fn ba_has_heavy_tail() {
        let g = barabasi_albert(2000, 2, &mut Rng::new(3));
        let (_, max, mean) = g.degree_stats();
        // scale-free hubs: max degree far above the mean
        assert!(max as f64 > 8.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn config_model_degree_bounds() {
        let g = powerlaw_configuration(1000, 2.0, 2, None, &mut Rng::new(4));
        assert_eq!(g.node_count(), 1000);
        let (_, max, mean) = g.degree_stats();
        assert!(mean >= 1.5, "mean degree {mean} too low");
        assert!(max <= 999);
    }

    #[test]
    fn config_model_alpha_controls_tail() {
        // smaller alpha = heavier tail = larger max degree
        let heavy = powerlaw_configuration(3000, 1.8, 2, None, &mut Rng::new(5));
        let light = powerlaw_configuration(3000, 3.5, 2, None, &mut Rng::new(5));
        let (_, max_heavy, _) = heavy.degree_stats();
        let (_, max_light, _) = light.degree_stats();
        assert!(
            max_heavy > max_light,
            "alpha=1.8 max {max_heavy} should exceed alpha=3.5 max {max_light}"
        );
    }

    #[test]
    fn config_model_deterministic() {
        let a = powerlaw_configuration(300, 2.0, 2, None, &mut Rng::new(6));
        let b = powerlaw_configuration(300, 2.0, 2, None, &mut Rng::new(6));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn config_model_respects_explicit_cutoff() {
        let g = powerlaw_configuration(500, 2.0, 1, Some(5), &mut Rng::new(7));
        let (_, max, _) = g.degree_stats();
        // erased model can only lower degrees; the odd-sum bump adds at most 1
        assert!(max <= 6, "max degree {max} exceeds cutoff");
    }
}
