//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ssr_graph::{algo, generators, Csr, Graph};
use ssr_types::Rng;

/// Strategy: a random edge list over `n` nodes.
fn edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n));
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn graph_edge_symmetry((n, edges) in edge_list(40)) {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        for u in 0..n {
            for v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
        // handshake lemma
        let degree_sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn csr_faithful((n, edges) in edge_list(40)) {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let csr = Csr::from_graph(&g);
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for u in 0..n {
            let a: Vec<usize> = csr.neighbors(u).iter().map(|&v| v as usize).collect();
            let b: Vec<usize> = g.neighbors(u).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn components_partition((n, edges) in edge_list(40)) {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let (label, count) = algo::components(&g);
        // label is idempotent: the label of a label is itself
        for u in 0..n {
            prop_assert_eq!(label[label[u]], label[u]);
        }
        // neighbors share labels
        for (u, v) in g.edges() {
            prop_assert_eq!(label[u], label[v]);
        }
        // count matches distinct labels
        let distinct: std::collections::HashSet<_> = label.iter().collect();
        prop_assert_eq!(distinct.len(), count);
        prop_assert_eq!(count == 1, algo::is_connected(&g));
    }

    #[test]
    fn shortest_path_is_shortest((n, edges) in edge_list(30), src_k: usize, dst_k: usize) {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let src = src_k % n;
        let dst = dst_k % n;
        let dist = algo::bfs_distances(&g, src);
        match algo::shortest_path(&g, src, dst) {
            None => prop_assert_eq!(dist[dst], algo::UNREACHABLE),
            Some(p) => {
                prop_assert_eq!(p.len() as u32 - 1, dist[dst]);
                prop_assert_eq!(p[0], src);
                prop_assert_eq!(*p.last().unwrap(), dst);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn ensure_connected_always_connects(n in 2usize..60, seed: u64, p in 0.0f64..0.08) {
        let mut rng = Rng::new(seed);
        let mut g = generators::gnp(n, p, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        prop_assert!(algo::is_connected(&g));
    }

    #[test]
    fn random_regular_degrees(seed: u64, half_n in 4usize..30, d in 1usize..5) {
        let n = 2 * half_n; // n*d always even
        let mut rng = Rng::new(seed);
        let g = generators::random_regular(n, d, &mut rng);
        for u in 0..n {
            prop_assert_eq!(g.degree(u), d);
        }
    }

    #[test]
    fn unit_disk_connected_property(seed: u64, n in 10usize..150) {
        let mut rng = Rng::new(seed);
        let (g, pts) = generators::unit_disk_connected(n, 1.0, &mut rng);
        prop_assert!(algo::is_connected(&g));
        prop_assert_eq!(pts.len(), n);
    }

    #[test]
    fn eccentricity_bounds_diameter((n, edges) in edge_list(25)) {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let mut rng = Rng::new(0);
        generators::ensure_connected(&mut g, &mut rng);
        let d = algo::diameter_exact(&g).unwrap();
        let sweep = algo::diameter_double_sweep(&g, 0).unwrap();
        prop_assert!(sweep <= d);
        prop_assert!(algo::eccentricity(&g, 0).unwrap() <= d);
        // double sweep is at least half the diameter (standard bound: it
        // returns an eccentricity, and every eccentricity >= d/2)
        prop_assert!(2 * sweep >= d);
    }
}
