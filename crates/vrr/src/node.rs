//! The VRR node: hop-by-hop path state plus the two bootstrap modes.
//!
//! **Transport model.** VRR has no source routes, so control traffic moves
//! two ways only:
//!
//! * **along installed paths** ([`VrrMsg::AlongPath`]) — every message to a
//!   known virtual neighbor follows that edge's path state. In particular,
//!   *neighbor notifications lay the new virtual edge as they travel*: when
//!   `v1` introduces `v2 ↔ v3`, it sends each a notification along its own
//!   path to them, and the two half-walks install the path state of the new
//!   edge `v2 – … – v1 – … – v3` hop by hop (with `v1`'s entry joining the
//!   halves). This realizes the paper's remark that for VRR "the
//!   notification messages set up state along their forwarding path";
//! * **greedily toward larger/smaller addresses** ([`VrrMsg::Routed`]) —
//!   only for walks whose destination is *unknown* (ring-closure discovery)
//!   or not yet connected (baseline claims toward the representative).
//!   Discovery walks drop breadcrumb state so the closure acknowledgment
//!   can retrace and solidify the wrap edge.
//!
//! **Linearized mode** mirrors the SSR bootstrap exactly: farthest-pair
//! introductions with a two-ACK handshake and tear-downs, plus CW/CCW
//! discovery. **Baseline mode** adds VRR's own mechanism: periodic hello
//! beacons piggy-backing the *representative*, claim walks toward it, and
//! redirects — the standing dissemination cost that linearization removes.

use std::collections::BTreeMap;

use ssr_sim::{Ctx, Protocol};
use ssr_types::{cw_dist, ring_between_cw, NodeId, SeqNo};

use crate::table::{PathEntry, PathId, PathTable};

const TOKEN_ACT: u64 = 0;
const TOKEN_RETRY_LEFT: u64 = 1;
const TOKEN_RETRY_RIGHT: u64 = 2;
const TOKEN_DISCOVER: u64 = 3;
const TOKEN_BEACON: u64 = 4;
const TOKEN_AUDIT: u64 = 5;

/// Breadcrumb placeholder endpoints (no real node may use them; the id
/// space is random 64-bit, so the extremes are assumed free — asserted at
/// node construction).
const CRUMB_CW: NodeId = NodeId::MAX;
const CRUMB_CCW: NodeId = NodeId::MIN;

/// Which consistency mechanism the node runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VrrMode {
    /// Hello beacons carrying the representative (VRR's original scheme).
    Baseline,
    /// The paper's linearization — no representative, no periodic beacons.
    Linearized,
}

/// Probe travel direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Toward larger addresses.
    Cw,
    /// Toward smaller addresses.
    Ccw,
}

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct VrrConfig {
    /// Bootstrap mode.
    pub mode: VrrMode,
    /// Batching window for linearization actions.
    pub act_interval: u64,
    /// Handshake retry base interval.
    pub retry_interval: u64,
    /// Delay before the first discovery probe.
    pub discover_delay: u64,
    /// Discovery retry interval.
    pub discover_retry: u64,
    /// Beacon period (baseline mode only).
    pub beacon_interval: u64,
    /// Virtual-neighbor audit period: each round a node re-announces itself
    /// along every virtual edge, so a peer that silently dropped the edge
    /// (garbage collection, lost half-lay) re-adopts it — edges stay
    /// *mutual*, which is what keeps linearization progressing. Audits stop
    /// after `audit_quiet` unchanged rounds and restart on any state change.
    pub audit_interval: u64,
    /// Quiet audit rounds before the audit timer stops.
    pub audit_quiet: u32,
    /// TTL for greedily routed walks.
    pub ttl: u16,
}

impl Default for VrrConfig {
    fn default() -> Self {
        VrrConfig {
            mode: VrrMode::Linearized,
            act_interval: 2,
            retry_interval: 24,
            discover_delay: 8,
            discover_retry: 48,
            beacon_interval: 16,
            audit_interval: 48,
            audit_quiet: u32::MAX,
            ttl: 512,
        }
    }
}

/// Payloads of greedy [`VrrMsg::Routed`] walks.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutedPayload {
    /// Ring-closure probe; installs breadcrumb state as it walks, accepted
    /// where no further progress is possible.
    Discover {
        /// Probe origin.
        origin: NodeId,
        /// Travel direction.
        dir: Dir,
        /// Breadcrumb nonce.
        nonce: u64,
    },
    /// Baseline: claim toward the representative; installs real path state
    /// (the target is known), so the representative can answer.
    Claim {
        /// Claimant (origin of the walk).
        from: NodeId,
        /// The representative (walk target).
        to: NodeId,
        /// Path nonce.
        nonce: u64,
    },
    /// Application probe for the routing experiments.
    Probe {
        /// Final destination.
        target: NodeId,
        /// Physical hops so far.
        hops: u32,
    },
}

impl RoutedPayload {
    fn target(&self) -> NodeId {
        match *self {
            RoutedPayload::Discover { dir, .. } => match dir {
                Dir::Cw => NodeId::MAX,
                Dir::Ccw => NodeId::MIN,
            },
            RoutedPayload::Claim { to, .. } => to,
            RoutedPayload::Probe { target, .. } => target,
        }
    }
}

/// Payloads that follow path state.
#[derive(Clone, Debug, PartialEq)]
pub enum PathPayload {
    /// Neighbor notification: "adopt `other` as a virtual neighbor". While
    /// traveling along the carrier path it installs the *half-path* of the
    /// new edge `new_pid` (oriented so the far side leads back through the
    /// initiator).
    Notify {
        /// The new virtual edge being laid.
        new_pid: PathId,
        /// The introduced node (the new edge's far endpoint).
        other: NodeId,
        /// The introducing node (handshake bookkeeping).
        from: NodeId,
        /// Handshake correlation.
        seq: SeqNo,
    },
    /// Handshake acknowledgment back to the initiator along the carrier
    /// path.
    Ack {
        /// The node the sender was pointed to.
        about: NodeId,
        /// Handshake correlation.
        seq: SeqNo,
    },
    /// Removes the path's state at every node it passes.
    Teardown,
    /// Retires a virtual edge *without* removing path state: the recipient
    /// drops the sender from its neighbor sets, but the installed path
    /// survives as extra router state (VRR garbage-collects lazily; tearing
    /// state down eagerly would break in-flight half-lays and introductions
    /// that still ride on it).
    Retire {
        /// The node retiring the edge.
        from: NodeId,
    },
    /// Ring-closure acceptance: retraces a discovery's breadcrumbs toward
    /// the origin, rewriting them into the final wrap edge `final_pid`.
    CloseRing {
        /// The accepting extreme.
        acceptor: NodeId,
        /// The solidified wrap edge.
        final_pid: PathId,
        /// Probe direction answered.
        dir: Dir,
    },
}

/// All VRR messages.
#[derive(Clone, Debug, PartialEq)]
pub enum VrrMsg {
    /// Link-local beacon: own address plus (baseline) the representative.
    Hello {
        /// Sender address.
        id: NodeId,
        /// Largest address the sender knows.
        rep: NodeId,
    },
    /// Greedily routed walk.
    Routed {
        /// Remaining hop budget.
        ttl: u16,
        /// Content.
        payload: RoutedPayload,
    },
    /// Message following installed path state toward one endpoint.
    AlongPath {
        /// Carrier path.
        id: PathId,
        /// Destination endpoint of the carrier path.
        toward: NodeId,
        /// Remaining hop budget (guards against loops from corrupted or
        /// half-rewritten path state).
        ttl: u16,
        /// Content.
        payload: PathPayload,
    },
}

impl VrrMsg {
    /// Metrics kind.
    pub fn kind(&self) -> &'static str {
        match self {
            VrrMsg::Hello { .. } => "hello",
            VrrMsg::Routed { payload, .. } => match payload {
                RoutedPayload::Discover { .. } => "discover",
                RoutedPayload::Claim { .. } => "succ",
                RoutedPayload::Probe { .. } => "data",
            },
            VrrMsg::AlongPath { payload, .. } => match payload {
                PathPayload::Notify { .. } => "notify",
                PathPayload::Ack { .. } => "ack",
                PathPayload::Teardown | PathPayload::Retire { .. } => "teardown",
                PathPayload::CloseRing { .. } => "discover",
            },
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    keep: NodeId,
    drop: NodeId,
    seq: SeqNo,
    keep_acked: bool,
    drop_acked: bool,
    retries: u8,
}

impl Pending {
    fn done(&self) -> bool {
        self.keep_acked && self.drop_acked
    }
}

/// Per-node VRR state.
#[derive(Clone, Debug)]
pub struct VrrNode {
    id: NodeId,
    config: VrrConfig,
    nbr_index: BTreeMap<NodeId, usize>,
    nbr_id: BTreeMap<usize, NodeId>,
    table: PathTable,
    /// Virtual neighbors (including wrap endpoints): address → edge path.
    vnbrs: BTreeMap<NodeId, PathId>,
    wrap_pred: Option<NodeId>,
    wrap_succ: Option<NodeId>,
    /// Path state of the ring-closure edges (kept apart from `vnbrs` so a
    /// peer that is *both* wrap partner and side neighbor — the two-node
    /// network — stays visible in the side sets).
    wrap_pred_path: Option<PathId>,
    wrap_succ_path: Option<PathId>,
    pending_left: Option<Pending>,
    pending_right: Option<Pending>,
    seq: SeqNo,
    /// Baseline: largest known address.
    rep: NodeId,
    /// Baseline: the representative we last claimed toward.
    claimed: Option<NodeId>,
    /// Baseline: paths established by claims (claimant → path).
    claim_paths: BTreeMap<NodeId, PathId>,
    disc_cw_out: bool,
    disc_ccw_out: bool,
    discover_timer_armed: bool,
    act_scheduled: bool,
    audit_armed: bool,
    audit_quiet_rounds: u32,
    audit_last_sig: u64,
    delivered_probes: Vec<(NodeId, u32)>,
}

impl VrrNode {
    /// A node in linearized mode.
    pub fn new(id: NodeId) -> Self {
        Self::with_config(id, VrrConfig::default())
    }

    /// A node with explicit configuration.
    pub fn with_config(id: NodeId, config: VrrConfig) -> Self {
        assert!(
            id != CRUMB_CW && id != CRUMB_CCW,
            "the extreme addresses are reserved as breadcrumb placeholders"
        );
        VrrNode {
            id,
            config,
            nbr_index: BTreeMap::new(),
            nbr_id: BTreeMap::new(),
            table: PathTable::new(),
            vnbrs: BTreeMap::new(),
            wrap_pred: None,
            wrap_succ: None,
            wrap_pred_path: None,
            wrap_succ_path: None,
            pending_left: None,
            pending_right: None,
            seq: SeqNo::ZERO,
            rep: id,
            claimed: None,
            claim_paths: BTreeMap::new(),
            disc_cw_out: false,
            disc_ccw_out: false,
            discover_timer_armed: false,
            act_scheduled: false,
            audit_armed: false,
            audit_quiet_rounds: 0,
            audit_last_sig: 0,
            delivered_probes: Vec::new(),
        }
    }

    /// Signature over the ring-relevant neighbor structure; a change
    /// restarts audits.
    fn audit_signature(&self) -> u64 {
        let sig = self.closest_left().map_or(0, |k| k.raw().rotate_left(11))
            ^ self.closest_right().map_or(0, |k| k.raw().rotate_left(19));
        sig ^ self.wrap_pred.map_or(0, |p| p.raw().rotate_left(23))
            ^ self.wrap_succ.map_or(0, |p| p.raw().rotate_left(37))
    }

    fn arm_audit(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        if !self.audit_armed {
            self.audit_armed = true;
            ctx.set_timer(self.config.audit_interval, TOKEN_AUDIT);
        }
    }

    /// Re-announces this node along every virtual edge so peers keep (or
    /// regain) the mutual view.
    fn run_audit(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        // only the ring-relevant edges need mutuality (auditing every set
        // member would perpetually resurrect delegated edges)
        // wrap partners are deliberately NOT audited (the announce would be
        // adopted as a side-set member and linearized away); lost wraps
        // self-repair through the discovery retry
        let mut edges: Vec<(NodeId, PathId)> = Vec::new();
        for peer in self.closest_left().into_iter().chain(self.closest_right()) {
            if let Some(&pid) = self.vnbrs.get(&peer) {
                edges.push((peer, pid));
            }
        }
        let seq = self.seq.bump();
        for (peer, pid) in edges {
            let payload = PathPayload::Notify {
                new_pid: pid,
                other: self.id,
                from: self.id,
                seq,
            };
            self.send_along(ctx, pid, peer, payload, self.config.ttl);
        }
    }

    /// This node's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The path table (router state). Includes transient discovery
    /// breadcrumbs; see [`VrrNode::state_size`] for the steady-state count.
    pub fn table(&self) -> &PathTable {
        &self.table
    }

    /// Router-state entries excluding transient discovery breadcrumbs.
    pub fn state_size(&self) -> usize {
        self.table
            .iter()
            .filter(|(id, _)| id.ea != CRUMB_CCW && id.eb != CRUMB_CW)
            .count()
    }

    /// Virtual neighbors smaller than this node. Ring-closure edges live in
    /// their own slots ([`VrrNode::wrap_pred`]/[`VrrNode::wrap_succ`]), so
    /// they never pollute the side sets (where linearization would dissolve
    /// them).
    pub fn left_set(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.vnbrs.range(..self.id).map(|(&k, _)| k)
    }

    /// Virtual neighbors larger than this node.
    pub fn right_set(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.vnbrs
            .range(self.id..)
            .map(|(&k, _)| k)
            .filter(move |&k| k != self.id)
    }

    /// Closest left virtual neighbor.
    pub fn closest_left(&self) -> Option<NodeId> {
        self.left_set().last()
    }

    /// Closest right virtual neighbor.
    pub fn closest_right(&self) -> Option<NodeId> {
        self.right_set().next()
    }

    /// Sizes of the two sides.
    pub fn side_sizes(&self) -> (usize, usize) {
        (self.left_set().count(), self.right_set().count())
    }

    /// Ring-closure predecessor edge.
    pub fn wrap_pred(&self) -> Option<NodeId> {
        self.wrap_pred
    }

    /// Ring-closure successor edge.
    pub fn wrap_succ(&self) -> Option<NodeId> {
        self.wrap_succ
    }

    /// Ring successor (closest right, else the wrap edge).
    pub fn ring_succ(&self) -> Option<NodeId> {
        self.closest_right().or(self.wrap_succ)
    }

    /// Ring predecessor.
    pub fn ring_pred(&self) -> Option<NodeId> {
        self.closest_left().or(self.wrap_pred)
    }

    /// Locally consistent on the line.
    pub fn locally_consistent(&self) -> bool {
        let (l, r) = self.side_sizes();
        l <= 1 && r <= 1 && self.pending_left.is_none() && self.pending_right.is_none()
    }

    /// The representative (baseline mode).
    pub fn rep(&self) -> NodeId {
        self.rep
    }

    /// Probes that terminated here.
    pub fn delivered_probes(&self) -> &[(NodeId, u32)] {
        &self.delivered_probes
    }

    // -- transport -------------------------------------------------------------

    /// Best physical next hop toward `target` (clockwise-progress greedy
    /// over physical neighbors and real path endpoints).
    fn greedy_next(&self, target: NodeId) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        let mut consider = |cand: NodeId, link: usize| {
            if cand == self.id
                || cand == CRUMB_CW
                || cand == CRUMB_CCW
                || !ring_between_cw(self.id, cand, target)
            {
                return;
            }
            let remaining = cw_dist(cand, target);
            if best.map(|(r, _)| remaining < r).unwrap_or(true) {
                best = Some((remaining, link));
            }
        };
        for (&id, &idx) in &self.nbr_index {
            consider(id, idx);
        }
        for (ep, link) in self.table.endpoints(self.id) {
            consider(ep, link);
        }
        best.map(|(_, link)| link)
    }

    /// Sends a payload along installed path state toward `toward`. Returns
    /// `false` (with a metric) when no state exists.
    fn send_along(
        &mut self,
        ctx: &mut Ctx<'_, VrrMsg>,
        id: PathId,
        toward: NodeId,
        payload: PathPayload,
        ttl: u16,
    ) -> bool {
        let Some(entry) = self.table.get(&id) else {
            if std::env::var("VRR_DEBUG").is_ok() {
                eprintln!(
                    "[{}] no entry for {:?} toward {} carrying {:?}",
                    self.id, id, toward, payload
                );
            }
            ctx.metrics().incr("fwd.no_path");
            return false;
        };
        let next = if toward == id.ea {
            entry.toward_a
        } else {
            entry.toward_b
        };
        let Some(next) = next else {
            if std::env::var("VRR_DEBUG").is_ok() {
                eprintln!(
                    "[{}] dangling side for {:?} toward {} carrying {:?}",
                    self.id, id, toward, payload
                );
            }
            ctx.metrics().incr("fwd.no_path");
            return false;
        };
        if ttl == 0 {
            ctx.metrics().incr("fwd.ttl_expired");
            return false;
        }
        if payload == PathPayload::Teardown {
            self.table.remove(&id);
        }
        ctx.send(
            next,
            VrrMsg::AlongPath {
                id,
                toward,
                ttl: ttl - 1,
                payload,
            },
        );
        true
    }

    // -- virtual-neighbor management --------------------------------------------

    fn adopt_vnbr(&mut self, other: NodeId, path: PathId) {
        if other != self.id {
            self.vnbrs.insert(other, path);
        }
    }

    /// Removes `other` from the set and *retires* the edge: the peer is told
    /// to drop us from its sets, but the path state is left in place —
    /// eager teardown would cut carrier paths out from under in-flight
    /// half-lays (see `PathPayload::Retire`).
    fn drop_vnbr(&mut self, ctx: &mut Ctx<'_, VrrMsg>, other: NodeId) {
        let Some(path) = self.vnbrs.remove(&other) else {
            return;
        };
        self.send_along(
            ctx,
            path,
            other,
            PathPayload::Retire { from: self.id },
            self.config.ttl,
        );
    }

    // -- linearization -------------------------------------------------------------

    fn schedule_act(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        if !self.act_scheduled {
            self.act_scheduled = true;
            ctx.set_timer(self.config.act_interval, TOKEN_ACT);
        }
        self.arm_audit(ctx);
    }

    fn act(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        self.demote_stale_wraps(ctx);
        self.linearize_side(ctx, Dir::Cw);
        self.linearize_side(ctx, Dir::Ccw);
        self.maybe_discover(ctx);
    }

    fn demote_stale_wraps(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        if self.left_set().next().is_some() {
            if let Some(p) = self.wrap_pred.take() {
                let path = self.wrap_pred_path.take();
                self.retire_wrap(ctx, p, path);
            }
        }
        if self.right_set().next().is_some() {
            if let Some(su) = self.wrap_succ.take() {
                let path = self.wrap_succ_path.take();
                self.retire_wrap(ctx, su, path);
            }
        }
    }

    fn retire_wrap(&mut self, ctx: &mut Ctx<'_, VrrMsg>, other: NodeId, path: Option<PathId>) {
        if let Some(path) = path {
            self.send_along(
                ctx,
                path,
                other,
                PathPayload::Retire { from: self.id },
                self.config.ttl,
            );
        }
    }

    fn linearize_side(&mut self, ctx: &mut Ctx<'_, VrrMsg>, side: Dir) {
        let pending = match side {
            Dir::Cw => &self.pending_right,
            Dir::Ccw => &self.pending_left,
        };
        if pending.is_some() {
            return;
        }
        let (keep, drop) = match side {
            Dir::Cw => {
                let rights: Vec<NodeId> = self.right_set().collect();
                if rights.len() < 2 {
                    return;
                }
                (rights[rights.len() - 2], rights[rights.len() - 1])
            }
            Dir::Ccw => {
                let lefts: Vec<NodeId> = self.left_set().collect();
                if lefts.len() < 2 {
                    return;
                }
                (lefts[1], lefts[0])
            }
        };
        let seq = self.seq.bump();
        self.introduce_pair(ctx, keep, drop, seq);
        let pending = Pending {
            keep,
            drop,
            seq,
            keep_acked: false,
            drop_acked: false,
            retries: 0,
        };
        let token = match side {
            Dir::Cw => {
                self.pending_right = Some(pending);
                TOKEN_RETRY_RIGHT
            }
            Dir::Ccw => {
                self.pending_left = Some(pending);
                TOKEN_RETRY_LEFT
            }
        };
        ctx.set_timer(self.config.retry_interval, token | ((seq.0 as u64) << 8));
    }

    /// Lays the new virtual edge `x ↔ y` through this node: installs the
    /// junction entry and sends both half-laying notifications.
    fn introduce_pair(&mut self, ctx: &mut Ctx<'_, VrrMsg>, x: NodeId, y: NodeId, seq: SeqNo) {
        let (Some(&px), Some(&py)) = (self.path_to(x), self.path_to(y)) else {
            ctx.metrics().incr("fwd.no_path");
            return;
        };
        self.introduce_pair_via(ctx, x, px, y, py, seq);
    }

    /// Like [`Self::introduce_pair`], with explicit carrier paths (used by
    /// discovery arbitration, where one carrier is a breadcrumb trail).
    fn introduce_pair_via(
        &mut self,
        ctx: &mut Ctx<'_, VrrMsg>,
        x: NodeId,
        px: PathId,
        y: NodeId,
        py: PathId,
        seq: SeqNo,
    ) {
        if x == y || x == self.id || y == self.id {
            return;
        }
        let nonce = ctx.rng().next_u64();
        let new_pid = PathId::new(x, y, nonce);
        // junction entry at this node: toward x via px's first hop, toward
        // y via py's first hop
        let hop_x = self.first_hop(px, x);
        let hop_y = self.first_hop(py, y);
        let (Some(hop_x), Some(hop_y)) = (hop_x, hop_y) else {
            ctx.metrics().incr("fwd.no_path");
            return;
        };
        let (toward_a, toward_b) = if x == new_pid.ea {
            (Some(hop_x), Some(hop_y))
        } else {
            (Some(hop_y), Some(hop_x))
        };
        self.table.install(
            new_pid,
            PathEntry {
                ea: new_pid.ea,
                eb: new_pid.eb,
                toward_a,
                toward_b,
            },
        );
        self.send_along(
            ctx,
            px,
            x,
            PathPayload::Notify {
                new_pid,
                other: y,
                from: self.id,
                seq,
            },
            self.config.ttl,
        );
        self.send_along(
            ctx,
            py,
            y,
            PathPayload::Notify {
                new_pid,
                other: x,
                from: self.id,
                seq,
            },
            self.config.ttl,
        );
    }

    fn path_to(&self, other: NodeId) -> Option<&PathId> {
        self.vnbrs
            .get(&other)
            .or_else(|| self.claim_paths.get(&other))
            .or_else(|| {
                (self.wrap_pred == Some(other))
                    .then_some(self.wrap_pred_path.as_ref())
                    .flatten()
            })
            .or_else(|| {
                (self.wrap_succ == Some(other))
                    .then_some(self.wrap_succ_path.as_ref())
                    .flatten()
            })
    }

    fn first_hop(&self, pid: PathId, toward: NodeId) -> Option<usize> {
        let entry = self.table.get(&pid)?;
        if toward == pid.ea {
            entry.toward_a
        } else {
            entry.toward_b
        }
    }

    fn retry_pending(&mut self, ctx: &mut Ctx<'_, VrrMsg>, side: Dir, seq: SeqNo) {
        let slot = match side {
            Dir::Ccw => &mut self.pending_left,
            Dir::Cw => &mut self.pending_right,
        };
        let Some(p) = slot else { return };
        if p.seq != seq {
            return;
        }
        if p.done() {
            *slot = None;
            self.schedule_act(ctx);
            return;
        }
        if p.retries >= 4 {
            // the handshake cannot complete: some endpoint is unreachable
            // over the state we hold for it. Garbage-collect the silent
            // endpoints — if they are alive they will be re-introduced over
            // fresh paths.
            let p = *p;
            *slot = None;
            if !p.keep_acked {
                self.drop_vnbr(ctx, p.keep);
            }
            if !p.drop_acked {
                self.drop_vnbr(ctx, p.drop);
            }
            self.schedule_act(ctx);
            return;
        }
        p.retries += 1;
        let p = *p;
        let delay = self.config.retry_interval << p.retries;
        // relaunch the full introduction (fresh edge nonce)
        self.introduce_pair(ctx, p.keep, p.drop, p.seq);
        let token = match side {
            Dir::Ccw => TOKEN_RETRY_LEFT,
            Dir::Cw => TOKEN_RETRY_RIGHT,
        };
        ctx.set_timer(delay, token | ((seq.0 as u64) << 8));
    }

    fn handle_ack(&mut self, ctx: &mut Ctx<'_, VrrMsg>, about: NodeId, seq: SeqNo) {
        for side in [Dir::Ccw, Dir::Cw] {
            let slot = match side {
                Dir::Ccw => &mut self.pending_left,
                Dir::Cw => &mut self.pending_right,
            };
            if let Some(p) = slot {
                if p.seq == seq {
                    if about == p.drop {
                        p.keep_acked = true;
                    } else if about == p.keep {
                        p.drop_acked = true;
                    }
                    if p.done() {
                        let drop = p.drop;
                        *slot = None;
                        self.drop_vnbr(ctx, drop);
                        self.schedule_act(ctx);
                    }
                    return;
                }
            }
        }
    }

    // -- discovery ---------------------------------------------------------------------

    fn maybe_discover(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        if self.nbr_index.is_empty() {
            return;
        }
        let need_cw = self.left_set().next().is_none() && self.wrap_pred.is_none();
        let need_ccw = self.right_set().next().is_none() && self.wrap_succ.is_none();
        let now = ctx.now().ticks();
        if now < self.config.discover_delay {
            if (need_cw || need_ccw) && !self.discover_timer_armed {
                self.discover_timer_armed = true;
                ctx.set_timer(self.config.discover_delay - now, TOKEN_DISCOVER);
            }
            return;
        }
        if need_cw && !self.disc_cw_out {
            self.disc_cw_out = true;
            self.start_discover(ctx, Dir::Cw);
        }
        if need_ccw && !self.disc_ccw_out {
            self.disc_ccw_out = true;
            self.start_discover(ctx, Dir::Ccw);
        }
        if (need_cw || need_ccw) && !self.discover_timer_armed {
            self.discover_timer_armed = true;
            ctx.set_timer(self.config.discover_retry, TOKEN_DISCOVER);
        }
    }

    /// Breadcrumb path id for a discovery walk.
    fn crumb_pid(origin: NodeId, dir: Dir, nonce: u64) -> PathId {
        match dir {
            Dir::Cw => PathId::new(origin, CRUMB_CW, nonce),
            Dir::Ccw => PathId::new(CRUMB_CCW, origin, nonce),
        }
    }

    fn start_discover(&mut self, ctx: &mut Ctx<'_, VrrMsg>, dir: Dir) {
        let nonce = ctx.rng().next_u64();
        let payload = RoutedPayload::Discover {
            origin: self.id,
            dir,
            nonce,
        };
        let target = payload.target();
        let Some(next) = self.greedy_next(target) else {
            return; // we are the believed extreme ourselves: nothing to do
        };
        let pid = Self::crumb_pid(self.id, dir, nonce);
        self.install_walk_hop(pid, self.id, None, Some(next));
        ctx.send(
            next,
            VrrMsg::Routed {
                ttl: self.config.ttl,
                payload,
            },
        );
    }

    /// Installs one hop of a walk that lays state: `from` leads back toward
    /// `origin`, `to` onward.
    fn install_walk_hop(
        &mut self,
        id: PathId,
        origin: NodeId,
        from: Option<usize>,
        to: Option<usize>,
    ) {
        let (toward_a, toward_b) = if origin == id.ea {
            (from, to)
        } else {
            (to, from)
        };
        self.table.install(
            id,
            PathEntry {
                ea: id.ea,
                eb: id.eb,
                toward_a,
                toward_b,
            },
        );
    }

    /// A discovery probe stalled here — this node is a believed extreme.
    fn accept_discovery(
        &mut self,
        ctx: &mut Ctx<'_, VrrMsg>,
        origin: NodeId,
        dir: Dir,
        nonce: u64,
        came_from: usize,
    ) {
        if origin == self.id {
            return;
        }
        let crumb = Self::crumb_pid(origin, dir, nonce);
        self.table.purge_like(crumb);
        self.install_walk_hop(crumb, origin, Some(came_from), None);
        let slot = match dir {
            Dir::Cw => &mut self.wrap_succ,
            Dir::Ccw => &mut self.wrap_pred,
        };
        let replace = match *slot {
            None => true,
            Some(cur) if cur == origin => true, // duplicate probe: re-answer
            Some(cur) => match dir {
                Dir::Cw => origin < cur,
                Dir::Ccw => origin > cur,
            },
        };
        if !replace {
            // arbitrate: introduce the lesser claimant to the better one —
            // the breadcrumb trail is the carrier back to the origin, and
            // our vnbr path carries the other half. This is what fills a
            // mid-chain node's empty side (it probed believing itself an
            // extreme; the introduction hands it its true neighbor side).
            let cur = slot.unwrap();
            if let Some(&pcur) = self.path_to(cur) {
                let seq = self.seq.bump();
                self.introduce_pair_via(ctx, origin, crumb, cur, pcur, seq);
            }
            return;
        }
        let old = match *slot {
            Some(cur) if cur != origin => Some(cur),
            _ => None,
        };
        *slot = Some(origin);
        let final_pid = PathId::new(self.id, origin, nonce);
        // solidify our end: the crumb entry's origin-side hop becomes the
        // wrap edge's
        self.install_walk_hop(final_pid, origin, Some(came_from), None);
        let old_path = match dir {
            Dir::Cw => self.wrap_succ_path.replace(final_pid),
            Dir::Ccw => self.wrap_pred_path.replace(final_pid),
        };
        if let (Some(old), Some(old_path)) = (old, old_path) {
            self.retire_wrap(ctx, old, Some(old_path));
        }
        // retrace the breadcrumbs, rewriting them into the final edge
        self.send_along(
            ctx,
            crumb,
            origin,
            PathPayload::CloseRing {
                acceptor: self.id,
                final_pid,
                dir,
            },
            self.config.ttl,
        );
        self.table.remove(&crumb);
        self.schedule_act(ctx);
    }

    /// A closure retrace arrived (either mid-path or at the origin).
    #[allow(clippy::too_many_arguments)]
    fn handle_close_ring(
        &mut self,
        ctx: &mut Ctx<'_, VrrMsg>,
        crumb: PathId,
        toward: NodeId,
        acceptor: NodeId,
        final_pid: PathId,
        dir: Dir,
        came_from: usize,
        ttl: u16,
    ) {
        if toward != self.id {
            // rewrite this hop's breadcrumb into the final edge, then keep
            // forwarding under the *crumb* id — downstream nodes have not
            // been rewritten yet
            let next = match self.table.remove(&crumb) {
                Some(entry) => {
                    let toward_origin = entry_hop_toward(&entry, crumb, toward);
                    self.table.install(
                        final_pid,
                        PathEntry {
                            ea: final_pid.ea,
                            eb: final_pid.eb,
                            // same physical hops, new identity; orient by
                            // which endpoint the origin (`toward`) is
                            toward_a: if final_pid.ea == toward {
                                toward_origin
                            } else {
                                Some(came_from)
                            },
                            toward_b: if final_pid.ea == toward {
                                Some(came_from)
                            } else {
                                toward_origin
                            },
                        },
                    );
                    toward_origin
                }
                None => None,
            };
            let Some(next) = next else {
                ctx.metrics().incr("fwd.no_path");
                return;
            };
            ctx.send(
                next,
                VrrMsg::AlongPath {
                    id: crumb,
                    toward,
                    ttl: ttl.saturating_sub(1),
                    payload: PathPayload::CloseRing {
                        acceptor,
                        final_pid,
                        dir,
                    },
                },
            );
            return;
        }
        // we are the probe origin
        self.table.remove(&crumb);
        self.install_walk_hop(final_pid, self.id, None, Some(came_from));
        let slot = match dir {
            Dir::Cw => &mut self.wrap_pred,
            Dir::Ccw => &mut self.wrap_succ,
        };
        match dir {
            Dir::Cw => self.disc_cw_out = false,
            Dir::Ccw => self.disc_ccw_out = false,
        }
        let replace = match *slot {
            None => true,
            Some(cur) if cur == acceptor => true,
            Some(cur) => match dir {
                Dir::Cw => acceptor > cur,
                Dir::Ccw => acceptor < cur,
            },
        };
        if replace {
            let old = match *slot {
                Some(cur) if cur != acceptor => Some(cur),
                _ => None,
            };
            *slot = Some(acceptor);
            let old_path = match dir {
                Dir::Cw => self.wrap_pred_path.replace(final_pid),
                Dir::Ccw => self.wrap_succ_path.replace(final_pid),
            };
            if let (Some(old), Some(old_path)) = (old, old_path) {
                self.retire_wrap(ctx, old, Some(old_path));
            }
        } else if let Some(cur) = *slot {
            // keep the better closure and introduce the redundant acceptor
            // to it (final_pid is a working carrier to the acceptor)
            if cur != acceptor {
                if let Some(&pcur) = self.path_to(cur) {
                    let seq = self.seq.bump();
                    self.introduce_pair_via(ctx, acceptor, final_pid, cur, pcur, seq);
                }
            }
        }
        self.schedule_act(ctx);
    }

    // -- baseline mode ---------------------------------------------------------------

    fn baseline_learn_rep(&mut self, ctx: &mut Ctx<'_, VrrMsg>, rep: NodeId) {
        if rep > self.rep {
            self.rep = rep;
            if self.claimed != Some(rep) && rep != self.id {
                self.claimed = Some(rep);
                let nonce = ctx.rng().next_u64();
                let payload = RoutedPayload::Claim {
                    from: self.id,
                    to: rep,
                    nonce,
                };
                let Some(next) = self.greedy_next(rep) else {
                    return;
                };
                let pid = PathId::new(self.id, rep, nonce);
                self.install_walk_hop(pid, self.id, None, Some(next));
                ctx.send(
                    next,
                    VrrMsg::Routed {
                        ttl: self.config.ttl,
                        payload,
                    },
                );
            }
        }
    }

    /// Baseline claim arrived (the claim's walk installed a path from the
    /// claimant to us). Adopt the claimant if it is our best ring
    /// predecessor candidate; otherwise introduce it to the best node we
    /// know between it and us.
    fn handle_claim_arrival(
        &mut self,
        ctx: &mut Ctx<'_, VrrMsg>,
        claimant: NodeId,
        nonce: u64,
        came_from: usize,
    ) {
        if claimant == self.id {
            return;
        }
        let pid = PathId::new(claimant, self.id, nonce);
        self.install_walk_hop(pid, claimant, Some(came_from), None);
        self.claim_paths.insert(claimant, pid);
        let best_between = self
            .vnbrs
            .keys()
            .copied()
            .chain(self.claim_paths.keys().copied())
            .filter(|&d| d != claimant && d != self.id)
            .filter(|&d| ring_between_cw(claimant, d, self.id))
            .min_by_key(|&d| cw_dist(claimant, d));
        match best_between {
            Some(better) => {
                let seq = self.seq.bump();
                self.introduce_pair(ctx, claimant, better, seq);
            }
            None => {
                // direct ring-predecessor candidate: adopt mutually by
                // laying a notify back along the claim path
                self.adopt_vnbr(claimant, pid);
                let seq = self.seq.bump();
                let ack_pid = PathId::new(claimant, self.id, nonce.wrapping_add(1));
                let _ = ack_pid;
                let payload = PathPayload::Notify {
                    new_pid: pid,
                    other: self.id,
                    from: self.id,
                    seq,
                };
                self.send_along(ctx, pid, claimant, payload, self.config.ttl);
            }
        }
        self.schedule_act(ctx);
    }

    // -- hello --------------------------------------------------------------------

    fn handle_hello(
        &mut self,
        ctx: &mut Ctx<'_, VrrMsg>,
        from_idx: usize,
        id: NodeId,
        rep: NodeId,
    ) {
        let known = self.nbr_id.get(&from_idx) == Some(&id);
        self.nbr_index.insert(id, from_idx);
        self.nbr_id.insert(from_idx, id);
        if !known {
            // E_v := E_p — a physical link is a trivially installed path
            let pid = PathId::new(self.id, id, 0);
            self.install_walk_hop(pid, self.id, None, Some(from_idx));
            self.adopt_vnbr(id, pid);
            ctx.send(
                from_idx,
                VrrMsg::Hello {
                    id: self.id,
                    rep: self.rep,
                },
            );
            self.schedule_act(ctx);
        }
        if self.config.mode == VrrMode::Baseline {
            self.baseline_learn_rep(ctx, rep);
            self.baseline_learn_rep(ctx, id);
        }
    }
}

/// The hop of `entry` leading toward the endpoint of `id` that equals
/// `toward` — helper for breadcrumb rewriting.
fn entry_hop_toward(entry: &PathEntry, id: PathId, toward: NodeId) -> Option<usize> {
    if toward == id.ea {
        entry.toward_a
    } else {
        entry.toward_b
    }
}

impl Protocol for VrrNode {
    type Msg = VrrMsg;

    fn on_init(&mut self, ctx: &mut Ctx<'_, VrrMsg>) {
        ctx.broadcast(VrrMsg::Hello {
            id: self.id,
            rep: self.rep,
        });
        ctx.set_timer(self.config.act_interval, TOKEN_ACT);
        if self.config.mode == VrrMode::Baseline {
            ctx.set_timer(self.config.beacon_interval, TOKEN_BEACON);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, VrrMsg>, from: usize, msg: VrrMsg) {
        match msg {
            VrrMsg::Hello { id, rep } => self.handle_hello(ctx, from, id, rep),
            VrrMsg::Routed { ttl, payload } => match payload {
                RoutedPayload::Discover { origin, dir, nonce } => {
                    let target = payload.target();
                    match self.greedy_next(target) {
                        Some(next) if ttl > 0 => {
                            let pid = Self::crumb_pid(origin, dir, nonce);
                            // only the freshest probe's crumbs are kept:
                            // stale trails from abandoned walks would leak
                            self.table.purge_like(pid);
                            self.install_walk_hop(pid, origin, Some(from), Some(next));
                            ctx.send(
                                next,
                                VrrMsg::Routed {
                                    ttl: ttl - 1,
                                    payload,
                                },
                            );
                        }
                        _ => self.accept_discovery(ctx, origin, dir, nonce, from),
                    }
                }
                RoutedPayload::Claim {
                    from: claimant,
                    to,
                    nonce,
                } => {
                    if to == self.id {
                        self.handle_claim_arrival(ctx, claimant, nonce, from);
                        return;
                    }
                    match self.greedy_next(to) {
                        Some(next) if ttl > 0 => {
                            let pid = PathId::new(claimant, to, nonce);
                            self.install_walk_hop(pid, claimant, Some(from), Some(next));
                            ctx.send(
                                next,
                                VrrMsg::Routed {
                                    ttl: ttl - 1,
                                    payload: RoutedPayload::Claim {
                                        from: claimant,
                                        to,
                                        nonce,
                                    },
                                },
                            );
                        }
                        _ => {
                            // claim stalled: treat this node as the best
                            // reachable representative-ward point
                            self.handle_claim_arrival(ctx, claimant, nonce, from);
                        }
                    }
                }
                RoutedPayload::Probe { target, hops } => {
                    if target == self.id {
                        self.delivered_probes.push((target, hops));
                        ctx.metrics().incr("probe.delivered");
                        return;
                    }
                    match self.greedy_next(target) {
                        Some(next) if ttl > 0 => ctx.send(
                            next,
                            VrrMsg::Routed {
                                ttl: ttl - 1,
                                payload: RoutedPayload::Probe {
                                    target,
                                    hops: hops + 1,
                                },
                            },
                        ),
                        _ => ctx.metrics().incr("probe.stuck"),
                    }
                }
            },
            VrrMsg::AlongPath {
                id,
                toward,
                ttl,
                payload,
            } => {
                if ttl == 0 {
                    ctx.metrics().incr("fwd.ttl_expired");
                    return;
                }
                let at_end = toward == self.id;
                match payload {
                    PathPayload::Notify {
                        new_pid,
                        other,
                        from: initiator,
                        seq,
                    } => {
                        // lay the half-path: `from` link leads back toward
                        // the initiator (and on to `other`)
                        if at_end {
                            self.install_walk_hop(new_pid, self.id, None, Some(from));
                            self.adopt_vnbr(other, new_pid);
                            let ack = PathPayload::Ack { about: other, seq };
                            self.send_along(ctx, id, initiator, ack, self.config.ttl);
                            self.schedule_act(ctx);
                        } else {
                            // orientation: this hop leads toward `toward`
                            // (the target endpoint); the reverse side leads
                            // toward `other` through the initiator
                            let entry = self.table.get(&id).copied();
                            let next = entry.and_then(|e| entry_hop_toward(&e, id, toward));
                            let Some(next) = next else {
                                ctx.metrics().incr("fwd.no_path");
                                return;
                            };
                            // pinch merge: if the other half of this new
                            // edge already laid state here (the two carrier
                            // paths share this node), keep its *forward*
                            // hop toward `other` — the merged entry
                            // shortcuts the detour through the initiator
                            // and prevents forwarding loops
                            let their_forward = self
                                .table
                                .get(&new_pid)
                                .and_then(|e| entry_hop_toward(e, new_pid, other));
                            let back = their_forward.unwrap_or(from);
                            let (a, b) = if toward == new_pid.ea {
                                (Some(next), Some(back))
                            } else {
                                (Some(back), Some(next))
                            };
                            self.table.install(
                                new_pid,
                                PathEntry {
                                    ea: new_pid.ea,
                                    eb: new_pid.eb,
                                    toward_a: a,
                                    toward_b: b,
                                },
                            );
                            ctx.send(
                                next,
                                VrrMsg::AlongPath {
                                    id,
                                    toward,
                                    ttl: ttl - 1,
                                    payload: PathPayload::Notify {
                                        new_pid,
                                        other,
                                        from: initiator,
                                        seq,
                                    },
                                },
                            );
                        }
                    }
                    PathPayload::Ack { about, seq } => {
                        if at_end {
                            self.handle_ack(ctx, about, seq);
                        } else {
                            self.send_along(ctx, id, toward, PathPayload::Ack { about, seq }, ttl);
                        }
                    }
                    PathPayload::Retire { from: retiree } => {
                        if at_end {
                            self.vnbrs.remove(&retiree);
                            if self.wrap_pred == Some(retiree) {
                                self.wrap_pred = None;
                                self.wrap_pred_path = None;
                            }
                            if self.wrap_succ == Some(retiree) {
                                self.wrap_succ = None;
                                self.wrap_succ_path = None;
                            }
                            self.schedule_act(ctx);
                        } else {
                            self.send_along(
                                ctx,
                                id,
                                toward,
                                PathPayload::Retire { from: retiree },
                                ttl,
                            );
                        }
                    }
                    PathPayload::Teardown => {
                        if at_end {
                            self.table.remove(&id);
                            let other = if id.ea == self.id { id.eb } else { id.ea };
                            if self.vnbrs.get(&other) == Some(&id) {
                                self.vnbrs.remove(&other);
                            }
                            if self.wrap_pred_path == Some(id) {
                                self.wrap_pred = None;
                                self.wrap_pred_path = None;
                            }
                            if self.wrap_succ_path == Some(id) {
                                self.wrap_succ = None;
                                self.wrap_succ_path = None;
                            }
                            self.claim_paths.retain(|_, &mut p| p != id);
                            self.schedule_act(ctx);
                        } else {
                            self.send_along(ctx, id, toward, PathPayload::Teardown, ttl);
                        }
                    }
                    PathPayload::CloseRing {
                        acceptor,
                        final_pid,
                        dir,
                    } => {
                        self.handle_close_ring(
                            ctx, id, toward, acceptor, final_pid, dir, from, ttl,
                        );
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, VrrMsg>, token: u64) {
        let seq = SeqNo((token >> 8) as u32);
        match token & 0xFF {
            TOKEN_ACT => {
                self.act_scheduled = false;
                self.act(ctx);
            }
            TOKEN_RETRY_LEFT => self.retry_pending(ctx, Dir::Ccw, seq),
            TOKEN_RETRY_RIGHT => self.retry_pending(ctx, Dir::Cw, seq),
            TOKEN_DISCOVER => {
                self.discover_timer_armed = false;
                self.disc_cw_out = false;
                self.disc_ccw_out = false;
                self.maybe_discover(ctx);
            }
            TOKEN_AUDIT => {
                self.audit_armed = false;
                let sig = self.audit_signature();
                if sig != self.audit_last_sig {
                    self.audit_last_sig = sig;
                    self.audit_quiet_rounds = 0;
                } else {
                    self.audit_quiet_rounds += 1;
                }
                if self.audit_quiet_rounds < self.config.audit_quiet {
                    self.run_audit(ctx);
                    self.arm_audit(ctx);
                }
            }
            TOKEN_BEACON if self.config.mode == VrrMode::Baseline => {
                ctx.broadcast(VrrMsg::Hello {
                    id: self.id,
                    rep: self.rep,
                });
                ctx.set_timer(self.config.beacon_interval, TOKEN_BEACON);
            }
            _ => {}
        }
    }

    fn on_neighbor_down(&mut self, ctx: &mut Ctx<'_, VrrMsg>, neighbor: usize) {
        let Some(id) = self.nbr_id.remove(&neighbor) else {
            return;
        };
        self.nbr_index.remove(&id);
        let dead = self.table.purge_via(neighbor);
        for pid in dead {
            let other = if pid.ea == self.id { pid.eb } else { pid.ea };
            if self.vnbrs.get(&other) == Some(&pid) {
                self.vnbrs.remove(&other);
            }
            if self.wrap_pred_path == Some(pid) {
                self.wrap_pred = None;
                self.wrap_pred_path = None;
            }
            if self.wrap_succ_path == Some(pid) {
                self.wrap_succ = None;
                self.wrap_succ_path = None;
            }
            self.claim_paths.retain(|_, &mut p| p != pid);
        }
        self.schedule_act(ctx);
    }

    fn on_neighbor_up(&mut self, ctx: &mut Ctx<'_, VrrMsg>, neighbor: usize) {
        ctx.send(
            neighbor,
            VrrMsg::Hello {
                id: self.id,
                rep: self.rep,
            },
        );
    }

    fn reset(&mut self) {
        *self = VrrNode::with_config(self.id, self.config);
    }

    fn kind(msg: &VrrMsg) -> &'static str {
        msg.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_state() {
        let n = VrrNode::new(NodeId(5));
        assert_eq!(n.id(), NodeId(5));
        assert_eq!(n.side_sizes(), (0, 0));
        assert!(n.locally_consistent());
        assert!(n.table().is_empty());
        assert_eq!(n.state_size(), 0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn extreme_addresses_rejected() {
        VrrNode::new(NodeId::MAX);
    }

    #[test]
    fn payload_targets() {
        assert_eq!(
            RoutedPayload::Discover {
                origin: NodeId(4),
                dir: Dir::Cw,
                nonce: 0
            }
            .target(),
            NodeId::MAX
        );
        assert_eq!(
            RoutedPayload::Discover {
                origin: NodeId(4),
                dir: Dir::Ccw,
                nonce: 0
            }
            .target(),
            NodeId::MIN
        );
        assert_eq!(
            RoutedPayload::Claim {
                from: NodeId(1),
                to: NodeId(9),
                nonce: 0
            }
            .target(),
            NodeId(9)
        );
        assert_eq!(
            RoutedPayload::Probe {
                target: NodeId(7),
                hops: 0
            }
            .target(),
            NodeId(7)
        );
    }

    #[test]
    fn message_kinds() {
        assert_eq!(
            VrrMsg::Hello {
                id: NodeId(0),
                rep: NodeId(0)
            }
            .kind(),
            "hello"
        );
        let pid = PathId::new(NodeId(1), NodeId(2), 0);
        assert_eq!(
            VrrMsg::AlongPath {
                id: pid,
                toward: NodeId(1),
                ttl: 8,
                payload: PathPayload::Teardown
            }
            .kind(),
            "teardown"
        );
        assert_eq!(
            VrrMsg::Routed {
                ttl: 1,
                payload: RoutedPayload::Claim {
                    from: NodeId(1),
                    to: NodeId(2),
                    nonce: 0
                }
            }
            .kind(),
            "succ"
        );
    }

    #[test]
    fn crumb_pids_use_placeholders() {
        let cw = VrrNode::crumb_pid(NodeId(9), Dir::Cw, 7);
        assert_eq!(cw.eb, NodeId::MAX);
        let ccw = VrrNode::crumb_pid(NodeId(9), Dir::Ccw, 7);
        assert_eq!(ccw.ea, NodeId::MIN);
    }

    #[test]
    fn reset_keeps_identity() {
        let mut n = VrrNode::new(NodeId(5));
        n.wrap_succ = Some(NodeId(1));
        n.reset();
        assert_eq!(n.id(), NodeId(5));
        assert!(n.wrap_succ().is_none());
    }

    #[test]
    fn state_size_excludes_breadcrumbs() {
        let mut n = VrrNode::new(NodeId(5));
        let crumb = VrrNode::crumb_pid(NodeId(5), Dir::Cw, 1);
        n.install_walk_hop(crumb, NodeId(5), None, Some(0));
        assert_eq!(n.table().len(), 1);
        assert_eq!(n.state_size(), 0);
        let real = PathId::new(NodeId(5), NodeId(9), 1);
        n.install_walk_hop(real, NodeId(5), None, Some(0));
        assert_eq!(n.state_size(), 1);
    }
}
