//! Per-hop greedy routing over VRR path state.
//!
//! VRR forwards a packet one *physical* hop at a time: the current node
//! looks at every endpoint reachable through its path table (plus its
//! physical neighbors), picks the one virtually closest to the destination
//! (with the clockwise-progress constraint), and hands the packet to the
//! physical next hop toward that endpoint — where the decision is made
//! afresh. This module walks that process over a snapshot of all node
//! states, mirroring `ssr_core::routing` for experiment E10.

use std::collections::BTreeMap;

use ssr_types::{cw_dist, ring_between_cw, NodeId};

use crate::node::VrrNode;

/// Outcome of routing one packet (physical hops only — VRR has no
/// virtual-hop notion at forwarding time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VrrRouteOutcome {
    /// Arrived after this many physical hops.
    Delivered {
        /// Physical link traversals.
        physical_hops: u32,
    },
    /// A node had no candidate making clockwise progress.
    Stuck {
        /// Where the packet stalled.
        at: NodeId,
    },
    /// Hop budget exhausted.
    Exhausted,
}

impl VrrRouteOutcome {
    /// `true` iff the packet arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, VrrRouteOutcome::Delivered { .. })
    }
}

/// Immutable routing view over all VRR nodes.
pub struct VrrRoutingView<'a> {
    by_id: BTreeMap<NodeId, &'a VrrNode>,
    /// simulator index → node id (path tables store physical link indices).
    id_of_index: Vec<NodeId>,
}

impl<'a> VrrRoutingView<'a> {
    /// Builds the view; `nodes[i]` must be the protocol at simulator index
    /// `i`.
    pub fn new(nodes: &'a [VrrNode]) -> Self {
        VrrRoutingView {
            by_id: nodes.iter().map(|n| (n.id(), n)).collect(),
            id_of_index: nodes.iter().map(|n| n.id()).collect(),
        }
    }

    /// One forwarding decision at `node`: the physical next hop index.
    fn next_hop(&self, node: &VrrNode, dst: NodeId) -> Option<usize> {
        let me = node.id();
        let mut best: Option<(u64, usize)> = None;
        let mut consider = |cand: NodeId, link: usize| {
            if cand == me || !ring_between_cw(me, cand, dst) {
                return;
            }
            let remaining = cw_dist(cand, dst);
            if best.map(|(r, _)| remaining < r).unwrap_or(true) {
                best = Some((remaining, link));
            }
        };
        for (ep, link) in node.table().endpoints(me) {
            consider(ep, link);
        }
        best.map(|(_, link)| link)
    }

    /// Routes a packet from `src` to `dst`, at most `max_hops` physical
    /// hops.
    pub fn route(&self, src: NodeId, dst: NodeId, max_hops: u32) -> VrrRouteOutcome {
        if src == dst {
            return VrrRouteOutcome::Delivered { physical_hops: 0 };
        }
        let Some(mut cur) = self.by_id.get(&src).copied() else {
            return VrrRouteOutcome::Stuck { at: src };
        };
        let mut hops = 0u32;
        while hops < max_hops {
            let Some(link) = self.next_hop(cur, dst) else {
                return VrrRouteOutcome::Stuck { at: cur.id() };
            };
            let Some(&next_id) = self.id_of_index.get(link) else {
                return VrrRouteOutcome::Stuck { at: cur.id() };
            };
            hops += 1;
            if next_id == dst {
                return VrrRouteOutcome::Delivered {
                    physical_hops: hops,
                };
            }
            let Some(next) = self.by_id.get(&next_id).copied() else {
                return VrrRouteOutcome::Stuck { at: next_id };
            };
            cur = next;
        }
        VrrRouteOutcome::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{run_vrr_bootstrap, vrr_ring_consistent};
    use crate::node::VrrMode;
    use ssr_graph::{generators, Labeling};
    use ssr_sim::LinkConfig;

    /// Bootstraps a small line network and routes over the converged state.
    fn converged_line(n: usize) -> (Vec<VrrNode>, Labeling) {
        let topo = generators::line(n);
        let labels = Labeling::sequential(n, 10);
        let (report, sim) = run_vrr_bootstrap(
            &topo,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            1,
            100_000,
        );
        assert!(report.converged, "{report:?}");
        (sim.protocols().to_vec(), labels)
    }

    #[test]
    fn routes_all_pairs_on_a_converged_line() {
        let (nodes, labels) = converged_line(6);
        assert!(vrr_ring_consistent(&nodes));
        let view = VrrRoutingView::new(&nodes);
        for a in 0..6 {
            for b in 0..6 {
                let out = view.route(labels.id(a), labels.id(b), 64);
                assert!(out.delivered(), "{a}->{b}: {out:?}");
            }
        }
    }

    #[test]
    fn self_route_is_free() {
        let (nodes, labels) = converged_line(4);
        let view = VrrRoutingView::new(&nodes);
        assert_eq!(
            view.route(labels.id(2), labels.id(2), 8),
            VrrRouteOutcome::Delivered { physical_hops: 0 }
        );
    }

    #[test]
    fn hop_budget_is_respected() {
        let (nodes, labels) = converged_line(6);
        let view = VrrRoutingView::new(&nodes);
        // the two line ends are 5 physical hops apart; a budget of 1 cannot
        // reach (either Exhausted, or Stuck if no candidate)
        let out = view.route(labels.id(0), labels.id(5), 1);
        assert!(!out.delivered(), "{out:?}");
    }

    #[test]
    fn unknown_source_is_stuck() {
        let (nodes, _) = converged_line(4);
        let view = VrrRoutingView::new(&nodes);
        let ghost = ssr_types::NodeId(999_999);
        assert_eq!(
            view.route(ghost, ssr_types::NodeId(10), 8),
            VrrRouteOutcome::Stuck { at: ghost }
        );
    }

    #[test]
    fn physical_hops_are_counted() {
        let (nodes, labels) = converged_line(5);
        let view = VrrRoutingView::new(&nodes);
        match view.route(labels.id(0), labels.id(4), 64) {
            VrrRouteOutcome::Delivered { physical_hops } => {
                assert_eq!(physical_hops, 4, "line end-to-end is 4 physical hops");
            }
            other => panic!("{other:?}"),
        }
    }
}
