//! The VRR path table.
//!
//! One entry per virtual path traversing this node. Endpoint nodes hold an
//! entry with one dangling side. Entry count *at every traversed node* is
//! VRR's router-state cost — contrast with SSR, whose source routes cost
//! state only at the endpoints (experiment E10 measures both).

use std::collections::BTreeMap;

use ssr_types::NodeId;

/// One virtual path's state at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathEntry {
    /// Smaller endpoint address.
    pub ea: NodeId,
    /// Larger endpoint address.
    pub eb: NodeId,
    /// Physical next hop (simulator index) toward `ea`; `None` at `ea`
    /// itself.
    pub toward_a: Option<usize>,
    /// Physical next hop toward `eb`; `None` at `eb` itself.
    pub toward_b: Option<usize>,
}

/// Canonical path key: endpoints in ascending order plus a setup nonce (two
/// setups between the same endpoints stay distinct until one is torn down).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathId {
    /// Smaller endpoint.
    pub ea: NodeId,
    /// Larger endpoint.
    pub eb: NodeId,
    /// Setup nonce.
    pub nonce: u64,
}

impl PathId {
    /// Builds a canonical id from unordered endpoints.
    pub fn new(x: NodeId, y: NodeId, nonce: u64) -> Self {
        let (ea, eb) = if x <= y { (x, y) } else { (y, x) };
        PathId { ea, eb, nonce }
    }
}

/// All path state at one node.
#[derive(Clone, Debug, Default)]
pub struct PathTable {
    entries: BTreeMap<PathId, PathEntry>,
}

impl PathTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries — this node's router-state cost.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no path traverses this node.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs (or overwrites) an entry.
    pub fn install(&mut self, id: PathId, entry: PathEntry) {
        debug_assert_eq!((entry.ea, entry.eb), (id.ea, id.eb));
        self.entries.insert(id, entry);
    }

    /// Removes an entry, returning it.
    pub fn remove(&mut self, id: &PathId) -> Option<PathEntry> {
        self.entries.remove(id)
    }

    /// Looks up one entry.
    pub fn get(&self, id: &PathId) -> Option<&PathEntry> {
        self.entries.get(id)
    }

    /// Iterates all `(id, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PathId, &PathEntry)> {
        self.entries.iter()
    }

    /// All endpoints reachable through this node's entries, with the
    /// physical next hop toward each. An endpoint equal to `me` is skipped.
    pub fn endpoints(&self, me: NodeId) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.entries.values().flat_map(move |e| {
            let a = (e.ea != me)
                .then_some(e.toward_a.map(|h| (e.ea, h)))
                .flatten();
            let b = (e.eb != me)
                .then_some(e.toward_b.map(|h| (e.eb, h)))
                .flatten();
            a.into_iter().chain(b)
        })
    }

    /// Drops every entry whose next hop (either direction) is the given
    /// physical neighbor — used when a link dies. Returns the removed ids.
    pub fn purge_via(&mut self, neighbor: usize) -> Vec<PathId> {
        let dead: Vec<PathId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.toward_a == Some(neighbor) || e.toward_b == Some(neighbor))
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.entries.remove(id);
        }
        dead
    }

    /// All entries with the given node as an endpoint.
    pub fn paths_with_endpoint(&self, node: NodeId) -> Vec<PathId> {
        self.entries
            .keys()
            .filter(|id| id.ea == node || id.eb == node)
            .copied()
            .collect()
    }
}

impl PathTable {
    /// Removes every entry with the same endpoints as `pid` but a
    /// *different* nonce — used to garbage-collect stale breadcrumb trails
    /// when a fresh probe from the same origin passes. Returns the number
    /// removed.
    pub fn purge_like(&mut self, pid: PathId) -> usize {
        let stale: Vec<PathId> = self
            .entries
            .keys()
            .filter(|k| k.ea == pid.ea && k.eb == pid.eb && k.nonce != pid.nonce)
            .copied()
            .collect();
        for k in &stale {
            self.entries.remove(k);
        }
        stale.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ea: u64, eb: u64, ta: Option<usize>, tb: Option<usize>) -> (PathId, PathEntry) {
        let id = PathId::new(NodeId(ea), NodeId(eb), 1);
        (
            id,
            PathEntry {
                ea: id.ea,
                eb: id.eb,
                toward_a: ta,
                toward_b: tb,
            },
        )
    }

    #[test]
    fn path_id_is_canonical() {
        assert_eq!(
            PathId::new(NodeId(5), NodeId(2), 7),
            PathId::new(NodeId(2), NodeId(5), 7)
        );
        assert_ne!(
            PathId::new(NodeId(2), NodeId(5), 7),
            PathId::new(NodeId(2), NodeId(5), 8)
        );
    }

    #[test]
    fn install_lookup_remove() {
        let mut t = PathTable::new();
        let (id, e) = entry(1, 9, Some(3), Some(4));
        t.install(id, e);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&id), Some(&e));
        assert_eq!(t.remove(&id), Some(e));
        assert!(t.is_empty());
    }

    #[test]
    fn endpoints_skip_self_and_dangling() {
        let mut t = PathTable::new();
        // at node 9 (endpoint eb): toward_b = None
        let (id, e) = entry(1, 9, Some(3), None);
        t.install(id, e);
        let eps: Vec<_> = t.endpoints(NodeId(9)).collect();
        assert_eq!(eps, vec![(NodeId(1), 3)]);
        // viewed from an intermediate node, both endpoints visible
        let mut t2 = PathTable::new();
        let (id2, e2) = entry(1, 9, Some(3), Some(4));
        t2.install(id2, e2);
        let eps2: Vec<_> = t2.endpoints(NodeId(5)).collect();
        assert_eq!(eps2, vec![(NodeId(1), 3), (NodeId(9), 4)]);
    }

    #[test]
    fn purge_via_removes_entries_through_link() {
        let mut t = PathTable::new();
        let (id1, e1) = entry(1, 9, Some(3), Some(4));
        let (id2, e2) = entry(2, 8, Some(5), Some(6));
        t.install(id1, e1);
        t.install(id2, e2);
        let dead = t.purge_via(4);
        assert_eq!(dead, vec![id1]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn paths_with_endpoint_filters() {
        let mut t = PathTable::new();
        let (id1, e1) = entry(1, 9, Some(3), None);
        let (id2, e2) = entry(2, 8, Some(5), Some(6));
        t.install(id1, e1);
        t.install(id2, e2);
        assert_eq!(t.paths_with_endpoint(NodeId(9)), vec![id1]);
        assert!(t.paths_with_endpoint(NodeId(7)).is_empty());
    }
}
