//! Experiment drivers for the VRR bootstrap (mirrors
//! `ssr_core::bootstrap`), including the *watched* variant that fail-fasts
//! on the crossing-state freeze (DESIGN.md finding 7) instead of burning
//! the tick budget.

use std::rc::Rc;

use ssr_graph::{Graph, Labeling};
use ssr_sim::{shared_watchdog, watchdog_probe, LinkConfig, Simulator, Verdict};
use ssr_types::NodeId;

use crate::node::{VrrConfig, VrrMode, VrrNode};

/// What a VRR bootstrap run cost and achieved.
#[derive(Clone, Debug)]
pub struct VrrBootstrapReport {
    /// `true` iff the virtual ring became globally consistent.
    pub converged: bool,
    /// Ticks until convergence (or budget).
    pub ticks: u64,
    /// Per-kind message counts.
    pub messages: Vec<(String, u64)>,
    /// Total link-layer transmissions.
    pub total_messages: u64,
    /// Largest path table across nodes.
    pub max_state: usize,
    /// Mean path-table entries per node.
    pub mean_state: f64,
}

/// Checks global ring consistency over VRR node states: the sorted line in
/// the side sets plus mutually agreed wrap edges at the extremes.
pub fn vrr_ring_consistent(nodes: &[VrrNode]) -> bool {
    let n = nodes.len();
    if n <= 1 {
        return true;
    }
    let mut sorted: Vec<&VrrNode> = nodes.iter().collect();
    sorted.sort_by_key(|p| p.id());
    for w in sorted.windows(2) {
        if w[0].closest_right() != Some(w[1].id()) || w[1].closest_left() != Some(w[0].id()) {
            return false;
        }
    }
    if sorted[0].closest_left().is_some() || sorted[n - 1].closest_right().is_some() {
        return false;
    }
    sorted[0].wrap_pred() == Some(sorted[n - 1].id())
        && sorted[n - 1].wrap_succ() == Some(sorted[0].id())
}

/// Builds a VRR node per label.
pub fn make_vrr_nodes(labels: &Labeling, config: VrrConfig) -> Vec<VrrNode> {
    labels
        .ids()
        .iter()
        .map(|&id| VrrNode::with_config(id, config))
        .collect()
}

/// Runs a VRR bootstrap to global ring consistency.
pub fn run_vrr_bootstrap(
    topo: &Graph,
    labels: &Labeling,
    mode: VrrMode,
    link: LinkConfig,
    seed: u64,
    max_ticks: u64,
) -> (VrrBootstrapReport, Simulator<VrrNode>) {
    assert_eq!(topo.node_count(), labels.len());
    let config = VrrConfig {
        mode,
        ..VrrConfig::default()
    };
    let nodes = make_vrr_nodes(labels, config);
    let mut sim = Simulator::new(topo.clone(), nodes, link, seed);
    let outcome = sim.run_until_stable(8, max_ticks, |nodes, _| vrr_ring_consistent(nodes));
    let converged = vrr_ring_consistent(sim.protocols());
    let messages: Vec<(String, u64)> = sim
        .metrics()
        .counters()
        .filter(|(k, _)| k.starts_with("msg."))
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let states: Vec<usize> = sim.protocols().iter().map(|p| p.table().len()).collect();
    let max_state = states.iter().copied().max().unwrap_or(0);
    let mean_state = if states.is_empty() {
        0.0
    } else {
        states.iter().sum::<usize>() as f64 / states.len() as f64
    };
    let report = VrrBootstrapReport {
        converged,
        ticks: outcome.time().ticks(),
        messages,
        total_messages: sim.metrics().counter("tx.total"),
        max_state,
        mean_state,
    };
    (report, sim)
}

/// Hash of all ring-relevant VRR state (closest side neighbors, wraps,
/// local consistency) for the freeze watchdog. Deliberately excludes
/// beacon sequence numbers and other periodically churning fields: in the
/// crossing state those keep ticking while the ring structure — hashed
/// here — never changes again.
pub fn vrr_signature(nodes: &[VrrNode]) -> u64 {
    const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0u64;
    let mut feed = |x: u64| h = h.rotate_left(9) ^ x.wrapping_mul(MIX);
    for node in nodes {
        feed(node.id().0);
        feed(node.closest_left().map_or(1, |b| b.0.rotate_left(11)));
        feed(node.closest_right().map_or(2, |b| b.0.rotate_left(13)));
        feed(node.wrap_pred().map_or(3, |b| b.0.rotate_left(17)));
        feed(node.wrap_succ().map_or(5, |b| b.0.rotate_left(29)));
        let (l, r) = node.side_sizes();
        feed((l as u64) << 32 | r as u64);
        feed(u64::from(node.locally_consistent()));
    }
    h
}

/// Outcome of a watched VRR bootstrap.
#[derive(Clone, Debug)]
pub struct VrrWatchReport {
    /// `true` iff the virtual ring became globally consistent.
    pub converged: bool,
    /// Watchdog classification label: `converged`, `frozen_crossing`,
    /// `frozen_stuck`, or `active` (budget ran out while still moving).
    pub verdict: &'static str,
    /// Ticks until convergence, freeze classification, or budget.
    pub ticks: u64,
    /// Total link-layer transmissions.
    pub total_messages: u64,
    /// Tick at which the freeze was classified, if it was.
    pub frozen_at: Option<u64>,
}

/// Like [`run_vrr_bootstrap`], but with the freeze watchdog wired in: the
/// run stops as soon as the ring is globally consistent **or** the
/// ring-relevant state has not changed for `freeze_window` ticks without
/// consistency — the crossing state (two non-adjacent mutual virtual
/// edges, every node locally consistent) is then classified
/// `frozen_crossing` instead of silently burning `max_ticks`.
pub fn run_vrr_bootstrap_watched(
    topo: &Graph,
    labels: &Labeling,
    mode: VrrMode,
    link: LinkConfig,
    seed: u64,
    max_ticks: u64,
    freeze_window: u64,
) -> (VrrWatchReport, Simulator<VrrNode>) {
    assert_eq!(topo.node_count(), labels.len());
    let config = VrrConfig {
        mode,
        ..VrrConfig::default()
    };
    let nodes = make_vrr_nodes(labels, config);
    let mut sim = Simulator::new(topo.clone(), nodes, link, seed);
    let state = shared_watchdog();
    sim.add_probe(
        8,
        watchdog_probe(
            freeze_window,
            Rc::clone(&state),
            vrr_signature,
            |nodes: &[VrrNode]| vrr_ring_consistent(nodes),
            |nodes: &[VrrNode]| nodes.iter().all(|p| p.locally_consistent()),
        ),
    );
    let stop = Rc::clone(&state);
    let outcome = sim.run_until_stable(8, max_ticks, move |nodes, _| {
        vrr_ring_consistent(nodes) || stop.borrow().is_frozen()
    });
    let converged = vrr_ring_consistent(sim.protocols());
    let st = state.borrow();
    let verdict = if converged {
        Verdict::Converged.label()
    } else {
        st.verdict.label()
    };
    let report = VrrWatchReport {
        converged,
        verdict,
        ticks: outcome.time().ticks(),
        total_messages: sim.metrics().counter("tx.total"),
        frozen_at: st.frozen_at,
    };
    drop(st);
    (report, sim)
}

/// The ring successor map (for shape classification in experiments).
pub fn vrr_succ_map(nodes: &[VrrNode]) -> std::collections::BTreeMap<NodeId, NodeId> {
    nodes
        .iter()
        .filter_map(|p| p.ring_succ().map(|s| (p.id(), s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_types::Rng;

    fn topo_and_labels(n: usize, seed: u64) -> (Graph, Labeling) {
        let mut rng = Rng::new(seed);
        let (g, _) = generators::unit_disk_connected(n, 1.3, &mut rng);
        let labels = Labeling::random(n, &mut rng);
        (g, labels)
    }

    #[test]
    fn linearized_vrr_converges_on_a_line() {
        let topo = generators::line(5);
        let labels = Labeling::sequential(5, 10);
        let (report, _) = run_vrr_bootstrap(
            &topo,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            1,
            50_000,
        );
        assert!(report.converged, "{report:?}");
        assert!(!report.messages.iter().any(|(k, _)| k == "msg.flood"));
    }

    #[test]
    fn linearized_vrr_converges_on_unit_disk() {
        // VRR's hop-by-hop state is more fragile than SSR's source routes;
        // rare seeds freeze in a crossing state (documented in DESIGN.md),
        // so this asserts a high convergence *rate* rather than perfection.
        let mut converged = 0;
        for seed in 0..4 {
            let (topo, labels) = topo_and_labels(20, seed);
            let (report, _) = run_vrr_bootstrap(
                &topo,
                &labels,
                VrrMode::Linearized,
                LinkConfig::ideal(),
                seed,
                100_000,
            );
            if report.converged {
                converged += 1;
            }
        }
        assert!(converged >= 3, "only {converged}/4 runs converged");
    }

    #[test]
    fn baseline_vrr_beacons_and_converges_sometimes() {
        // The beacon/representative baseline is the *costly* mechanism the
        // paper replaces; our reproduction of it converges on most but not
        // all seeds (see DESIGN.md). The assertions here are the honest
        // ones: (a) its standing beacon volume dwarfs a single exchange,
        // and (b) it does converge on at least one of the seeds.
        let mut converged = 0;
        for seed in 0..3 {
            let (topo, labels) = topo_and_labels(14, 50 + seed);
            let (report, _) = run_vrr_bootstrap(
                &topo,
                &labels,
                VrrMode::Baseline,
                LinkConfig::ideal(),
                seed,
                60_000,
            );
            if report.converged {
                converged += 1;
            }
            let hello = report
                .messages
                .iter()
                .find(|(k, _)| k == "msg.hello")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            assert!(hello > 3 * 2 * topo.edge_count() as u64, "hello = {hello}");
        }
        assert!(converged >= 1, "baseline never converged");
    }

    #[test]
    fn crossing_state_freeze_is_classified_not_silently_timed_out() {
        // Deterministic reproduction of DESIGN.md finding 7: at n = 28,
        // seed 9 the linearized VRR bootstrap reaches a fixpoint with two
        // non-adjacent mutual virtual edges — every node locally
        // consistent, the global ring crossed, periodic timers still
        // firing. The watched runner must classify it `frozen_crossing`
        // and stop shortly after the freeze window, never burning the
        // full tick budget.
        let (topo, labels) = topo_and_labels(28, 9);
        let (report, sim) = run_vrr_bootstrap_watched(
            &topo,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            9,
            200_000,
            2_000,
        );
        assert!(
            report.converged || report.verdict == "frozen_crossing",
            "silent non-convergence: {report:?}"
        );
        assert!(!report.converged, "seed no longer freezes — repin it");
        assert_eq!(report.verdict, "frozen_crossing");
        assert!(report.frozen_at.is_some());
        assert!(
            report.ticks < 10_000,
            "fail-fast did not stop early: {report:?}"
        );
        assert_eq!(sim.metrics().counter("probe.watchdog_frozen"), 1);
        // every node *is* locally consistent — that is what makes the
        // crossing state invisible to purely local checks
        assert!(sim.protocols().iter().all(|p| p.locally_consistent()));
    }

    #[test]
    fn watched_runner_converges_like_unwatched_on_good_seed() {
        let (topo, labels) = topo_and_labels(20, 0);
        let (report, _) = run_vrr_bootstrap_watched(
            &topo,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            0,
            100_000,
            2_000,
        );
        assert!(report.converged, "{report:?}");
        assert_eq!(report.verdict, "converged");
        assert!(report.frozen_at.is_none());
    }

    #[test]
    fn two_node_ring() {
        let topo = generators::line(2);
        let labels = Labeling::sequential(2, 7);
        let (report, sim) = run_vrr_bootstrap(
            &topo,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            3,
            50_000,
        );
        assert!(report.converged, "{report:?}");
        let a = &sim.protocols()[0];
        let b = &sim.protocols()[1];
        assert_eq!(a.ring_succ(), Some(b.id()));
        assert_eq!(b.ring_succ(), Some(a.id()));
    }

    #[test]
    fn intermediate_nodes_carry_path_state() {
        // On a line topology the extremes' wrap edge must traverse the
        // middle: state at interior nodes strictly exceeds what SSR would
        // keep there — the E10 contrast.
        let topo = generators::line(5);
        let labels = Labeling::sequential(5, 10);
        let (report, sim) = run_vrr_bootstrap(
            &topo,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            1,
            50_000,
        );
        assert!(report.converged);
        // the middle node carries the wrap path 10↔50 plus its own edges
        let middle = &sim.protocols()[2];
        assert!(
            middle.table().len() >= 3,
            "middle state {}",
            middle.table().len()
        );
    }
}
