//! Virtual Ring Routing (VRR) — the paper's second target protocol.
//!
//! VRR (Caesar et al., SIGCOMM 2006) organizes nodes into the same virtual
//! ring as SSR, but "does not use source routes and route caches": a virtual
//! edge is **hop-by-hop path state** — every node along the physical path
//! between two virtual neighbors holds a routing-table entry
//! `(endpoint_a, endpoint_b, next-hop either way)`, installed by setup
//! messages and used by per-hop greedy forwarding.
//!
//! The paper's claim is that its linearization mechanism "also applies to
//! other routing mechanisms such as Virtual Ring Routing. There the virtual
//! edges are the paths as represented by the routing table entries." This
//! crate implements exactly that transfer:
//!
//! * [`table`] — the per-node path table (the state metric of E10);
//! * [`node`] — the VRR node with **two bootstrap modes**: the baseline
//!   (hello beacons carrying a *representative*, VRR's flooding analogue)
//!   and the **linearized** mode (neighbor notifications + discovery, no
//!   representative dissemination at all);
//! * [`routing`] — per-hop greedy forwarding over path state, and a static
//!   walker for the routing experiments;
//! * [`bootstrap`] — experiment drivers mirroring `ssr-core`'s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod node;
pub mod routing;
pub mod table;

pub use bootstrap::{
    run_vrr_bootstrap, run_vrr_bootstrap_watched, vrr_ring_consistent, vrr_signature,
    VrrBootstrapReport, VrrWatchReport,
};
pub use node::{VrrConfig, VrrMode, VrrMsg, VrrNode};
pub use routing::VrrRoutingView;
pub use table::{PathEntry, PathTable};
