//! Property-based tests for VRR's path-table invariants and the bootstrap.

use proptest::prelude::*;
use ssr_types::NodeId;
use ssr_vrr::table::{PathEntry, PathId, PathTable};

fn entry_for(id: PathId, ta: Option<usize>, tb: Option<usize>) -> PathEntry {
    PathEntry {
        ea: id.ea,
        eb: id.eb,
        toward_a: ta,
        toward_b: tb,
    }
}

proptest! {
    #[test]
    fn path_id_canonicalization(a: u64, b: u64, nonce: u64) {
        prop_assume!(a != b);
        let id1 = PathId::new(NodeId(a), NodeId(b), nonce);
        let id2 = PathId::new(NodeId(b), NodeId(a), nonce);
        prop_assert_eq!(id1, id2);
        prop_assert!(id1.ea < id1.eb);
    }

    #[test]
    fn endpoints_reflect_installed_entries(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>(), 0usize..16, 0usize..16), 1..40)
    ) {
        let me = NodeId(500);
        let mut t = PathTable::new();
        let mut expected = std::collections::BTreeSet::new();
        for (i, (a, b, ha, hb)) in pairs.into_iter().enumerate() {
            if a == b || NodeId(a) == me || NodeId(b) == me {
                continue;
            }
            let id = PathId::new(NodeId(a), NodeId(b), i as u64);
            t.install(id, entry_for(id, Some(ha), Some(hb)));
            expected.insert(id.ea);
            expected.insert(id.eb);
        }
        let seen: std::collections::BTreeSet<NodeId> =
            t.endpoints(me).map(|(ep, _)| ep).collect();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn purge_via_removes_exactly_matching_links(
        links in proptest::collection::vec((0usize..8, 0usize..8), 1..30),
        dead in 0usize..8
    ) {
        let mut t = PathTable::new();
        for (i, (ha, hb)) in links.iter().enumerate() {
            let id = PathId::new(NodeId(2 * i as u64 + 1), NodeId(2 * i as u64 + 2), i as u64);
            t.install(id, entry_for(id, Some(*ha), Some(*hb)));
        }
        let before = t.len();
        let removed = t.purge_via(dead);
        prop_assert_eq!(before - t.len(), removed.len());
        // nothing remaining touches the dead link
        for (_, e) in t.iter() {
            prop_assert!(e.toward_a != Some(dead) && e.toward_b != Some(dead));
        }
        // everything removed did touch it
        let expected = links.iter().filter(|(a, b)| *a == dead || *b == dead).count();
        prop_assert_eq!(removed.len(), expected);
    }

    #[test]
    fn purge_like_keeps_only_the_given_nonce(count in 1usize..10) {
        let mut t = PathTable::new();
        let (x, y) = (NodeId(1), NodeId(2));
        for nonce in 0..count as u64 {
            let id = PathId::new(x, y, nonce);
            t.install(id, entry_for(id, Some(0), Some(1)));
        }
        let keep = PathId::new(x, y, 0);
        let removed = t.purge_like(keep);
        prop_assert_eq!(removed, count - 1);
        prop_assert_eq!(t.len(), 1);
        prop_assert!(t.get(&keep).is_some());
    }
}

/// Linearized VRR converges on small random connected graphs and agrees
/// with the identifier sort (sampled, not exhaustive — full sweeps live in
/// E10).
#[test]
fn linearized_vrr_samples_converge_and_sort() {
    use ssr_graph::{generators, Labeling};
    use ssr_sim::LinkConfig;
    use ssr_types::Rng;
    use ssr_vrr::bootstrap::{run_vrr_bootstrap, vrr_succ_map};
    use ssr_vrr::node::VrrMode;

    let mut converged = 0;
    for seed in 0..4u64 {
        let mut rng = Rng::new(seed * 3 + 1);
        let mut g = generators::gnp(12, 0.25, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let labels = Labeling::random(12, &mut rng);
        let (report, sim) = run_vrr_bootstrap(
            &g,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            seed,
            100_000,
        );
        if !report.converged {
            continue;
        }
        converged += 1;
        // the successor map is the sorted cycle
        let succ = vrr_succ_map(sim.protocols());
        let mut sorted: Vec<NodeId> = labels.ids().to_vec();
        sorted.sort();
        for w in sorted.windows(2) {
            assert_eq!(succ.get(&w[0]), Some(&w[1]));
        }
        assert_eq!(succ.get(sorted.last().unwrap()), Some(&sorted[0]));
    }
    assert!(converged >= 3, "only {converged}/4 converged");
}
