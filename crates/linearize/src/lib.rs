//! Self-stabilizing graph linearization (Onus, Richa, Scheideler — ALENEX
//! 2007), the algorithmic core that the paper transfers to SSR/VRR.
//!
//! *Linearization* is "the task to link the nodes of an arbitrary graph in
//! the order of their identifiers": starting from any connected graph, local
//! rewiring steps transform the edge set into the sorted chain
//! `id_1 – id_2 – … – id_n`. The algorithm is *self-stabilizing* — it
//! converges from every possible input graph — and every step preserves
//! connectedness, which is the property that lets SSR drop its flooding
//! phase: on the line, local consistency implies global consistency.
//!
//! Three variants, as in the paper's Section 2:
//!
//! * **Pure linearization** (Algorithm 1): each node replaces its neighbor
//!   star with the sorted chain of its neighborhood; may take a linear
//!   number of rounds.
//! * **Linearization with memory**: edges are only ever added; converges in
//!   polylogarithmically many rounds on average but lets node state grow.
//! * **Linearization with shortcut neighbors (LSN)**: at most one remembered
//!   edge per exponentially growing identifier interval — the variant whose
//!   structure SSR's route cache provides for free, keeping both convergence
//!   *and* state polylogarithmic.
//!
//! The crate operates on abstract labeled graphs ([`engine`]); the
//! message-level embedding into SSR lives in `ssr-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod engine;
pub mod variant;

pub use convergence::{chain_edges_present, is_exact_chain, potential, superfluous_edges};
pub use engine::{run, step_round, LinearizeRun, RoundStats};
pub use variant::{Semantics, Variant};
