//! Algorithm variants and action semantics.

use ssr_types::IntervalPartition;

/// Which linearization variant governs edge *retention*.
#[derive(Clone, Copy, Debug)]
pub enum Variant {
    /// Pure linearization (Algorithm 1): a node keeps only its closest left
    /// and closest right neighbor; everything else is delegated away.
    Pure,
    /// Linearization with memory: no edge is ever dropped.
    Memory,
    /// Linearization with shortcut neighbors: per side, the closest
    /// neighbor in each exponential interval is kept.
    Lsn(IntervalPartition),
}

impl Variant {
    /// The canonical LSN variant with base-2 intervals.
    pub fn lsn() -> Variant {
        Variant::Lsn(IntervalPartition::base2())
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Pure => "pure",
            Variant::Memory => "memory",
            Variant::Lsn(_) => "lsn",
        }
    }
}

/// How much linearization work a node performs per round — the E4 ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semantics {
    /// The star-chain semantics of the paper's Algorithm 1: in one round a
    /// node sorts its whole neighborhood and proposes the full chain.
    Star,
    /// The pairwise action semantics of Onus et al.: per round a node
    /// performs one left and one right linearization step (delegating only
    /// its single farthest neighbor on each side to the second-farthest).
    /// Only the deleting ([`crate::Variant::Pure`]) variant is guaranteed to
    /// make progress under these semantics — with memory/LSN retention the
    /// farthest pair never changes once bridged and the run can stall short
    /// of the line.
    Pairwise,
}

impl Semantics {
    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Semantics::Star => "star",
            Semantics::Pairwise => "pairwise",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Variant::Pure.name(), "pure");
        assert_eq!(Variant::Memory.name(), "memory");
        assert_eq!(Variant::lsn().name(), "lsn");
        assert_eq!(Semantics::Star.name(), "star");
        assert_eq!(Semantics::Pairwise.name(), "pairwise");
    }

    #[test]
    fn lsn_default_base_is_two() {
        match Variant::lsn() {
            Variant::Lsn(p) => assert_eq!(p.base(), 2),
            _ => panic!(),
        }
    }
}
