//! Convergence predicates and potential functions.
//!
//! The engine works in **rank space**: node indices *are* identifier ranks,
//! so the target of linearization is the chain `0 – 1 – … – (n-1)`. (Use
//! [`relabel_to_ranks`] to bring an arbitrarily labeled graph into rank
//! space; random-graph experiments can skip it, since their structure is
//! independent of the labeling.)

use ssr_graph::{Graph, Labeling};

/// `true` iff every consecutive pair `(i, i+1)` is adjacent — the *line* has
/// formed, which is the convergence event all round counts refer to. For
/// the memory/LSN variants extra shortcut edges may (and should) remain.
pub fn chain_edges_present(g: &Graph) -> bool {
    let n = g.node_count();
    (1..n).all(|i| g.has_edge(i - 1, i))
}

/// Number of consecutive pairs not yet adjacent (0 ⇔ line formed).
pub fn missing_chain_edges(g: &Graph) -> usize {
    let n = g.node_count();
    (1..n).filter(|&i| !g.has_edge(i - 1, i)).count()
}

/// `true` iff the graph is *exactly* the sorted chain — the fixpoint of pure
/// linearization.
pub fn is_exact_chain(g: &Graph) -> bool {
    let n = g.node_count();
    g.edge_count() == n.saturating_sub(1) && chain_edges_present(g)
}

/// Number of edges that are not chain edges (shortcuts and not-yet-sorted
/// edges).
pub fn superfluous_edges(g: &Graph) -> usize {
    g.edges().filter(|&(u, v)| v != u + 1).count()
}

/// The potential `Σ_{(u,v) ∈ E} (v - u)` in rank units. Pure linearization
/// never increases it, and it is minimal (`n-1`) exactly on the chain —
/// the standard progress measure in the self-stabilization literature.
pub fn potential(g: &Graph) -> u64 {
    g.edges().map(|(u, v)| (v - u) as u64).sum()
}

/// Rewrites `g` so that node `r` of the result is the node with the `r`-th
/// smallest identifier in `labels`. Inverse permutation returned alongside:
/// `index_of_rank[r]` is the original index.
pub fn relabel_to_ranks(g: &Graph, labels: &Labeling) -> (Graph, Vec<usize>) {
    assert_eq!(g.node_count(), labels.len());
    let index_of_rank = labels.indices_by_id();
    let mut rank_of_index = vec![0usize; g.node_count()];
    for (rank, &idx) in index_of_rank.iter().enumerate() {
        rank_of_index[idx] = rank;
    }
    let mut out = Graph::new(g.node_count());
    for (u, v) in g.edges() {
        out.add_edge(rank_of_index[u], rank_of_index[v]);
    }
    (out, index_of_rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_types::NodeId;

    #[test]
    fn chain_predicates_on_the_chain() {
        let g = generators::line(6);
        assert!(chain_edges_present(&g));
        assert!(is_exact_chain(&g));
        assert_eq!(missing_chain_edges(&g), 0);
        assert_eq!(superfluous_edges(&g), 0);
        assert_eq!(potential(&g), 5);
    }

    #[test]
    fn chain_with_shortcuts_is_line_but_not_exact() {
        let mut g = generators::line(6);
        g.add_edge(0, 3);
        assert!(chain_edges_present(&g));
        assert!(!is_exact_chain(&g));
        assert_eq!(superfluous_edges(&g), 1);
        assert_eq!(potential(&g), 5 + 3);
    }

    #[test]
    fn missing_edges_counted() {
        let mut g = generators::line(6);
        g.remove_edge(2, 3);
        g.remove_edge(4, 5);
        assert_eq!(missing_chain_edges(&g), 2);
        assert!(!chain_edges_present(&g));
    }

    #[test]
    fn ring_is_not_a_chain() {
        let g = generators::ring(5);
        assert!(chain_edges_present(&g)); // 0-1,1-2,2-3,3-4 all present
        assert!(!is_exact_chain(&g)); // the wrap edge 0-4 is extra
        assert_eq!(superfluous_edges(&g), 1);
    }

    #[test]
    fn potential_minimal_only_on_chain() {
        // any connected graph has potential >= n-1 (spanning requires
        // covering all n-1 rank gaps)
        let g = generators::complete(5);
        assert!(potential(&g) > 4);
        assert_eq!(potential(&generators::line(5)), 4);
    }

    #[test]
    fn relabel_sorts_by_id() {
        // indices: 0(id=30) - 1(id=10) - 2(id=20), edges 0-1, 1-2
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let labels = Labeling::from_ids(vec![NodeId(30), NodeId(10), NodeId(20)]);
        let (rg, index_of_rank) = relabel_to_ranks(&g, &labels);
        // rank order: 1 (10), 2 (20), 0 (30)
        assert_eq!(index_of_rank, vec![1, 2, 0]);
        // edge 0-1 (ids 30,10) becomes ranks 2-0; edge 1-2 (ids 10,20) → 0-1
        assert!(rg.has_edge(0, 2));
        assert!(rg.has_edge(0, 1));
        assert!(!rg.has_edge(1, 2));
    }
}
