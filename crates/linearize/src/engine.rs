//! The synchronous round engine.
//!
//! One round applies every node's linearization action simultaneously, as in
//! the analysis model of Onus et al.: each node `v` sorts its current
//! neighborhood `u_1 < … < u_k < v < u_{k+1} < … < u_d` and *proposes* the
//! chain `{u_1,u_2}, …, {u_k,v}, {v,u_{k+1}}, …, {u_{d-1},u_d}` (star
//! semantics), or delegates just its farthest neighbor per side (pairwise
//! semantics). The next round's edge set is the union of all proposals plus
//! whatever each variant *retains*:
//!
//! * pure — nothing beyond the proposal (which already contains `v`'s
//!   closest neighbor on each side),
//! * memory — every current edge,
//! * LSN — the closest neighbor per exponential interval per side.
//!
//! Union survival is the conservative reading of the paper's handshake (an
//! edge is torn down only once *both* endpoints have acknowledged, so an
//! edge one endpoint still wants stays). Every step preserves
//! connectedness: each dropped edge `{v, u}` is covered by a proposed path
//! from `v` to `u` through nodes between them — that invariant is what makes
//! flooding unnecessary, and the property tests hammer it.
//!
//! The engine works in **rank space** (identifier order = index order); see
//! [`crate::convergence::relabel_to_ranks`].

use ssr_graph::Graph;
use ssr_types::{IntervalPartition, NodeId, Side};

use crate::convergence::{chain_edges_present, is_exact_chain, missing_chain_edges, potential};
use crate::variant::{Semantics, Variant};

/// Per-round statistics.
#[derive(Clone, Copy, Debug)]
pub struct RoundStats {
    /// Round index (1-based; round 0 is the initial state).
    pub round: usize,
    /// Edge count after the round.
    pub edges: usize,
    /// Edges added this round.
    pub added: usize,
    /// Edges removed this round.
    pub removed: usize,
    /// Maximum node degree after the round.
    pub max_degree: usize,
    /// Consecutive pairs still missing after the round.
    pub missing_chain: usize,
    /// Potential `Σ (v-u)` after the round.
    pub potential: u64,
}

/// The result of a linearization run.
#[derive(Clone, Debug)]
pub struct LinearizeRun {
    /// Per-round statistics (entry 0 describes the initial graph).
    pub rounds: Vec<RoundStats>,
    /// First round at which all chain edges were present ("the line
    /// formed"), if reached.
    pub line_at: Option<usize>,
    /// First round at which the graph was exactly the chain (pure
    /// linearization's fixpoint), if reached.
    pub exact_at: Option<usize>,
    /// The final virtual graph.
    pub final_graph: Graph,
}

impl LinearizeRun {
    /// Rounds until the line formed; `None` if the run hit its budget.
    pub fn rounds_to_line(&self) -> Option<usize> {
        self.line_at
    }

    /// The largest node degree observed in any round — the state bound the
    /// LSN variant exists to keep small.
    pub fn peak_degree(&self) -> usize {
        self.rounds.iter().map(|r| r.max_degree).max().unwrap_or(0)
    }
}

/// Computes one synchronous round. Returns the next graph.
pub fn step_round(g: &Graph, variant: Variant, semantics: Semantics) -> Graph {
    let n = g.node_count();
    let mut next = Graph::new(n);
    let mut nbrs: Vec<usize> = Vec::new();
    for v in 0..n {
        nbrs.clear();
        nbrs.extend(g.neighbors(v)); // ascending == identifier order
        if nbrs.is_empty() {
            continue;
        }
        let k = nbrs.partition_point(|&u| u < v);
        match semantics {
            Semantics::Star => {
                // Chain through the sorted neighborhood with v in place.
                let mut prev: Option<usize> = None;
                for i in 0..=nbrs.len() {
                    // walk u_1..u_k, v, u_{k+1}..u_d
                    let cur = if i < k {
                        nbrs[i]
                    } else if i == k {
                        v
                    } else {
                        nbrs[i - 1]
                    };
                    if let Some(p) = prev {
                        next.add_edge(p, cur);
                    }
                    prev = Some(cur);
                }
            }
            Semantics::Pairwise => {
                // Keep v's own edges except the farthest per side; bridge
                // each dropped one to the second-farthest on its side.
                if k >= 2 {
                    next.add_edge(nbrs[0], nbrs[1]);
                }
                if nbrs.len() - k >= 2 {
                    next.add_edge(nbrs[nbrs.len() - 1], nbrs[nbrs.len() - 2]);
                }
                let keep_from = usize::from(k >= 2);
                let keep_to = nbrs.len() - usize::from(nbrs.len() - k >= 2);
                for &u in &nbrs[keep_from..keep_to] {
                    next.add_edge(v, u);
                }
            }
        }
        match variant {
            Variant::Pure => {}
            Variant::Memory => {
                for &u in &nbrs {
                    next.add_edge(v, u);
                }
            }
            Variant::Lsn(partition) => {
                retain_interval_representatives(&mut next, v, &nbrs, k, partition);
            }
        }
    }
    next
}

/// LSN retention: for each side, walk the sorted neighbor list and keep the
/// neighbor *closest to `v`* within each exponential interval.
fn retain_interval_representatives(
    next: &mut Graph,
    v: usize,
    nbrs: &[usize],
    k: usize,
    partition: IntervalPartition,
) {
    let vid = NodeId(v as u64);
    // Left side: nbrs[..k] ascending; the closest-to-v is the *last* in each
    // interval, so walk right-to-left and keep the first of each interval.
    let mut last_interval: Option<u32> = None;
    for &u in nbrs[..k].iter().rev() {
        let (side, idx) = partition
            .index(vid, NodeId(u as u64))
            .expect("neighbor equals self");
        debug_assert_eq!(side, Side::Left);
        if last_interval != Some(idx) {
            next.add_edge(v, u);
            last_interval = Some(idx);
        }
    }
    // Right side: closest-to-v is the first in each interval.
    let mut last_interval: Option<u32> = None;
    for &u in &nbrs[k..] {
        let (side, idx) = partition
            .index(vid, NodeId(u as u64))
            .expect("neighbor equals self");
        debug_assert_eq!(side, Side::Right);
        if last_interval != Some(idx) {
            next.add_edge(v, u);
            last_interval = Some(idx);
        }
    }
}

fn stats_for(round: usize, g: &Graph, prev: Option<&Graph>) -> RoundStats {
    let (added, removed) = match prev {
        None => (0, 0),
        Some(p) => {
            let added = g.edges().filter(|&(u, v)| !p.has_edge(u, v)).count();
            let removed = p.edges().filter(|&(u, v)| !g.has_edge(u, v)).count();
            (added, removed)
        }
    };
    let (_, max_degree, _) = g.degree_stats();
    RoundStats {
        round,
        edges: g.edge_count(),
        added,
        removed,
        max_degree,
        missing_chain: missing_chain_edges(g),
        potential: potential(g),
    }
}

/// Runs linearization for at most `max_rounds` rounds.
///
/// Stops as soon as the variant's goal is reached: the exact chain for
/// [`Variant::Pure`], the line (all chain edges present) otherwise. Entry 0
/// of `rounds` describes the initial graph.
pub fn run(g0: &Graph, variant: Variant, semantics: Semantics, max_rounds: usize) -> LinearizeRun {
    let mut g = g0.clone();
    let mut rounds = vec![stats_for(0, &g, None)];
    let mut line_at = chain_edges_present(&g).then_some(0);
    let mut exact_at = is_exact_chain(&g).then_some(0);
    let done = |line_at: Option<usize>, exact_at: Option<usize>| match variant {
        Variant::Pure => exact_at.is_some(),
        _ => line_at.is_some(),
    };
    let mut round = 0;
    while !done(line_at, exact_at) && round < max_rounds {
        round += 1;
        let next = step_round(&g, variant, semantics);
        rounds.push(stats_for(round, &next, Some(&g)));
        g = next;
        if line_at.is_none() && chain_edges_present(&g) {
            line_at = Some(round);
        }
        if exact_at.is_none() && is_exact_chain(&g) {
            exact_at = Some(round);
        }
    }
    LinearizeRun {
        rounds,
        line_at,
        exact_at,
        final_graph: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::{algo, generators};
    use ssr_types::Rng;

    fn all_variants() -> Vec<Variant> {
        vec![Variant::Pure, Variant::Memory, Variant::lsn()]
    }

    #[test]
    fn chain_is_a_fixpoint_for_every_variant() {
        let chain = generators::line(8);
        for variant in all_variants() {
            for semantics in [Semantics::Star, Semantics::Pairwise] {
                let next = step_round(&chain, variant, semantics);
                assert_eq!(
                    next.edges().collect::<Vec<_>>(),
                    chain.edges().collect::<Vec<_>>(),
                    "{}/{}",
                    variant.name(),
                    semantics.name()
                );
            }
        }
    }

    #[test]
    fn star_graph_is_pure_linearizations_slow_case() {
        // A star centered at rank 0: the center's chain proposal sorts the
        // leaves immediately, but every leaf keeps re-proposing its edge to
        // the center, which then walks back one rank per round — linear
        // convergence, exactly the behaviour that motivates the memory/LSN
        // variants.
        let star = generators::star(7);
        let pure = run(&star, Variant::Pure, Semantics::Star, 100);
        let exact = pure.exact_at.expect("must reach the chain");
        assert!((4..=7).contains(&exact), "took {exact} rounds");
        assert!(is_exact_chain(&pure.final_graph));
        // with memory the line is present after a single round
        let mem = run(&star, Variant::Memory, Semantics::Star, 100);
        assert_eq!(mem.line_at, Some(1));
    }

    #[test]
    fn every_variant_linearizes_small_random_graphs() {
        let mut rng = Rng::new(7);
        for trial in 0..10 {
            let mut g = generators::gnp(24, 0.15, &mut rng);
            generators::ensure_connected(&mut g, &mut rng);
            for variant in all_variants() {
                let r = run(&g, variant, Semantics::Star, 1000);
                assert!(
                    r.line_at.is_some(),
                    "trial {trial} variant {} failed to form the line",
                    variant.name()
                );
                assert!(chain_edges_present(&r.final_graph));
                if matches!(variant, Variant::Pure) {
                    assert!(is_exact_chain(&r.final_graph));
                }
            }
        }
    }

    #[test]
    fn pairwise_semantics_converges_under_pure() {
        // Pairwise actions only make progress when the delegated edge is
        // actually dropped (Onus et al.'s original deleting algorithm), so
        // the ablation pairs Pairwise with the Pure variant.
        let mut rng = Rng::new(8);
        for trial in 0..5 {
            let mut g = generators::gnp(16, 0.2, &mut rng);
            generators::ensure_connected(&mut g, &mut rng);
            let r = run(&g, Variant::Pure, Semantics::Pairwise, 5000);
            assert!(r.line_at.is_some(), "trial {trial}");
            assert!(is_exact_chain(&r.final_graph), "trial {trial}");
        }
    }

    #[test]
    fn connectivity_preserved_every_round() {
        let mut rng = Rng::new(9);
        let mut g = generators::gnp(30, 0.12, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        for variant in all_variants() {
            for semantics in [Semantics::Star, Semantics::Pairwise] {
                let mut cur = g.clone();
                for round in 0..50 {
                    cur = step_round(&cur, variant, semantics);
                    assert!(
                        algo::is_connected(&cur),
                        "disconnected after round {round} under {}/{}",
                        variant.name(),
                        semantics.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pure_ends_at_minimal_potential() {
        // The potential can *transiently* rise under synchronous rounds (a
        // stale endpoint re-proposes a delegated edge), e.g. on the star
        // 1–0–2; but the terminal state is the chain with potential n-1.
        let mut rng = Rng::new(10);
        let mut g = generators::gnp(20, 0.2, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let r = run(&g, Variant::Pure, Semantics::Star, 5000);
        assert!(r.exact_at.is_some());
        assert_eq!(r.rounds.last().unwrap().potential, 19);
    }

    #[test]
    fn potential_can_transiently_rise_under_synchronous_rounds() {
        // regression pin for the counterexample found by proptest: the star
        // 1–0–2 — node 0 delegates {0,2} to {1,2}, but node 2 re-proposes
        // {0,2} in the same round, so Φ goes 3 → 4 before dropping to 2.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let r = run(&g, Variant::Pure, Semantics::Star, 10);
        assert_eq!(r.rounds[0].potential, 3);
        assert_eq!(r.rounds[1].potential, 4);
        assert!(r.exact_at.is_some());
        assert_eq!(r.rounds.last().unwrap().potential, 2);
    }

    #[test]
    fn memory_never_removes_edges() {
        let mut rng = Rng::new(11);
        let mut g = generators::gnp(20, 0.2, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let r = run(&g, Variant::Memory, Semantics::Star, 500);
        for s in &r.rounds[1..] {
            assert_eq!(
                s.removed, 0,
                "memory variant removed edges at round {}",
                s.round
            );
        }
        // the input edges are all still there
        for (u, v) in g.edges() {
            assert!(r.final_graph.has_edge(u, v));
        }
    }

    #[test]
    fn lsn_degree_stays_bounded() {
        let mut rng = Rng::new(12);
        let mut g = generators::gnp(128, 0.06, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let mem = run(&g, Variant::Memory, Semantics::Star, 200);
        let lsn = run(&g, Variant::lsn(), Semantics::Star, 200);
        assert!(lsn.line_at.is_some() && mem.line_at.is_some());
        // LSN's whole point: peak state well below the memory variant's
        assert!(
            lsn.peak_degree() < mem.peak_degree(),
            "lsn {} !< memory {}",
            lsn.peak_degree(),
            mem.peak_degree()
        );
        // retained-per-interval bound: ≤ 2 per interval per side transiently
        // (own retention + other endpoints'), comfortably under n
        assert!(lsn.peak_degree() <= 2 * 2 * 64);
    }

    #[test]
    fn lsn_converges_faster_than_pure_on_a_path_with_chords() {
        // A long path in scrambled order is pure linearization's bad case;
        // memory/LSN exploit shortcuts.
        let mut rng = Rng::new(13);
        let n = 96;
        // random connected sparse graph
        let mut g = generators::gnm(n, n + 10, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let pure = run(&g, Variant::Pure, Semantics::Star, 5000);
        let lsn = run(&g, Variant::lsn(), Semantics::Star, 5000);
        let (p, l) = (pure.line_at.unwrap(), lsn.line_at.unwrap());
        assert!(l <= p, "lsn {l} rounds !<= pure {p} rounds");
    }

    #[test]
    fn disconnected_input_stays_disconnected_but_linearizes_components() {
        // two components: ranks 0..4 and 5..9 (component ids interleave in
        // rank space? no — keep them contiguous for a clean check)
        let mut g = Graph::new(10);
        // component A: clique on {0,1,2,3,4}; component B: star at 9 over {5..8}
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        for u in 5..9 {
            g.add_edge(9, u);
        }
        let r = run(&g, Variant::Pure, Semantics::Star, 100);
        // full chain never forms (edge 4-5 can never appear)
        assert!(r.line_at.is_none());
        let fg = &r.final_graph;
        // but each component is internally sorted into its own chain
        for i in 1..5 {
            assert!(fg.has_edge(i - 1, i), "A-chain missing {i}");
        }
        for i in 6..10 {
            assert!(fg.has_edge(i - 1, i), "B-chain missing {i}");
        }
        assert!(!fg.has_edge(4, 5));
    }

    #[test]
    fn run_stats_entry_zero_is_initial_state() {
        let g = generators::ring(6);
        let r = run(&g, Variant::Memory, Semantics::Star, 10);
        assert_eq!(r.rounds[0].round, 0);
        assert_eq!(r.rounds[0].edges, 6);
        assert_eq!(r.rounds[0].added, 0);
    }

    #[test]
    fn already_linear_input_converges_at_round_zero() {
        let g = generators::line(5);
        let r = run(&g, Variant::Pure, Semantics::Star, 10);
        assert_eq!(r.line_at, Some(0));
        assert_eq!(r.exact_at, Some(0));
        assert_eq!(r.rounds.len(), 1);
    }

    #[test]
    fn max_rounds_budget_respected() {
        // pure linearization of a scrambled dense graph won't finish in 1 round
        let g = generators::complete(40);
        let r = run(&g, Variant::Pure, Semantics::Pairwise, 1);
        assert!(r.exact_at.is_none());
        assert_eq!(r.rounds.len(), 2); // initial + 1 round
    }
}
