//! Property-based tests for the linearization invariants the paper leans on:
//! connectedness preservation (Section 3: "each iteration of the
//! linearization process preserves the connectedness of the network") and
//! self-stabilizing convergence to the sorted line for *every* connected
//! input graph.

use proptest::prelude::*;
use ssr_graph::{algo, generators, Graph};
use ssr_linearize::{chain_edges_present, is_exact_chain, run, step_round, Semantics, Variant};
use ssr_types::Rng;

/// Strategy: an arbitrary *connected* graph on 2..max_n nodes.
fn connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>(), 0.0f64..0.25).prop_map(|(n, seed, p)| {
        let mut rng = Rng::new(seed);
        let mut g = generators::gnp(n, p, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        g
    })
}

fn variants() -> Vec<Variant> {
    vec![Variant::Pure, Variant::Memory, Variant::lsn()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_step_preserves_connectivity(g in connected_graph(32)) {
        for variant in variants() {
            for semantics in [Semantics::Star, Semantics::Pairwise] {
                let mut cur = g.clone();
                for round in 0..12 {
                    cur = step_round(&cur, variant, semantics);
                    prop_assert!(
                        algo::is_connected(&cur),
                        "disconnected after round {} under {}/{}",
                        round, variant.name(), semantics.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pure_star_reaches_the_exact_chain(g in connected_graph(28)) {
        let n = g.node_count();
        // generous budget: pure linearization is at worst polynomial
        let r = run(&g, Variant::Pure, Semantics::Star, 40 * n * n);
        prop_assert!(r.exact_at.is_some(), "no convergence for n={n}");
        prop_assert!(is_exact_chain(&r.final_graph));
    }

    #[test]
    fn memory_and_lsn_form_the_line(g in connected_graph(28)) {
        for variant in [Variant::Memory, Variant::lsn()] {
            let r = run(&g, variant, Semantics::Star, 4000);
            prop_assert!(r.line_at.is_some(), "{} did not form the line", variant.name());
            prop_assert!(chain_edges_present(&r.final_graph));
        }
    }

    #[test]
    fn pure_pairwise_reaches_the_exact_chain(g in connected_graph(16)) {
        let n = g.node_count();
        let r = run(&g, Variant::Pure, Semantics::Pairwise, 80 * n * n);
        prop_assert!(r.exact_at.is_some(), "no convergence for n={n}");
    }

    #[test]
    fn pure_reaches_minimal_potential(g in connected_graph(24)) {
        // NOTE: the potential Σ(v-u) is NOT monotone per synchronous round —
        // a stale endpoint can re-propose an edge its peer just delegated
        // away (Onus et al.'s Φ-decrease argument assumes a sequential
        // daemon). What does hold: the run terminates in the chain, whose
        // potential is the global minimum n-1.
        let n = g.node_count();
        let r = run(&g, Variant::Pure, Semantics::Star, 40 * n * n);
        prop_assert!(r.exact_at.is_some());
        prop_assert_eq!(r.rounds.last().unwrap().potential, (n - 1) as u64);
    }

    #[test]
    fn memory_is_monotone_in_edges(g in connected_graph(24)) {
        let r = run(&g, Variant::Memory, Semantics::Star, 2000);
        for w in r.rounds.windows(2) {
            prop_assert!(w[1].edges >= w[0].edges);
            prop_assert_eq!(w[1].removed, 0);
        }
    }

    #[test]
    fn lsn_state_is_interval_bounded(g in connected_graph(24)) {
        // Per side: one retained edge per base-2 interval (≤ 64), plus
        // edges other nodes' retentions/proposals pin on this node; the
        // union-survival model at most doubles it. (The *relative* LSN vs
        // memory comparison is an asymptotic statement measured by
        // experiment E9, not a per-instance invariant on small graphs.)
        let lsn = run(&g, Variant::lsn(), Semantics::Star, 4000);
        prop_assert!(lsn.line_at.is_some());
        prop_assert!(lsn.peak_degree() <= 4 * 64);
    }

    #[test]
    fn node_count_is_invariant(g in connected_graph(24)) {
        let n = g.node_count();
        for variant in variants() {
            let r = run(&g, variant, Semantics::Star, 2000);
            prop_assert_eq!(r.final_graph.node_count(), n);
        }
    }
}
