//! Human-facing views over manifests and JSONL traces: `obs summarize`,
//! `obs diff`, and `obs trace` are thin wrappers over these functions, so
//! the formatting logic is unit-testable.

use std::fmt::Write as _;

use crate::json::Value;

/// Percentiles reported by summaries and diffs.
const PERCENTILES: [&str; 3] = ["p50", "p90", "p99"];

/// First timeline tick whose shape is `consistent-ring`, if any.
pub fn time_to_consistency(manifest: &Value) -> Option<u64> {
    manifest
        .get("timeline")?
        .as_arr()?
        .iter()
        .find(|p| p.get("shape").and_then(|s| s.as_str()) == Some("consistent-ring"))
        .and_then(|p| p.get("tick"))
        .and_then(|t| t.as_u64())
}

/// One-screen summary of a manifest.
pub fn summarize(manifest: &Value) -> String {
    let mut out = String::new();
    let field = |k: &str| -> String {
        manifest
            .get(k)
            .map(|v| match v {
                Value::Str(s) => s.clone(),
                other => other.to_json(),
            })
            .unwrap_or_else(|| "-".to_string())
    };
    let _ = writeln!(out, "experiment : {}", field("exp"));
    let _ = writeln!(out, "schema     : {}", field("schema"));
    let _ = writeln!(out, "git        : {}", field("git"));
    let _ = writeln!(out, "seed       : {}", field("seed"));
    let _ = writeln!(out, "wall_ms    : {}", field("wall_ms"));
    if let Some(cfg) = manifest.get("config").and_then(|c| c.as_obj()) {
        if !cfg.is_empty() {
            let kv: Vec<String> = cfg
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect();
            let _ = writeln!(out, "config     : {}", kv.join(" "));
        }
    }
    if let Some(counters) = manifest.get("counters").and_then(|c| c.as_obj()) {
        let _ = writeln!(out, "\ncounters ({}):", counters.len());
        for (k, v) in counters {
            let _ = writeln!(out, "  {k:<28} {}", v.to_json());
        }
    }
    if let Some(hists) = manifest.get("hists").and_then(|h| h.as_obj()) {
        if !hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (k, h) in hists {
                let g = |f: &str| h.get(f).map(|v| v.to_json()).unwrap_or("-".into());
                let _ = writeln!(
                    out,
                    "  {k:<22} n={:<8} min={:<6} p50={:<6} p90={:<6} p99={:<6} max={}",
                    g("count"),
                    g("min"),
                    g("p50"),
                    g("p90"),
                    g("p99"),
                    g("max"),
                );
            }
        }
    }
    if let Some(timeline) = manifest.get("timeline").and_then(|t| t.as_arr()) {
        if !timeline.is_empty() {
            let _ = writeln!(out, "\nconvergence timeline ({} samples):", timeline.len());
            for p in condensed_timeline(timeline) {
                let _ = writeln!(out, "  {p}");
            }
            match time_to_consistency(manifest) {
                Some(t) => {
                    let _ = writeln!(out, "time to consistent-ring: {t}");
                }
                None => {
                    let _ = writeln!(out, "time to consistent-ring: never");
                }
            }
        }
    }
    if let Some(chaos) = manifest.get("chaos").and_then(|c| c.as_arr()) {
        if !chaos.is_empty() {
            let _ = writeln!(out, "\nchaos scenarios ({}):", chaos.len());
            for s in chaos {
                let _ = writeln!(
                    out,
                    "  {:<24} n={:<5} seed={:<4} verdict={:<16} recovery={} ticks / {} msgs  floods={}",
                    chaos_key(s),
                    s.get("n").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("verdict").and_then(|v| v.as_str()).unwrap_or("?"),
                    s.get("recovery_ticks").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("recovery_msgs").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("floods").and_then(|v| v.as_u64()).unwrap_or(0),
                );
            }
        }
    }
    out
}

/// Scenario name of one `chaos` array entry.
fn chaos_key(s: &Value) -> String {
    s.get("name")
        .and_then(|v| v.as_str())
        .unwrap_or("?")
        .to_string()
}

/// Identity of one chaos entry for cross-manifest matching.
fn chaos_identity(s: &Value) -> (String, u64, u64) {
    (
        chaos_key(s),
        s.get("n").and_then(|v| v.as_u64()).unwrap_or(0),
        s.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
    )
}

/// Collapses a timeline to its shape-change points (plus the final sample),
/// rendered one per line.
fn condensed_timeline(timeline: &[Value]) -> Vec<String> {
    let mut lines = Vec::new();
    let mut last_shape: Option<&str> = None;
    for (i, p) in timeline.iter().enumerate() {
        let shape = p.get("shape").and_then(|s| s.as_str()).unwrap_or("?");
        let is_last = i == timeline.len() - 1;
        if last_shape == Some(shape) && !is_last {
            continue;
        }
        last_shape = Some(shape);
        let num = |k: &str| {
            p.get(k)
                .and_then(|v| v.as_u64())
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into())
        };
        lines.push(format!(
            "t={:<8} {:<18} local={}/{} churn={}",
            num("tick"),
            shape,
            num("locally_consistent"),
            num("nodes"),
            num("churn"),
        ));
    }
    lines
}

/// Diff of two manifests: counter deltas, histogram percentile shifts, and
/// convergence-time regressions. Returns a report; identical manifests
/// produce "no differences".
pub fn diff(a: &Value, b: &Value) -> String {
    let mut out = String::new();
    let name = |m: &Value| {
        m.get("exp")
            .and_then(|e| e.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let seed = |m: &Value| {
        m.get("seed")
            .and_then(|s| s.as_u64())
            .map(|s| format!(" (seed {s})"))
            .unwrap_or_default()
    };
    let _ = writeln!(out, "A: {}{}", name(a), seed(a));
    let _ = writeln!(out, "B: {}{}", name(b), seed(b));
    let mut differences = 0usize;

    // --- counters --------------------------------------------------------
    let counters = |m: &Value| -> Vec<(String, u64)> {
        m.get("counters")
            .and_then(|c| c.as_obj())
            .map(|o| {
                o.iter()
                    .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let ca = counters(a);
    let cb = counters(b);
    let mut keys: Vec<&String> = ca.iter().chain(cb.iter()).map(|(k, _)| k).collect();
    keys.sort();
    keys.dedup();
    let mut counter_lines = Vec::new();
    for k in keys {
        let va = ca
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        let vb = cb
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        if va != vb {
            counter_lines.push(format!("  {k:<28} {va} -> {vb}  ({})", delta(va, vb)));
        }
    }
    if !counter_lines.is_empty() {
        differences += counter_lines.len();
        let _ = writeln!(out, "\ncounter deltas:");
        for l in counter_lines {
            let _ = writeln!(out, "{l}");
        }
    }

    // --- histogram percentiles -------------------------------------------
    let hist_keys = |m: &Value| -> Vec<String> {
        m.get("hists")
            .and_then(|h| h.as_obj())
            .map(|o| o.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default()
    };
    let mut hkeys = hist_keys(a);
    hkeys.extend(hist_keys(b));
    hkeys.sort();
    hkeys.dedup();
    let mut hist_lines = Vec::new();
    for k in &hkeys {
        let mut shifts = Vec::new();
        for p in PERCENTILES {
            let get = |m: &Value| {
                m.get("hists")
                    .and_then(|h| h.get(k))
                    .and_then(|h| h.get(p))
                    .and_then(|v| v.as_u64())
            };
            match (get(a), get(b)) {
                (Some(x), Some(y)) if x != y => shifts.push(format!("{p} {x} -> {y}")),
                (Some(x), None) => shifts.push(format!("{p} {x} -> -")),
                (None, Some(y)) => shifts.push(format!("{p} - -> {y}")),
                _ => {}
            }
        }
        if !shifts.is_empty() {
            hist_lines.push(format!("  {k:<22} {}", shifts.join(", ")));
        }
    }
    if !hist_lines.is_empty() {
        differences += hist_lines.len();
        let _ = writeln!(out, "\nhistogram percentile shifts:");
        for l in hist_lines {
            let _ = writeln!(out, "{l}");
        }
    }

    // --- convergence time -------------------------------------------------
    let ta = time_to_consistency(a);
    let tb = time_to_consistency(b);
    if ta != tb {
        differences += 1;
        let show = |t: Option<u64>| t.map(|t| t.to_string()).unwrap_or_else(|| "never".into());
        let regression = match (ta, tb) {
            (Some(x), Some(y)) if y > x => "  ** regression **",
            (Some(_), None) => "  ** regression (no longer converges) **",
            _ => "",
        };
        let _ = writeln!(
            out,
            "\ntime to consistent-ring: {} -> {}{}",
            show(ta),
            show(tb),
            regression
        );
    }

    // --- chaos recovery ---------------------------------------------------
    // When both manifests carry a chaos timeline (ssr-obs/2), compare
    // recovery cost and watchdog verdicts per scenario identity.
    let chaos_arr = |m: &Value| -> Vec<Value> {
        m.get("chaos")
            .and_then(|c| c.as_arr())
            .map(|arr| arr.to_vec())
            .unwrap_or_default()
    };
    let cha = chaos_arr(a);
    let chb = chaos_arr(b);
    if !cha.is_empty() && !chb.is_empty() {
        let mut chaos_lines = Vec::new();
        for sa in &cha {
            let id = chaos_identity(sa);
            let Some(sb) = chb.iter().find(|s| chaos_identity(s) == id) else {
                chaos_lines.push(format!("  {:<24} only in A", id.0));
                continue;
            };
            let num = |s: &Value, k: &str| s.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            let verdict = |s: &Value| {
                s.get("verdict")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            };
            let (va, vb) = (verdict(sa), verdict(sb));
            let mut parts = Vec::new();
            if va != vb {
                parts.push(format!("verdict {va} -> {vb}"));
            }
            for key in ["recovery_ticks", "recovery_msgs"] {
                let (x, y) = (num(sa, key), num(sb, key));
                if x != y {
                    parts.push(format!("{key} {x} -> {y} ({})", delta(x, y)));
                }
            }
            if !parts.is_empty() {
                let flag = if vb.starts_with("frozen") && !va.starts_with("frozen") {
                    "  ** regression (froze) **"
                } else {
                    ""
                };
                chaos_lines.push(format!(
                    "  {:<24} n={} seed={}: {}{flag}",
                    id.0,
                    id.1,
                    id.2,
                    parts.join(", ")
                ));
            }
        }
        for sb in &chb {
            if !cha.iter().any(|s| chaos_identity(s) == chaos_identity(sb)) {
                chaos_lines.push(format!("  {:<24} only in B", chaos_key(sb)));
            }
        }
        if !chaos_lines.is_empty() {
            differences += chaos_lines.len();
            let _ = writeln!(out, "\nchaos recovery deltas:");
            for l in chaos_lines {
                let _ = writeln!(out, "{l}");
            }
        }
    }

    if differences == 0 {
        let _ = writeln!(out, "\nno differences");
    }
    out
}

/// Schema tag of a `BENCH_perf.json` perf baseline (written by `exp_perf`).
pub const PERF_SCHEMA: &str = "ssr-bench-perf/1";

/// `true` when a parsed JSON document is a perf baseline rather than a run
/// manifest — `obs diff` dispatches on this.
pub fn is_perf_baseline(v: &Value) -> bool {
    v.get("schema").and_then(|s| s.as_str()) == Some(PERF_SCHEMA)
}

/// Diff of two `BENCH_perf.json` perf baselines, per scenario name.
///
/// * `ns_per_op` / `wall_ns` are wall-clock: a change is flagged as a
///   regression only when B is slower than A by more than `threshold_pct`
///   percent (noise below the threshold is shown but not flagged).
/// * `ticks`, `ops`, `messages_delivered`, `node_activations`, and
///   `peak_queue_depth` are deterministic for a given seed: *any* change
///   is reported (it is a behavior change, not noise), and increases
///   beyond the threshold are flagged.
///
/// Returns the report and whether any regression was flagged — the CLI
/// exits non-zero on `true`, which is what makes `obs diff old new
/// --threshold 20` usable as a CI perf gate.
pub fn diff_perf(a: &Value, b: &Value, threshold_pct: f64) -> (String, bool) {
    let mut out = String::new();
    let git = |m: &Value| {
        m.get("git")
            .and_then(|g| g.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let _ = writeln!(out, "A: perf baseline @ {}", git(a));
    let _ = writeln!(out, "B: perf baseline @ {}", git(b));
    let _ = writeln!(out, "regression threshold: +{threshold_pct}%");

    let scenarios = |m: &Value| -> Vec<Value> {
        m.get("scenarios")
            .and_then(|s| s.as_arr())
            .map(|arr| arr.to_vec())
            .unwrap_or_default()
    };
    let name_of = |s: &Value| {
        s.get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let sa = scenarios(a);
    let sb = scenarios(b);
    let mut regressions = 0usize;

    for ea in &sa {
        let name = name_of(ea);
        let Some(eb) = sb.iter().find(|s| name_of(s) == name) else {
            let _ = writeln!(out, "\n{name}: only in A");
            continue;
        };
        let mut lines: Vec<String> = Vec::new();
        let num = |s: &Value, k: &str| s.get(k).and_then(|v| v.as_f64());
        // wall-clock: threshold-gated
        if let (Some(x), Some(y)) = (num(ea, "ns_per_op"), num(eb, "ns_per_op")) {
            if x > 0.0 {
                let pct = (y - x) * 100.0 / x;
                if pct.abs() >= 0.05 {
                    let flag = if pct > threshold_pct {
                        regressions += 1;
                        "  ** regression **"
                    } else {
                        ""
                    };
                    lines.push(format!("ns_per_op {x:.0} -> {y:.0} ({pct:+.1}%){flag}"));
                }
            }
        }
        // deterministic work ledger: any drift is a behavior change
        for key in [
            "ticks",
            "ops",
            "messages_delivered",
            "node_activations",
            "peak_queue_depth",
        ] {
            let x = num(ea, key).unwrap_or(0.0);
            let y = num(eb, key).unwrap_or(0.0);
            if x != y {
                let flag = if x > 0.0 && (y - x) * 100.0 / x > threshold_pct {
                    regressions += 1;
                    "  ** regression **"
                } else {
                    ""
                };
                lines.push(format!(
                    "{key} {} -> {}  (behavior change){flag}",
                    x as u64, y as u64
                ));
            }
        }
        if !lines.is_empty() {
            let _ = writeln!(out, "\n{name}:");
            for l in lines {
                let _ = writeln!(out, "  {l}");
            }
        }
    }
    for eb in &sb {
        let name = name_of(eb);
        if !sa.iter().any(|s| name_of(s) == name) {
            let _ = writeln!(out, "\n{name}: only in B");
        }
    }

    if regressions == 0 {
        let _ = writeln!(out, "\nno regressions beyond +{threshold_pct}%");
    } else {
        let _ = writeln!(
            out,
            "\n{regressions} regression(s) beyond +{threshold_pct}%"
        );
    }
    (out, regressions > 0)
}

fn delta(a: u64, b: u64) -> String {
    let d = b as i128 - a as i128;
    let sign = if d >= 0 { "+" } else { "" };
    if a == 0 {
        format!("{sign}{d}")
    } else {
        format!("{sign}{d}, {sign}{:.1}%", d as f64 * 100.0 / a as f64)
    }
}

/// Predicate set for `obs trace` filtering.
#[derive(Clone, Debug, Default)]
pub struct TraceFilter {
    /// Keep only records with this `ev` (e.g. `send`).
    pub ev: Option<String>,
    /// Keep only records touching this node (as `from`, `to`, or `node`).
    pub node: Option<u64>,
    /// Keep only records at `at >= since`.
    pub since: Option<u64>,
    /// Keep only records at `at <= until`.
    pub until: Option<u64>,
}

impl TraceFilter {
    /// Whether a parsed trace record passes the filter.
    pub fn matches(&self, rec: &Value) -> bool {
        if let Some(want) = &self.ev {
            if rec.get("ev").and_then(|e| e.as_str()) != Some(want.as_str()) {
                return false;
            }
        }
        let at = rec.get("at").and_then(|a| a.as_u64());
        if let Some(since) = self.since {
            if at.is_none_or(|t| t < since) {
                return false;
            }
        }
        if let Some(until) = self.until {
            if at.is_none_or(|t| t > until) {
                return false;
            }
        }
        if let Some(node) = self.node {
            let touches = ["from", "to", "node"]
                .iter()
                .any(|k| rec.get(k).and_then(|v| v.as_u64()) == Some(node));
            if !touches {
                return false;
            }
        }
        true
    }
}

/// Renders one parsed JSONL trace record as an aligned, human-readable line.
pub fn format_trace_line(rec: &Value) -> String {
    let ev = rec.get("ev").and_then(|e| e.as_str()).unwrap_or("?");
    let at = rec.get("at").and_then(|a| a.as_u64()).unwrap_or(0);
    let num = |k: &str| rec.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let text = |k: &str| {
        rec.get(k)
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string()
    };
    match ev {
        "send" | "deliver" => format!(
            "[{at:>8}] {ev:<8} {:>4} -> {:<4} kind={}",
            num("from"),
            num("to"),
            text("kind")
        ),
        "lost" => format!(
            "[{at:>8}] {ev:<8} {:>4} -> {:<4} reason={}",
            num("from"),
            num("to"),
            text("reason")
        ),
        "fault" => format!("[{at:>8}] {ev:<8} {}", text("desc")),
        "note" => format!("[{at:>8}] {ev:<8} node {}: {}", num("node"), text("text")),
        "diag" => format!("[{at:>8}] {ev:<8} {}: {}", text("source"), text("text")),
        other => format!("[{at:>8}] {other} {}", rec.to_json()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::manifest::{Manifest, TimelinePoint};

    fn manifest_with(seed: u64, tx: u64, route_p50_source: u64, converge_at: u64) -> Value {
        let mut metrics = ssr_sim::Metrics::new();
        metrics.add("tx.total", tx);
        metrics.add("msg.notify", tx);
        for i in 0..20 {
            metrics.observe_hist("route.len", route_p50_source + i % 3);
        }
        let mut man = Manifest::new("exp_test");
        man.seed(seed).config("n", 64).record_metrics(&metrics);
        man.timeline_point(TimelinePoint {
            tick: 0,
            shape: "incomplete".into(),
            locally_consistent: 0,
            nodes: 64,
            churn: 0,
        });
        man.timeline_point(TimelinePoint {
            tick: converge_at,
            shape: "consistent-ring".into(),
            locally_consistent: 64,
            nodes: 64,
            churn: 3,
        });
        parse(&man.to_json()).unwrap()
    }

    #[test]
    fn summarize_shows_the_essentials() {
        let m = manifest_with(1, 500, 4, 64);
        let s = summarize(&m);
        assert!(s.contains("experiment : exp_test"));
        assert!(s.contains("seed       : 1"));
        assert!(s.contains("tx.total"));
        assert!(s.contains("route.len"));
        assert!(s.contains("consistent-ring"));
        assert!(s.contains("time to consistent-ring: 64"));
    }

    #[test]
    fn diff_reports_deltas_and_regressions() {
        let a = manifest_with(1, 500, 4, 64);
        let b = manifest_with(2, 650, 4000, 96);
        let d = diff(&a, &b);
        assert!(d.contains("tx.total"), "{d}");
        assert!(d.contains("500 -> 650"), "{d}");
        assert!(d.contains("+150"), "{d}");
        assert!(d.contains("route.len"), "{d}");
        assert!(d.contains("time to consistent-ring: 64 -> 96"), "{d}");
        assert!(d.contains("** regression **"), "{d}");
    }

    #[test]
    fn diff_of_identical_manifests_is_clean() {
        let a = manifest_with(1, 500, 4, 64);
        let d = diff(&a, &a);
        assert!(d.contains("no differences"), "{d}");
    }

    fn chaos_manifest(verdict: &str, recovery_ticks: u64, recovery_msgs: u64) -> Value {
        let mut man = Manifest::new("exp_chaos");
        man.seed(0).chaos_scenario(crate::manifest::ChaosScenario {
            name: "partition".into(),
            n: 50,
            seed: 3,
            verdict: verdict.into(),
            recovery_ticks,
            recovery_msgs,
            floods: 0,
            union_disconnected: 0,
            potential_rises: 0,
        });
        parse(&man.to_json()).unwrap()
    }

    #[test]
    fn summarize_shows_chaos_scenarios() {
        let s = summarize(&chaos_manifest("converged", 412, 900));
        assert!(s.contains("chaos scenarios (1):"), "{s}");
        assert!(s.contains("partition"), "{s}");
        assert!(s.contains("verdict=converged"), "{s}");
        assert!(s.contains("recovery=412 ticks / 900 msgs"), "{s}");
    }

    #[test]
    fn diff_reports_chaos_recovery_and_verdicts() {
        let a = chaos_manifest("converged", 412, 900);
        let b = chaos_manifest("frozen_crossing", 5104, 4000);
        let d = diff(&a, &b);
        assert!(d.contains("chaos recovery deltas:"), "{d}");
        assert!(d.contains("verdict converged -> frozen_crossing"), "{d}");
        assert!(d.contains("recovery_ticks 412 -> 5104"), "{d}");
        assert!(d.contains("** regression (froze) **"), "{d}");
        // identical chaos sections stay silent
        let d = diff(&a, &a);
        assert!(d.contains("no differences"), "{d}");
    }

    fn perf_baseline(git: &str, ns_per_op: f64, delivered: u64) -> Value {
        let doc = format!(
            "{{\"schema\":\"ssr-bench-perf/1\",\"git\":\"{git}\",\"seed\":1,\
             \"scenarios\":[{{\"name\":\"convergence_n100\",\"ops\":3,\
             \"ns_per_op\":{ns_per_op},\"ticks\":88,\
             \"messages_delivered\":{delivered},\"node_activations\":9622,\
             \"peak_queue_depth\":648}}]}}"
        );
        parse(&doc).unwrap()
    }

    #[test]
    fn perf_baselines_are_recognized() {
        assert!(is_perf_baseline(&perf_baseline("abc", 100.0, 5)));
        assert!(!is_perf_baseline(&manifest_with(1, 500, 4, 64)));
        assert!(!is_perf_baseline(&parse("{}").unwrap()));
    }

    #[test]
    fn perf_diff_flags_wall_regressions_beyond_threshold() {
        let a = perf_baseline("old", 1000.0, 500);
        // +30% wall, counters unchanged: regression at 10%, noise at 50%
        let b = perf_baseline("new", 1300.0, 500);
        let (report, failed) = diff_perf(&a, &b, 10.0);
        assert!(failed, "{report}");
        assert!(
            report.contains("ns_per_op 1000 -> 1300 (+30.0%)"),
            "{report}"
        );
        assert!(report.contains("** regression **"), "{report}");
        assert!(report.contains("1 regression(s) beyond +10%"), "{report}");
        let (report, failed) = diff_perf(&a, &b, 50.0);
        assert!(!failed, "{report}");
        assert!(report.contains("no regressions beyond +50%"), "{report}");
    }

    #[test]
    fn perf_diff_reports_counter_drift_as_behavior_change() {
        let a = perf_baseline("old", 1000.0, 500);
        let mut report = diff_perf(&a, &perf_baseline("new", 1000.0, 520), 10.0);
        // +4% delivered: reported (deterministic drift) but under threshold
        assert!(!report.1, "{}", report.0);
        assert!(
            report.0.contains("messages_delivered 500 -> 520"),
            "{}",
            report.0
        );
        assert!(report.0.contains("behavior change"), "{}", report.0);
        // +100% delivered: flagged
        report = diff_perf(&a, &perf_baseline("new", 1000.0, 1000), 10.0);
        assert!(report.1, "{}", report.0);
    }

    #[test]
    fn perf_diff_of_identical_baselines_is_clean() {
        let a = perf_baseline("same", 1000.0, 500);
        let (report, failed) = diff_perf(&a, &a, 10.0);
        assert!(!failed);
        assert!(report.contains("no regressions"), "{report}");
    }

    #[test]
    fn perf_diff_reports_scenario_set_changes() {
        let a = perf_baseline("old", 1000.0, 500);
        let b = parse(
            "{\"schema\":\"ssr-bench-perf/1\",\"git\":\"new\",\"seed\":1,\
             \"scenarios\":[{\"name\":\"routing_n500\",\"ops\":1,\
             \"ns_per_op\":5.0,\"ticks\":0,\"messages_delivered\":0,\
             \"node_activations\":0,\"peak_queue_depth\":0}]}",
        )
        .unwrap();
        let (report, _) = diff_perf(&a, &b, 10.0);
        assert!(report.contains("convergence_n100: only in A"), "{report}");
        assert!(report.contains("routing_n500: only in B"), "{report}");
    }

    #[test]
    fn time_to_consistency_handles_missing() {
        let v = parse("{\"timeline\":[{\"tick\":5,\"shape\":\"loopy(2)\"}]}").unwrap();
        assert_eq!(time_to_consistency(&v), None);
        let v = parse("{}").unwrap();
        assert_eq!(time_to_consistency(&v), None);
    }

    #[test]
    fn trace_filter_and_formatting() {
        let rec =
            parse("{\"ev\":\"send\",\"at\":12,\"from\":1,\"to\":2,\"kind\":\"notify\"}").unwrap();
        assert!(TraceFilter::default().matches(&rec));
        assert!(TraceFilter {
            ev: Some("send".into()),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            ev: Some("lost".into()),
            ..Default::default()
        }
        .matches(&rec));
        assert!(TraceFilter {
            node: Some(2),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            node: Some(9),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            since: Some(13),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            until: Some(11),
            ..Default::default()
        }
        .matches(&rec));
        let line = format_trace_line(&rec);
        assert!(line.contains("send"));
        assert!(line.contains("1 -> 2"));
        assert!(line.contains("kind=notify"));
        let note = parse("{\"ev\":\"note\",\"at\":3,\"node\":7,\"text\":\"x\"}").unwrap();
        assert!(format_trace_line(&note).contains("node 7: x"));
        let diag = parse("{\"ev\":\"diag\",\"at\":96,\"source\":\"watchdog\",\"text\":\"frozen\"}")
            .unwrap();
        let line = format_trace_line(&diag);
        assert!(line.contains("diag"), "{line}");
        assert!(line.contains("watchdog: frozen"), "{line}");
    }
}
