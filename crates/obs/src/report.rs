//! Human-facing views over manifests and JSONL traces: `obs summarize`,
//! `obs diff`, and `obs trace` are thin wrappers over these functions, so
//! the formatting logic is unit-testable.

use std::fmt::Write as _;

use crate::json::Value;

/// Percentiles reported by summaries and diffs.
const PERCENTILES: [&str; 3] = ["p50", "p90", "p99"];

/// First timeline tick whose shape is `consistent-ring`, if any.
pub fn time_to_consistency(manifest: &Value) -> Option<u64> {
    manifest
        .get("timeline")?
        .as_arr()?
        .iter()
        .find(|p| p.get("shape").and_then(|s| s.as_str()) == Some("consistent-ring"))
        .and_then(|p| p.get("tick"))
        .and_then(|t| t.as_u64())
}

/// One-screen summary of a manifest.
pub fn summarize(manifest: &Value) -> String {
    let mut out = String::new();
    let field = |k: &str| -> String {
        manifest
            .get(k)
            .map(|v| match v {
                Value::Str(s) => s.clone(),
                other => other.to_json(),
            })
            .unwrap_or_else(|| "-".to_string())
    };
    let _ = writeln!(out, "experiment : {}", field("exp"));
    let _ = writeln!(out, "schema     : {}", field("schema"));
    let _ = writeln!(out, "git        : {}", field("git"));
    let _ = writeln!(out, "seed       : {}", field("seed"));
    let _ = writeln!(out, "wall_ms    : {}", field("wall_ms"));
    if let Some(cfg) = manifest.get("config").and_then(|c| c.as_obj()) {
        if !cfg.is_empty() {
            let kv: Vec<String> = cfg
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect();
            let _ = writeln!(out, "config     : {}", kv.join(" "));
        }
    }
    if let Some(counters) = manifest.get("counters").and_then(|c| c.as_obj()) {
        let _ = writeln!(out, "\ncounters ({}):", counters.len());
        for (k, v) in counters {
            let _ = writeln!(out, "  {k:<28} {}", v.to_json());
        }
    }
    if let Some(hists) = manifest.get("hists").and_then(|h| h.as_obj()) {
        if !hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (k, h) in hists {
                let g = |f: &str| h.get(f).map(|v| v.to_json()).unwrap_or("-".into());
                let _ = writeln!(
                    out,
                    "  {k:<22} n={:<8} min={:<6} p50={:<6} p90={:<6} p99={:<6} max={}",
                    g("count"),
                    g("min"),
                    g("p50"),
                    g("p90"),
                    g("p99"),
                    g("max"),
                );
            }
        }
    }
    if let Some(timeline) = manifest.get("timeline").and_then(|t| t.as_arr()) {
        if !timeline.is_empty() {
            let _ = writeln!(out, "\nconvergence timeline ({} samples):", timeline.len());
            for p in condensed_timeline(timeline) {
                let _ = writeln!(out, "  {p}");
            }
            match time_to_consistency(manifest) {
                Some(t) => {
                    let _ = writeln!(out, "time to consistent-ring: {t}");
                }
                None => {
                    let _ = writeln!(out, "time to consistent-ring: never");
                }
            }
        }
    }
    if let Some(chaos) = manifest.get("chaos").and_then(|c| c.as_arr()) {
        if !chaos.is_empty() {
            let _ = writeln!(out, "\nchaos scenarios ({}):", chaos.len());
            for s in chaos {
                let _ = writeln!(
                    out,
                    "  {:<24} n={:<5} seed={:<4} verdict={:<16} recovery={} ticks / {} msgs  floods={}",
                    chaos_key(s),
                    s.get("n").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("verdict").and_then(|v| v.as_str()).unwrap_or("?"),
                    s.get("recovery_ticks").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("recovery_msgs").and_then(|v| v.as_u64()).unwrap_or(0),
                    s.get("floods").and_then(|v| v.as_u64()).unwrap_or(0),
                );
            }
        }
    }
    out
}

/// Scenario name of one `chaos` array entry.
fn chaos_key(s: &Value) -> String {
    s.get("name")
        .and_then(|v| v.as_str())
        .unwrap_or("?")
        .to_string()
}

/// Identity of one chaos entry for cross-manifest matching.
fn chaos_identity(s: &Value) -> (String, u64, u64) {
    (
        chaos_key(s),
        s.get("n").and_then(|v| v.as_u64()).unwrap_or(0),
        s.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
    )
}

/// Collapses a timeline to its shape-change points (plus the final sample),
/// rendered one per line.
fn condensed_timeline(timeline: &[Value]) -> Vec<String> {
    let mut lines = Vec::new();
    let mut last_shape: Option<&str> = None;
    for (i, p) in timeline.iter().enumerate() {
        let shape = p.get("shape").and_then(|s| s.as_str()).unwrap_or("?");
        let is_last = i == timeline.len() - 1;
        if last_shape == Some(shape) && !is_last {
            continue;
        }
        last_shape = Some(shape);
        let num = |k: &str| {
            p.get(k)
                .and_then(|v| v.as_u64())
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into())
        };
        lines.push(format!(
            "t={:<8} {:<18} local={}/{} churn={}",
            num("tick"),
            shape,
            num("locally_consistent"),
            num("nodes"),
            num("churn"),
        ));
    }
    lines
}

/// Diff of two manifests: counter deltas, histogram percentile shifts, and
/// convergence-time regressions. Returns a report; identical manifests
/// produce "no differences".
pub fn diff(a: &Value, b: &Value) -> String {
    let mut out = String::new();
    let name = |m: &Value| {
        m.get("exp")
            .and_then(|e| e.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let seed = |m: &Value| {
        m.get("seed")
            .and_then(|s| s.as_u64())
            .map(|s| format!(" (seed {s})"))
            .unwrap_or_default()
    };
    let _ = writeln!(out, "A: {}{}", name(a), seed(a));
    let _ = writeln!(out, "B: {}{}", name(b), seed(b));
    let mut differences = 0usize;

    // --- counters --------------------------------------------------------
    let counters = |m: &Value| -> Vec<(String, u64)> {
        m.get("counters")
            .and_then(|c| c.as_obj())
            .map(|o| {
                o.iter()
                    .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let ca = counters(a);
    let cb = counters(b);
    let mut keys: Vec<&String> = ca.iter().chain(cb.iter()).map(|(k, _)| k).collect();
    keys.sort();
    keys.dedup();
    let mut counter_lines = Vec::new();
    for k in keys {
        let va = ca
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        let vb = cb
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        if va != vb {
            counter_lines.push(format!("  {k:<28} {va} -> {vb}  ({})", delta(va, vb)));
        }
    }
    if !counter_lines.is_empty() {
        differences += counter_lines.len();
        let _ = writeln!(out, "\ncounter deltas:");
        for l in counter_lines {
            let _ = writeln!(out, "{l}");
        }
    }

    // --- histogram percentiles -------------------------------------------
    let hist_keys = |m: &Value| -> Vec<String> {
        m.get("hists")
            .and_then(|h| h.as_obj())
            .map(|o| o.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default()
    };
    let mut hkeys = hist_keys(a);
    hkeys.extend(hist_keys(b));
    hkeys.sort();
    hkeys.dedup();
    let mut hist_lines = Vec::new();
    for k in &hkeys {
        let mut shifts = Vec::new();
        for p in PERCENTILES {
            let get = |m: &Value| {
                m.get("hists")
                    .and_then(|h| h.get(k))
                    .and_then(|h| h.get(p))
                    .and_then(|v| v.as_u64())
            };
            match (get(a), get(b)) {
                (Some(x), Some(y)) if x != y => shifts.push(format!("{p} {x} -> {y}")),
                (Some(x), None) => shifts.push(format!("{p} {x} -> -")),
                (None, Some(y)) => shifts.push(format!("{p} - -> {y}")),
                _ => {}
            }
        }
        if !shifts.is_empty() {
            hist_lines.push(format!("  {k:<22} {}", shifts.join(", ")));
        }
    }
    if !hist_lines.is_empty() {
        differences += hist_lines.len();
        let _ = writeln!(out, "\nhistogram percentile shifts:");
        for l in hist_lines {
            let _ = writeln!(out, "{l}");
        }
    }

    // --- convergence time -------------------------------------------------
    let ta = time_to_consistency(a);
    let tb = time_to_consistency(b);
    if ta != tb {
        differences += 1;
        let show = |t: Option<u64>| t.map(|t| t.to_string()).unwrap_or_else(|| "never".into());
        let regression = match (ta, tb) {
            (Some(x), Some(y)) if y > x => "  ** regression **",
            (Some(_), None) => "  ** regression (no longer converges) **",
            _ => "",
        };
        let _ = writeln!(
            out,
            "\ntime to consistent-ring: {} -> {}{}",
            show(ta),
            show(tb),
            regression
        );
    }

    // --- chaos recovery ---------------------------------------------------
    // When both manifests carry a chaos timeline (ssr-obs/2), compare
    // recovery cost and watchdog verdicts per scenario identity.
    let chaos_arr = |m: &Value| -> Vec<Value> {
        m.get("chaos")
            .and_then(|c| c.as_arr())
            .map(|arr| arr.to_vec())
            .unwrap_or_default()
    };
    let cha = chaos_arr(a);
    let chb = chaos_arr(b);
    if !cha.is_empty() && !chb.is_empty() {
        let mut chaos_lines = Vec::new();
        for sa in &cha {
            let id = chaos_identity(sa);
            let Some(sb) = chb.iter().find(|s| chaos_identity(s) == id) else {
                chaos_lines.push(format!("  {:<24} only in A", id.0));
                continue;
            };
            let num = |s: &Value, k: &str| s.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            let verdict = |s: &Value| {
                s.get("verdict")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            };
            let (va, vb) = (verdict(sa), verdict(sb));
            let mut parts = Vec::new();
            if va != vb {
                parts.push(format!("verdict {va} -> {vb}"));
            }
            for key in ["recovery_ticks", "recovery_msgs"] {
                let (x, y) = (num(sa, key), num(sb, key));
                if x != y {
                    parts.push(format!("{key} {x} -> {y} ({})", delta(x, y)));
                }
            }
            if !parts.is_empty() {
                let flag = if vb.starts_with("frozen") && !va.starts_with("frozen") {
                    "  ** regression (froze) **"
                } else {
                    ""
                };
                chaos_lines.push(format!(
                    "  {:<24} n={} seed={}: {}{flag}",
                    id.0,
                    id.1,
                    id.2,
                    parts.join(", ")
                ));
            }
        }
        for sb in &chb {
            if !cha.iter().any(|s| chaos_identity(s) == chaos_identity(sb)) {
                chaos_lines.push(format!("  {:<24} only in B", chaos_key(sb)));
            }
        }
        if !chaos_lines.is_empty() {
            differences += chaos_lines.len();
            let _ = writeln!(out, "\nchaos recovery deltas:");
            for l in chaos_lines {
                let _ = writeln!(out, "{l}");
            }
        }
    }

    if differences == 0 {
        let _ = writeln!(out, "\nno differences");
    }
    out
}

/// Schema tag of a `BENCH_perf.json` perf baseline (written by `exp_perf`).
///
/// `ssr-bench-perf/2` added the per-scenario message breakdown
/// (`messages_by_cause`, `messages_by_kind`, `wasted`, `wasted_per_mille`)
/// measured by a separate instrumented run; timing repeats stay
/// uninstrumented.
pub const PERF_SCHEMA: &str = "ssr-bench-perf/2";

/// Every perf-baseline schema `obs diff` can read. Diffing a `/1` baseline
/// against a `/2` one is supported: fields present on only one side are
/// reported as schema growth, not drift.
pub const PERF_SCHEMAS: [&str; 2] = ["ssr-bench-perf/1", "ssr-bench-perf/2"];

/// `true` when a parsed JSON document is a perf baseline rather than a run
/// manifest — `obs diff` dispatches on this.
pub fn is_perf_baseline(v: &Value) -> bool {
    v.get("schema")
        .and_then(|s| s.as_str())
        .is_some_and(|s| PERF_SCHEMAS.contains(&s))
}

/// Diff of two `BENCH_perf.json` perf baselines, per scenario name.
///
/// * `ns_per_op` is wall-clock: a change is flagged as a regression only
///   when B is slower than A by more than `threshold_pct` percent (noise
///   below the threshold is shown but not flagged). `wall_ns` is
///   `ns_per_op * ops` and is skipped as redundant.
/// * every other numeric scenario field (`ticks`, `ops`,
///   `messages_delivered`, `node_activations`, `peak_queue_depth`,
///   `wasted`, `wasted_per_mille`, …) is deterministic for a given seed:
///   *any* change is reported (it is a behavior change, not noise), and
///   increases beyond the threshold are flagged.
/// * a numeric field present in only one baseline is **schema growth**
///   (e.g. diffing an `ssr-bench-perf/1` baseline against a `/2` one):
///   reported informationally, never flagged as a regression.
///
/// Returns the report and whether any regression was flagged — the CLI
/// exits non-zero on `true`, which is what makes `obs diff old new
/// --threshold 20` usable as a CI perf gate.
pub fn diff_perf(a: &Value, b: &Value, threshold_pct: f64) -> (String, bool) {
    let mut out = String::new();
    let git = |m: &Value| {
        m.get("git")
            .and_then(|g| g.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let _ = writeln!(out, "A: perf baseline @ {}", git(a));
    let _ = writeln!(out, "B: perf baseline @ {}", git(b));
    let _ = writeln!(out, "regression threshold: +{threshold_pct}%");

    let scenarios = |m: &Value| -> Vec<Value> {
        m.get("scenarios")
            .and_then(|s| s.as_arr())
            .map(|arr| arr.to_vec())
            .unwrap_or_default()
    };
    let name_of = |s: &Value| {
        s.get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let sa = scenarios(a);
    let sb = scenarios(b);
    let mut regressions = 0usize;

    for ea in &sa {
        let name = name_of(ea);
        let Some(eb) = sb.iter().find(|s| name_of(s) == name) else {
            let _ = writeln!(out, "\n{name}: only in A");
            continue;
        };
        let mut lines: Vec<String> = Vec::new();
        let num = |s: &Value, k: &str| s.get(k).and_then(|v| v.as_f64());
        // wall-clock: threshold-gated
        if let (Some(x), Some(y)) = (num(ea, "ns_per_op"), num(eb, "ns_per_op")) {
            if x > 0.0 {
                let pct = (y - x) * 100.0 / x;
                if pct.abs() >= 0.05 {
                    let flag = if pct > threshold_pct {
                        regressions += 1;
                        "  ** regression **"
                    } else {
                        ""
                    };
                    lines.push(format!("ns_per_op {x:.0} -> {y:.0} ({pct:+.1}%){flag}"));
                }
            }
        }
        // deterministic work ledger: any drift is a behavior change; a key
        // on only one side is schema growth/shrink, reported but never
        // flagged (a /1-vs-/2 diff must stay usable as a perf gate)
        let numeric_keys = |s: &Value| -> Vec<String> {
            s.as_obj()
                .map(|o| {
                    o.iter()
                        .filter(|(k, v)| {
                            // wall_ns is ns_per_op * ops — wall-clock, already
                            // covered by the threshold-gated ns_per_op line
                            v.as_f64().is_some()
                                && k != "name"
                                && k != "ns_per_op"
                                && k != "wall_ns"
                        })
                        .map(|(k, _)| k.clone())
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut keys = numeric_keys(ea);
        for k in numeric_keys(eb) {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        keys.sort();
        for key in &keys {
            match (num(ea, key), num(eb, key)) {
                (Some(x), Some(y)) if x != y => {
                    let flag = if x > 0.0 && (y - x) * 100.0 / x > threshold_pct {
                        regressions += 1;
                        "  ** regression **"
                    } else {
                        ""
                    };
                    lines.push(format!(
                        "{key} {} -> {}  (behavior change){flag}",
                        x as u64, y as u64
                    ));
                }
                (Some(x), None) => {
                    lines.push(format!(
                        "{key} {} -> absent  (schema change, informational)",
                        x as u64
                    ));
                }
                (None, Some(y)) => {
                    lines.push(format!(
                        "{key} absent -> {}  (schema growth, informational)",
                        y as u64
                    ));
                }
                _ => {}
            }
        }
        if !lines.is_empty() {
            let _ = writeln!(out, "\n{name}:");
            for l in lines {
                let _ = writeln!(out, "  {l}");
            }
        }
    }
    for eb in &sb {
        let name = name_of(eb);
        if !sa.iter().any(|s| name_of(s) == name) {
            let _ = writeln!(out, "\n{name}: only in B");
        }
    }

    if regressions == 0 {
        let _ = writeln!(out, "\nno regressions beyond +{threshold_pct}%");
    } else {
        let _ = writeln!(
            out,
            "\n{regressions} regression(s) beyond +{threshold_pct}%"
        );
    }
    (out, regressions > 0)
}

fn delta(a: u64, b: u64) -> String {
    let d = b as i128 - a as i128;
    let sign = if d >= 0 { "+" } else { "" };
    if a == 0 {
        format!("{sign}{d}")
    } else {
        format!("{sign}{d}, {sign}{:.1}%", d as f64 * 100.0 / a as f64)
    }
}

/// Predicate set for `obs trace` filtering.
#[derive(Clone, Debug, Default)]
pub struct TraceFilter {
    /// Keep only records with this `ev` (e.g. `send`).
    pub ev: Option<String>,
    /// Keep only records with this message `kind` (e.g. `notify`).
    pub kind: Option<String>,
    /// Keep only records touching this node (as `from`, `to`, or `node`).
    pub node: Option<u64>,
    /// Keep only records at `at >= since`.
    pub since: Option<u64>,
    /// Keep only records at `at <= until`.
    pub until: Option<u64>,
}

impl TraceFilter {
    /// Whether a parsed trace record passes the filter.
    pub fn matches(&self, rec: &Value) -> bool {
        if let Some(want) = &self.ev {
            if rec.get("ev").and_then(|e| e.as_str()) != Some(want.as_str()) {
                return false;
            }
        }
        if let Some(want) = &self.kind {
            if rec.get("kind").and_then(|k| k.as_str()) != Some(want.as_str()) {
                return false;
            }
        }
        let at = rec.get("at").and_then(|a| a.as_u64());
        if let Some(since) = self.since {
            if at.is_none_or(|t| t < since) {
                return false;
            }
        }
        if let Some(until) = self.until {
            if at.is_none_or(|t| t > until) {
                return false;
            }
        }
        if let Some(node) = self.node {
            let touches = ["from", "to", "node"]
                .iter()
                .any(|k| rec.get(k).and_then(|v| v.as_u64()) == Some(node));
            if !touches {
                return false;
            }
        }
        true
    }
}

/// Renders one parsed JSONL trace record as an aligned, human-readable line.
pub fn format_trace_line(rec: &Value) -> String {
    let ev = rec.get("ev").and_then(|e| e.as_str()).unwrap_or("?");
    let at = rec.get("at").and_then(|a| a.as_u64()).unwrap_or(0);
    let num = |k: &str| rec.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let text = |k: &str| {
        rec.get(k)
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string()
    };
    // provenance tail (ssr-obs/3 traces); absent on pre-provenance traces
    let prov = match rec.get("pid").and_then(|v| v.as_u64()) {
        Some(pid) => format!(
            "  pid={pid} depth={} cause={}",
            num("depth"),
            rec.get("cause").and_then(|v| v.as_str()).unwrap_or("?")
        ),
        None => String::new(),
    };
    match ev {
        "send" | "deliver" => format!(
            "[{at:>8}] {ev:<8} {:>4} -> {:<4} kind={}{prov}",
            num("from"),
            num("to"),
            text("kind")
        ),
        "lost" => format!(
            "[{at:>8}] {ev:<8} {:>4} -> {:<4} reason={}{prov}",
            num("from"),
            num("to"),
            text("reason")
        ),
        "timer" => format!(
            "[{at:>8}] {ev:<8} node {} token={}{prov}",
            num("node"),
            num("token")
        ),
        "fault" => format!("[{at:>8}] {ev:<8} {}{prov}", text("desc")),
        "note" => format!("[{at:>8}] {ev:<8} node {}: {}", num("node"), text("text")),
        "diag" => format!("[{at:>8}] {ev:<8} {}: {}", text("source"), text("text")),
        other => format!("[{at:>8}] {other} {}", rec.to_json()),
    }
}

/// Renders the `provenance.flame` cells of an `ssr-obs/3` manifest as
/// folded stacks — `cause;kind;depth-frame count`, one line per cell —
/// which `flamegraph.pl` consumes unmodified.
///
/// Depth frames name the log₂ bucket the delivery's causal depth fell
/// into: `depth:0`, `depth:1`, `depth:2-3`, `depth:4-7`, …
pub fn flame(manifest: &Value) -> Result<String, String> {
    let prov = provenance_section(manifest)?;
    let cells = prov
        .get("flame")
        .and_then(|f| f.as_arr())
        .ok_or_else(|| "provenance section has no flame cells".to_string())?;
    let mut out = String::new();
    for c in cells {
        let cause = c.get("cause").and_then(|v| v.as_str()).unwrap_or("?");
        let kind = c.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        let lo = c.get("depth").and_then(|v| v.as_u64()).unwrap_or(0);
        let count = c.get("delivered").and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(out, "{cause};{kind};{} {count}", depth_frame(lo));
    }
    Ok(out)
}

/// Human-readable name of the log₂ depth bucket whose lower bound is `lo`.
fn depth_frame(lo: u64) -> String {
    match lo {
        0 | 1 => format!("depth:{lo}"),
        _ => format!("depth:{lo}-{}", 2 * lo - 1),
    }
}

/// The `provenance` object of a manifest, or a friendly error telling the
/// user how to produce one.
fn provenance_section(manifest: &Value) -> Result<&Value, String> {
    manifest.get("provenance").ok_or_else(|| {
        "manifest has no provenance section (ssr-obs/3): re-run the \
         experiment — exp_chaos records it by default"
            .to_string()
    })
}

/// Cost-attribution ranking over a manifest's `provenance` section: total
/// attribution vs `rx.total`, wasted-work ratio, per-cause and per-kind
/// tables, and the hottest nodes by traffic.
pub fn top(manifest: &Value, limit: usize) -> Result<String, String> {
    let prov = provenance_section(manifest)?;
    let num = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let delivered = num(prov, "delivered");
    let wasted = num(prov, "wasted");
    let rx_total = manifest
        .get("counters")
        .and_then(|c| c.get("rx.total"))
        .and_then(|v| v.as_u64());

    let mut out = String::new();
    // the acceptance gate: how much of the run's delivered traffic the
    // ledger attributed to a cause class
    match rx_total {
        Some(total) if total > 0 => {
            let pct = delivered as f64 * 100.0 / total as f64;
            let _ = writeln!(
                out,
                "attributed: {delivered}/{total} deliveries ({pct:.1}%)"
            );
        }
        _ => {
            let _ = writeln!(out, "attributed: {delivered} deliveries");
        }
    }
    if delivered > 0 {
        let _ = writeln!(
            out,
            "wasted work: {wasted}/{delivered} deliveries ({:.1}%)",
            wasted as f64 * 100.0 / delivered as f64
        );
    }

    let cells = prov
        .get("messages")
        .and_then(|m| m.as_arr())
        .ok_or_else(|| "provenance section has no messages cells".to_string())?;
    let mut by_cause: Vec<(String, [u64; 3])> = Vec::new();
    let mut by_kind: Vec<(String, [u64; 3])> = Vec::new();
    for c in cells {
        let stats = [num(c, "delivered"), num(c, "sent"), num(c, "wasted")];
        for (axis, key) in [(&mut by_cause, "cause"), (&mut by_kind, "kind")] {
            let name = c.get(key).and_then(|v| v.as_str()).unwrap_or("?");
            match axis.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => {
                    for (a, s) in acc.iter_mut().zip(stats) {
                        *a += s;
                    }
                }
                None => axis.push((name.to_string(), stats)),
            }
        }
    }
    for (title, mut rows) in [("cause class", by_cause), ("message kind", by_kind)] {
        rows.sort_by(|a, b| b.1[0].cmp(&a.1[0]).then_with(|| a.0.cmp(&b.0)));
        let _ = writeln!(out, "\nby {title}:");
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>10} {:>10}",
            "", "delivered", "sent", "wasted"
        );
        for (name, [d, s, w]) in rows.iter().take(limit) {
            let _ = writeln!(out, "  {name:<22} {d:>10} {s:>10} {w:>10}");
        }
    }

    if let Some(nodes) = prov.get("nodes").and_then(|n| n.as_arr()) {
        let mut rows: Vec<(usize, u64, u64, u64)> = nodes
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let t = t.as_arr()?;
                let get = |j: usize| t.get(j).and_then(|v| v.as_u64()).unwrap_or(0);
                Some((i, get(0), get(1), get(2)))
            })
            .filter(|&(_, s, r, _)| s + r > 0)
            .collect();
        rows.sort_by(|a, b| (b.1 + b.2).cmp(&(a.1 + a.2)).then_with(|| a.0.cmp(&b.0)));
        let _ = writeln!(
            out,
            "\nhot nodes (top {} of {} by traffic):",
            limit.min(rows.len()),
            nodes.len()
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>10} {:>10}",
            "node", "sent", "received", "wasted"
        );
        for (i, s, r, w) in rows.iter().take(limit) {
            let _ = writeln!(out, "  {i:<10} {s:>6} {r:>10} {w:>10}");
        }
    }
    Ok(out)
}

/// Walks the causal chain of trace event `pid` — root first — and renders
/// every trace record each lineage link produced.
///
/// A pid names one queued event; its `send` and matching `deliver` (or
/// `lost`) records share it. The `filter` (shared with `obs trace`)
/// restricts which records print per link — the walk itself always uses
/// the full trace, and a fully filtered-out link keeps a placeholder line
/// so the chain stays connected. A missing link (e.g. a truncated trace)
/// ends the walk with a note instead of an error.
pub fn causes(records: &[Value], pid: u64, filter: &TraceFilter) -> Result<String, String> {
    let find = |id: u64| -> Vec<&Value> {
        records
            .iter()
            .filter(|r| r.get("pid").and_then(|v| v.as_u64()) == Some(id))
            .collect()
    };
    if find(pid).is_empty() {
        return Err(format!("no trace record carries pid {pid}"));
    }
    let mut chain = vec![pid];
    let mut truncated = false;
    let mut cur = pid;
    loop {
        let recs = find(cur);
        let Some(parent) = recs
            .iter()
            .find_map(|r| r.get("parent").and_then(|v| v.as_u64()))
        else {
            // no parent field: `cur` is a root (or the trace lacks provenance)
            break;
        };
        if find(parent).is_empty() {
            truncated = true;
            chain.push(parent);
            break;
        }
        if chain.contains(&parent) {
            return Err(format!("provenance cycle at pid {parent} — corrupt trace"));
        }
        chain.push(parent);
        cur = parent;
    }
    chain.reverse();
    let mut out = String::new();
    let _ = writeln!(out, "causal chain for event {pid} ({} links):", chain.len());
    for (hop, id) in chain.iter().enumerate() {
        let indent = "  ".repeat(hop + 1);
        let recs = find(*id);
        if recs.is_empty() {
            let _ = writeln!(out, "{indent}pid {id}: not in trace (truncated?)");
            continue;
        }
        let shown: Vec<&&Value> = recs.iter().filter(|r| filter.matches(r)).collect();
        if shown.is_empty() {
            let _ = writeln!(out, "{indent}pid {id}: ({} record(s) filtered)", recs.len());
            continue;
        }
        for rec in shown {
            let _ = writeln!(out, "{indent}{}", format_trace_line(rec));
        }
    }
    if truncated {
        let _ = writeln!(out, "(chain truncated: a parent is missing from the trace)");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::manifest::{Manifest, TimelinePoint};

    fn manifest_with(seed: u64, tx: u64, route_p50_source: u64, converge_at: u64) -> Value {
        let mut metrics = ssr_sim::Metrics::new();
        metrics.add("tx.total", tx);
        metrics.add("msg.notify", tx);
        for i in 0..20 {
            metrics.observe_hist("route.len", route_p50_source + i % 3);
        }
        let mut man = Manifest::new("exp_test");
        man.seed(seed).config("n", 64).record_metrics(&metrics);
        man.timeline_point(TimelinePoint {
            tick: 0,
            shape: "incomplete".into(),
            locally_consistent: 0,
            nodes: 64,
            churn: 0,
        });
        man.timeline_point(TimelinePoint {
            tick: converge_at,
            shape: "consistent-ring".into(),
            locally_consistent: 64,
            nodes: 64,
            churn: 3,
        });
        parse(&man.to_json()).unwrap()
    }

    #[test]
    fn summarize_shows_the_essentials() {
        let m = manifest_with(1, 500, 4, 64);
        let s = summarize(&m);
        assert!(s.contains("experiment : exp_test"));
        assert!(s.contains("seed       : 1"));
        assert!(s.contains("tx.total"));
        assert!(s.contains("route.len"));
        assert!(s.contains("consistent-ring"));
        assert!(s.contains("time to consistent-ring: 64"));
    }

    #[test]
    fn diff_reports_deltas_and_regressions() {
        let a = manifest_with(1, 500, 4, 64);
        let b = manifest_with(2, 650, 4000, 96);
        let d = diff(&a, &b);
        assert!(d.contains("tx.total"), "{d}");
        assert!(d.contains("500 -> 650"), "{d}");
        assert!(d.contains("+150"), "{d}");
        assert!(d.contains("route.len"), "{d}");
        assert!(d.contains("time to consistent-ring: 64 -> 96"), "{d}");
        assert!(d.contains("** regression **"), "{d}");
    }

    #[test]
    fn diff_of_identical_manifests_is_clean() {
        let a = manifest_with(1, 500, 4, 64);
        let d = diff(&a, &a);
        assert!(d.contains("no differences"), "{d}");
    }

    fn chaos_manifest(verdict: &str, recovery_ticks: u64, recovery_msgs: u64) -> Value {
        let mut man = Manifest::new("exp_chaos");
        man.seed(0).chaos_scenario(crate::manifest::ChaosScenario {
            name: "partition".into(),
            n: 50,
            seed: 3,
            verdict: verdict.into(),
            recovery_ticks,
            recovery_msgs,
            floods: 0,
            union_disconnected: 0,
            potential_rises: 0,
        });
        parse(&man.to_json()).unwrap()
    }

    #[test]
    fn summarize_shows_chaos_scenarios() {
        let s = summarize(&chaos_manifest("converged", 412, 900));
        assert!(s.contains("chaos scenarios (1):"), "{s}");
        assert!(s.contains("partition"), "{s}");
        assert!(s.contains("verdict=converged"), "{s}");
        assert!(s.contains("recovery=412 ticks / 900 msgs"), "{s}");
    }

    #[test]
    fn diff_reports_chaos_recovery_and_verdicts() {
        let a = chaos_manifest("converged", 412, 900);
        let b = chaos_manifest("frozen_crossing", 5104, 4000);
        let d = diff(&a, &b);
        assert!(d.contains("chaos recovery deltas:"), "{d}");
        assert!(d.contains("verdict converged -> frozen_crossing"), "{d}");
        assert!(d.contains("recovery_ticks 412 -> 5104"), "{d}");
        assert!(d.contains("** regression (froze) **"), "{d}");
        // identical chaos sections stay silent
        let d = diff(&a, &a);
        assert!(d.contains("no differences"), "{d}");
    }

    fn perf_baseline(git: &str, ns_per_op: f64, delivered: u64) -> Value {
        let doc = format!(
            "{{\"schema\":\"ssr-bench-perf/1\",\"git\":\"{git}\",\"seed\":1,\
             \"scenarios\":[{{\"name\":\"convergence_n100\",\"ops\":3,\
             \"ns_per_op\":{ns_per_op},\"ticks\":88,\
             \"messages_delivered\":{delivered},\"node_activations\":9622,\
             \"peak_queue_depth\":648}}]}}"
        );
        parse(&doc).unwrap()
    }

    #[test]
    fn perf_baselines_are_recognized() {
        assert!(is_perf_baseline(&perf_baseline("abc", 100.0, 5)));
        assert!(!is_perf_baseline(&manifest_with(1, 500, 4, 64)));
        assert!(!is_perf_baseline(&parse("{}").unwrap()));
    }

    #[test]
    fn perf_diff_flags_wall_regressions_beyond_threshold() {
        let a = perf_baseline("old", 1000.0, 500);
        // +30% wall, counters unchanged: regression at 10%, noise at 50%
        let b = perf_baseline("new", 1300.0, 500);
        let (report, failed) = diff_perf(&a, &b, 10.0);
        assert!(failed, "{report}");
        assert!(
            report.contains("ns_per_op 1000 -> 1300 (+30.0%)"),
            "{report}"
        );
        assert!(report.contains("** regression **"), "{report}");
        assert!(report.contains("1 regression(s) beyond +10%"), "{report}");
        let (report, failed) = diff_perf(&a, &b, 50.0);
        assert!(!failed, "{report}");
        assert!(report.contains("no regressions beyond +50%"), "{report}");
    }

    #[test]
    fn perf_diff_reports_counter_drift_as_behavior_change() {
        let a = perf_baseline("old", 1000.0, 500);
        let mut report = diff_perf(&a, &perf_baseline("new", 1000.0, 520), 10.0);
        // +4% delivered: reported (deterministic drift) but under threshold
        assert!(!report.1, "{}", report.0);
        assert!(
            report.0.contains("messages_delivered 500 -> 520"),
            "{}",
            report.0
        );
        assert!(report.0.contains("behavior change"), "{}", report.0);
        // +100% delivered: flagged
        report = diff_perf(&a, &perf_baseline("new", 1000.0, 1000), 10.0);
        assert!(report.1, "{}", report.0);
    }

    #[test]
    fn perf_diff_of_identical_baselines_is_clean() {
        let a = perf_baseline("same", 1000.0, 500);
        let (report, failed) = diff_perf(&a, &a, 10.0);
        assert!(!failed);
        assert!(report.contains("no regressions"), "{report}");
    }

    #[test]
    fn perf_diff_reports_scenario_set_changes() {
        let a = perf_baseline("old", 1000.0, 500);
        let b = parse(
            "{\"schema\":\"ssr-bench-perf/1\",\"git\":\"new\",\"seed\":1,\
             \"scenarios\":[{\"name\":\"routing_n500\",\"ops\":1,\
             \"ns_per_op\":5.0,\"ticks\":0,\"messages_delivered\":0,\
             \"node_activations\":0,\"peak_queue_depth\":0}]}",
        )
        .unwrap();
        let (report, _) = diff_perf(&a, &b, 10.0);
        assert!(report.contains("convergence_n100: only in A"), "{report}");
        assert!(report.contains("routing_n500: only in B"), "{report}");
    }

    #[test]
    fn perf_diff_treats_mixed_schemas_as_growth_not_drift() {
        // a /1 baseline (no breakdown fields) against a /2 one that adds
        // wasted/wasted_per_mille: informational, never a regression
        let a = perf_baseline("old", 1000.0, 500);
        let b = parse(
            "{\"schema\":\"ssr-bench-perf/2\",\"git\":\"new\",\"seed\":1,\
             \"scenarios\":[{\"name\":\"convergence_n100\",\"ops\":3,\
             \"ns_per_op\":1000.0,\"ticks\":88,\
             \"messages_delivered\":500,\"node_activations\":9622,\
             \"peak_queue_depth\":648,\"wasted\":120,\"wasted_per_mille\":240}]}",
        )
        .unwrap();
        assert!(is_perf_baseline(&b));
        let (report, failed) = diff_perf(&a, &b, 10.0);
        assert!(!failed, "{report}");
        assert!(
            report.contains("wasted absent -> 120  (schema growth, informational)"),
            "{report}"
        );
        assert!(
            report.contains("wasted_per_mille absent -> 240"),
            "{report}"
        );
        assert!(!report.contains("behavior change"), "{report}");
        // the reverse direction reports a schema change, also unflagged
        let (report, failed) = diff_perf(&b, &a, 10.0);
        assert!(!failed, "{report}");
        assert!(
            report.contains("wasted 120 -> absent  (schema change, informational)"),
            "{report}"
        );
    }

    fn provenance_manifest() -> Value {
        use ssr_sim::{KindStats, NodeTally, ProvenanceSummary};
        let mut s = ProvenanceSummary {
            roots: 1,
            ..Default::default()
        };
        s.messages.insert(
            ("bootstrap", "hello"),
            KindStats {
                sent: 1,
                delivered: 1,
                wasted: 0,
            },
        );
        s.messages.insert(
            ("linearization-step", "notify"),
            KindStats {
                sent: 3,
                delivered: 3,
                wasted: 1,
            },
        );
        s.flame.insert(("bootstrap", "hello", 1), 1);
        s.flame.insert(("linearization-step", "notify", 4), 3);
        s.cascade_sizes.observe(4);
        s.nodes = vec![
            NodeTally {
                sent: 1,
                received: 0,
                wasted: 0,
            },
            NodeTally {
                sent: 3,
                received: 1,
                wasted: 0,
            },
            NodeTally {
                sent: 0,
                received: 3,
                wasted: 1,
            },
        ];
        let mut metrics = ssr_sim::Metrics::new();
        metrics.add("rx.total", 4);
        let mut man = Manifest::new("exp_test");
        man.record_metrics(&metrics).record_provenance(&s);
        parse(&man.to_json()).unwrap()
    }

    #[test]
    fn flame_emits_folded_stacks() {
        let m = provenance_manifest();
        let folded = flame(&m).unwrap();
        // one line per (cause, kind, depth-bucket) cell, flamegraph format
        assert!(folded.contains("bootstrap;hello;depth:1 1\n"), "{folded}");
        assert!(
            folded.contains("linearization-step;notify;depth:4-7 3\n"),
            "{folded}"
        );
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3, "{line}");
            count.parse::<u64>().unwrap();
        }
        // manifests without provenance produce a friendly error
        let err = flame(&manifest_with(1, 500, 4, 64)).unwrap_err();
        assert!(err.contains("no provenance section"), "{err}");
    }

    #[test]
    fn top_ranks_and_attributes() {
        let m = provenance_manifest();
        let report = top(&m, 10).unwrap();
        assert!(
            report.contains("attributed: 4/4 deliveries (100.0%)"),
            "{report}"
        );
        assert!(
            report.contains("wasted work: 1/4 deliveries (25.0%)"),
            "{report}"
        );
        assert!(report.contains("by cause class:"), "{report}");
        assert!(report.contains("linearization-step"), "{report}");
        assert!(report.contains("by message kind:"), "{report}");
        assert!(report.contains("notify"), "{report}");
        assert!(report.contains("hot nodes"), "{report}");
        // linearization-step (3 delivered) ranks above bootstrap (1)
        let lin = report.find("linearization-step").unwrap();
        let boot = report.find("bootstrap").unwrap();
        assert!(lin < boot, "{report}");
    }

    #[test]
    fn causes_walks_the_lineage_to_the_root() {
        let records: Vec<Value> = [
            "{\"ev\":\"send\",\"at\":0,\"from\":0,\"to\":1,\"kind\":\"hello\",\
             \"pid\":1,\"depth\":0,\"cause\":\"bootstrap\"}",
            "{\"ev\":\"deliver\",\"at\":2,\"from\":0,\"to\":1,\"kind\":\"hello\",\
             \"pid\":1,\"depth\":0,\"cause\":\"bootstrap\"}",
            "{\"ev\":\"send\",\"at\":2,\"from\":1,\"to\":2,\"kind\":\"notify\",\
             \"pid\":2,\"parent\":1,\"depth\":1,\"cause\":\"linearization-step\"}",
            "{\"ev\":\"deliver\",\"at\":4,\"from\":1,\"to\":2,\"kind\":\"notify\",\
             \"pid\":2,\"parent\":1,\"depth\":1,\"cause\":\"linearization-step\"}",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let all = TraceFilter::default();
        let chain = causes(&records, 2, &all).unwrap();
        assert!(
            chain.contains("causal chain for event 2 (2 links):"),
            "{chain}"
        );
        // root renders before the queried event
        let hello = chain.find("kind=hello").unwrap();
        let notify = chain.find("kind=notify").unwrap();
        assert!(hello < notify, "{chain}");
        assert!(chain.contains("cause=linearization-step"), "{chain}");
        // a shared --ev filter narrows what prints without breaking the walk
        let sends_only = TraceFilter {
            ev: Some("deliver".into()),
            ..Default::default()
        };
        let chain = causes(&records, 2, &sends_only).unwrap();
        assert!(chain.contains("2 links"), "{chain}");
        assert!(chain.contains("deliver"), "{chain}");
        assert!(!chain.contains("send"), "{chain}");
        // unknown pid is an error; missing parent is a truncation note
        assert!(causes(&records, 99, &all).is_err());
        let orphan = vec![parse(
            "{\"ev\":\"send\",\"at\":9,\"from\":3,\"to\":4,\"kind\":\"x\",\
             \"pid\":7,\"parent\":6,\"depth\":3,\"cause\":\"routing\"}",
        )
        .unwrap()];
        let chain = causes(&orphan, 7, &all).unwrap();
        assert!(chain.contains("truncated"), "{chain}");
    }

    #[test]
    fn trace_filter_matches_kind() {
        let rec =
            parse("{\"ev\":\"send\",\"at\":12,\"from\":1,\"to\":2,\"kind\":\"notify\"}").unwrap();
        assert!(TraceFilter {
            kind: Some("notify".into()),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            kind: Some("hello".into()),
            ..Default::default()
        }
        .matches(&rec));
        // records without a kind (timers, notes) never match a kind filter
        let timer = parse(
            "{\"ev\":\"timer\",\"at\":5,\"node\":3,\"token\":0,\"pid\":9,\"depth\":2,\
                   \"cause\":\"hello-sweep\"}",
        )
        .unwrap();
        assert!(!TraceFilter {
            kind: Some("notify".into()),
            ..Default::default()
        }
        .matches(&timer));
        let line = format_trace_line(&timer);
        assert!(line.contains("timer"), "{line}");
        assert!(line.contains("node 3 token=0"), "{line}");
        assert!(line.contains("pid=9 depth=2 cause=hello-sweep"), "{line}");
    }

    #[test]
    fn time_to_consistency_handles_missing() {
        let v = parse("{\"timeline\":[{\"tick\":5,\"shape\":\"loopy(2)\"}]}").unwrap();
        assert_eq!(time_to_consistency(&v), None);
        let v = parse("{}").unwrap();
        assert_eq!(time_to_consistency(&v), None);
    }

    #[test]
    fn trace_filter_and_formatting() {
        let rec =
            parse("{\"ev\":\"send\",\"at\":12,\"from\":1,\"to\":2,\"kind\":\"notify\"}").unwrap();
        assert!(TraceFilter::default().matches(&rec));
        assert!(TraceFilter {
            ev: Some("send".into()),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            ev: Some("lost".into()),
            ..Default::default()
        }
        .matches(&rec));
        assert!(TraceFilter {
            node: Some(2),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            node: Some(9),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            since: Some(13),
            ..Default::default()
        }
        .matches(&rec));
        assert!(!TraceFilter {
            until: Some(11),
            ..Default::default()
        }
        .matches(&rec));
        let line = format_trace_line(&rec);
        assert!(line.contains("send"));
        assert!(line.contains("1 -> 2"));
        assert!(line.contains("kind=notify"));
        let note = parse("{\"ev\":\"note\",\"at\":3,\"node\":7,\"text\":\"x\"}").unwrap();
        assert!(format_trace_line(&note).contains("node 7: x"));
        let diag = parse("{\"ev\":\"diag\",\"at\":96,\"source\":\"watchdog\",\"text\":\"frozen\"}")
            .unwrap();
        let line = format_trace_line(&diag);
        assert!(line.contains("diag"), "{line}");
        assert!(line.contains("watchdog: frozen"), "{line}");
    }
}
