//! Machine-readable run manifests.
//!
//! Every experiment binary emits one manifest per run into
//! `results/<exp>.manifest.json`: what ran (experiment name, seed, config,
//! git revision), what it cost (wall time), and what it measured (full
//! counter/gauge dump, histogram dump with percentiles, metric time series,
//! and the convergence timeline). The `obs` CLI summarizes and diffs these
//! files.
//!
//! Determinism contract: with the same seed and config, every field is
//! byte-identical across runs **except** `wall_ms` (and a `git` revision
//! that changes when the tree changes). Set `SSR_OBS_OMIT_WALL=1` — or
//! simply never call [`Manifest::wall_ms`] — to produce fully reproducible
//! manifests; the determinism integration test does exactly that.

use std::io;
use std::path::{Path, PathBuf};

use ssr_sim::{Metrics, ProvenanceSummary};

use crate::json::Value;

/// Manifest schema identifier, bumped on breaking field changes.
///
/// `ssr-obs/2` added the optional `chaos` array: one entry per chaos
/// scenario run, carrying the watchdog verdict and the recovery cost
/// measured from the end of the fault window (see README §Observability).
///
/// `ssr-obs/3` added the optional `provenance` object: the causal-ledger
/// snapshot ([`Manifest::record_provenance`]) with per-cause × per-kind
/// message attribution, flame cells, depth histograms, cascade sizes and
/// per-node tallies (see docs/PROFILING.md). `obs flame` and `obs top`
/// read this section.
pub const SCHEMA: &str = "ssr-obs/3";

/// One chaos-scenario outcome as recorded in a manifest (`chaos` array,
/// schema `ssr-obs/2`).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosScenario {
    /// Scenario name (`baseline`, `loss`, `partition`, `corrupt-wound`, …).
    pub name: String,
    /// Network size.
    pub n: u64,
    /// Per-run seed.
    pub seed: u64,
    /// Watchdog verdict label: `converged`, `frozen_crossing`,
    /// `frozen_stuck`, or `active`.
    pub verdict: String,
    /// Ticks from fault onset (tick 0 for corrupted starts) to stable
    /// (re-)convergence.
    pub recovery_ticks: u64,
    /// Transmissions from fault onset to stable (re-)convergence.
    pub recovery_msgs: u64,
    /// Flood messages over the whole run (zero for linearized SSR).
    pub floods: u64,
    /// Invariant-checker samples where the physical ∪ virtual union graph
    /// was disconnected after the checker armed.
    pub union_disconnected: u64,
    /// Armed invariant-checker samples where the linearization potential
    /// rose between audits (expected rare; see DESIGN.md finding 1).
    pub potential_rises: u64,
}

/// One point of the convergence timeline as recorded in a manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelinePoint {
    /// Sample time (simulator ticks, or rounds for round-based engines).
    pub tick: u64,
    /// Structure label at that time (see `RingShape::label`:
    /// `consistent-ring`, `loopy(k)`, `partitioned(k)`, `incomplete` — or
    /// engine-specific labels like `line-forming`).
    pub shape: String,
    /// Nodes that were locally consistent.
    pub locally_consistent: u64,
    /// Total nodes.
    pub nodes: u64,
    /// Successor-pointer changes since the previous sample.
    pub churn: u64,
}

/// Builder for one run manifest.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    exp: String,
    git: Option<String>,
    seed: Option<u64>,
    wall_ms: Option<u64>,
    config: Vec<(String, String)>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, Value)>,
    hists: Vec<(String, Value)>,
    series: Vec<Value>,
    timeline: Vec<TimelinePoint>,
    chaos: Vec<ChaosScenario>,
    provenance: Option<Value>,
    extra: Vec<(String, Value)>,
}

impl Manifest {
    /// Starts a manifest for experiment `exp`, capturing the git revision
    /// (when available).
    pub fn new(exp: &str) -> Manifest {
        Manifest {
            exp: exp.to_string(),
            git: git_describe(),
            ..Manifest::default()
        }
    }

    /// Records the run's base seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = Some(seed);
        self
    }

    /// Records one configuration key (CLI flag, sweep parameter, …).
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Records the wall-clock duration. The **only** nondeterministic
    /// manifest field; suppressed when `SSR_OBS_OMIT_WALL` is set so runs
    /// can be compared byte-for-byte.
    pub fn wall_ms(&mut self, ms: u64) -> &mut Self {
        if std::env::var_os("SSR_OBS_OMIT_WALL").is_none() {
            self.wall_ms = Some(ms);
        }
        self
    }

    /// Dumps a full metrics registry: every counter, gauge, histogram
    /// (with count/min/max/mean/p50/p90/p99 and the non-empty log₂
    /// buckets), and any sampled time series. Call once with the final —
    /// or merged-across-seeds — registry.
    pub fn record_metrics(&mut self, m: &Metrics) -> &mut Self {
        self.counters = m.counters().map(|(k, v)| (k.to_string(), v)).collect();
        self.gauges = m
            .gauges()
            .map(|(k, g)| {
                (
                    k.to_string(),
                    Value::Obj(vec![
                        ("min".into(), g.min.into()),
                        ("max".into(), g.max.into()),
                        ("mean".into(), g.mean().into()),
                        ("count".into(), g.count.into()),
                    ]),
                )
            })
            .collect();
        self.hists = m
            .hists()
            .map(|(k, h)| (k.to_string(), hist_to_value(h)))
            .collect();
        self.series = m
            .series()
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("tick".into(), p.tick.into()),
                    (
                        "counters".into(),
                        Value::Obj(
                            p.counters
                                .iter()
                                .map(|&(k, v)| (k.to_string(), v.into()))
                                .collect(),
                        ),
                    ),
                    (
                        "gauges".into(),
                        Value::Obj(
                            p.gauges
                                .iter()
                                .map(|&(k, v)| (k.to_string(), v.into()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        self
    }

    /// Appends one convergence-timeline point.
    pub fn timeline_point(&mut self, point: TimelinePoint) -> &mut Self {
        self.timeline.push(point);
        self
    }

    /// Attaches an experiment-specific result under `extra.<key>`.
    pub fn extra(&mut self, key: &str, value: Value) -> &mut Self {
        self.extra.push((key.to_string(), value));
        self
    }

    /// The number of timeline points recorded so far.
    pub fn timeline_len(&self) -> usize {
        self.timeline.len()
    }

    /// Appends one chaos-scenario outcome (`chaos` array, `ssr-obs/2`).
    pub fn chaos_scenario(&mut self, scenario: ChaosScenario) -> &mut Self {
        self.chaos.push(scenario);
        self
    }

    /// The number of chaos scenarios recorded so far.
    pub fn chaos_len(&self) -> usize {
        self.chaos.len()
    }

    /// Records a causal-ledger snapshot (`provenance` object, `ssr-obs/3`).
    ///
    /// Call once with the final — or merged-across-scenarios — summary;
    /// `obs flame` and `obs top` consume this section. Per-node tallies
    /// serialize as compact `[sent, received, wasted]` triples indexed by
    /// node to keep large-n manifests readable.
    pub fn record_provenance(&mut self, summary: &ProvenanceSummary) -> &mut Self {
        self.provenance = Some(provenance_to_value(summary));
        self
    }

    /// The manifest as a JSON value (fixed field order).
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("schema".into(), SCHEMA.into()),
            ("exp".into(), self.exp.as_str().into()),
        ];
        if let Some(git) = &self.git {
            fields.push(("git".into(), git.as_str().into()));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), seed.into()));
        }
        if let Some(ms) = self.wall_ms {
            fields.push(("wall_ms".into(), ms.into()));
        }
        fields.push((
            "config".into(),
            Value::Obj(
                self.config
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_str().into()))
                    .collect(),
            ),
        ));
        fields.push((
            "counters".into(),
            Value::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), (*v).into()))
                    .collect(),
            ),
        ));
        fields.push(("gauges".into(), Value::Obj(self.gauges.clone())));
        fields.push(("hists".into(), Value::Obj(self.hists.clone())));
        if !self.series.is_empty() {
            fields.push(("series".into(), Value::Arr(self.series.clone())));
        }
        fields.push((
            "timeline".into(),
            Value::Arr(
                self.timeline
                    .iter()
                    .map(|p| {
                        Value::Obj(vec![
                            ("tick".into(), p.tick.into()),
                            ("shape".into(), p.shape.as_str().into()),
                            ("locally_consistent".into(), p.locally_consistent.into()),
                            ("nodes".into(), p.nodes.into()),
                            ("churn".into(), p.churn.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
        if !self.chaos.is_empty() {
            fields.push((
                "chaos".into(),
                Value::Arr(
                    self.chaos
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("name".into(), s.name.as_str().into()),
                                ("n".into(), s.n.into()),
                                ("seed".into(), s.seed.into()),
                                ("verdict".into(), s.verdict.as_str().into()),
                                ("recovery_ticks".into(), s.recovery_ticks.into()),
                                ("recovery_msgs".into(), s.recovery_msgs.into()),
                                ("floods".into(), s.floods.into()),
                                ("union_disconnected".into(), s.union_disconnected.into()),
                                ("potential_rises".into(), s.potential_rises.into()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(prov) = &self.provenance {
            fields.push(("provenance".into(), prov.clone()));
        }
        if !self.extra.is_empty() {
            fields.push(("extra".into(), Value::Obj(self.extra.clone())));
        }
        Value::Obj(fields)
    }

    /// Pretty-printed manifest JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Writes the manifest to `path`, creating parent directories.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Writes to the conventional location `results/<exp>.manifest.json`
    /// (relative to the working directory) and returns the path.
    pub fn write_default(&self) -> io::Result<PathBuf> {
        let path = PathBuf::from("results").join(format!("{}.manifest.json", self.exp));
        self.write_to(&path)?;
        Ok(path)
    }
}

fn provenance_to_value(summary: &ProvenanceSummary) -> Value {
    Value::Obj(vec![
        ("roots".into(), summary.roots.into()),
        ("sent".into(), summary.sent().into()),
        ("delivered".into(), summary.delivered().into()),
        ("wasted".into(), summary.wasted().into()),
        (
            "messages".into(),
            Value::Arr(
                summary
                    .messages
                    .iter()
                    .map(|(&(cause, kind), stats)| {
                        Value::Obj(vec![
                            ("cause".into(), cause.into()),
                            ("kind".into(), kind.into()),
                            ("sent".into(), stats.sent.into()),
                            ("delivered".into(), stats.delivered.into()),
                            ("wasted".into(), stats.wasted.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "flame".into(),
            Value::Arr(
                summary
                    .flame
                    .iter()
                    .map(|(&(cause, kind, depth), &count)| {
                        Value::Obj(vec![
                            ("cause".into(), cause.into()),
                            ("kind".into(), kind.into()),
                            ("depth".into(), depth.into()),
                            ("delivered".into(), count.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "depth".into(),
            Value::Obj(
                summary
                    .depth
                    .iter()
                    .map(|(&cause, hist)| (cause.to_string(), hist_to_value(hist)))
                    .collect(),
            ),
        ),
        (
            "cascade_sizes".into(),
            hist_to_value(&summary.cascade_sizes),
        ),
        (
            "nodes".into(),
            Value::Arr(
                summary
                    .nodes
                    .iter()
                    .map(|t| Value::Arr(vec![t.sent.into(), t.received.into(), t.wasted.into()]))
                    .collect(),
            ),
        ),
    ])
}

fn hist_to_value(h: &ssr_sim::Histogram) -> Value {
    let percentile = |q: f64| -> Value { h.percentile(q).map(Value::from).unwrap_or(Value::Null) };
    Value::Obj(vec![
        ("count".into(), h.count().into()),
        (
            "min".into(),
            h.min().map(Value::from).unwrap_or(Value::Null),
        ),
        (
            "max".into(),
            h.max().map(Value::from).unwrap_or(Value::Null),
        ),
        ("mean".into(), h.mean().into()),
        ("p50".into(), percentile(50.0)),
        ("p90".into(), percentile(90.0)),
        ("p99".into(), percentile(99.0)),
        (
            "buckets".into(),
            Value::Arr(
                h.nonzero_buckets()
                    .map(|(lo, hi, c)| Value::Arr(vec![lo.into(), hi.into(), c.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// `git describe --always --dirty` of the working directory, if git and a
/// repository are available. Experiment provenance only — never load-bearing.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    (!rev.is_empty()).then(|| rev.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new();
        m.add("tx.total", 12);
        m.add("msg.notify", 12);
        m.observe("probe.locally_consistent", 5.0);
        for v in [1u64, 2, 3, 400] {
            m.observe_hist("route.len", v);
        }
        m.sample_series(0);
        m.sample_series(8);
        m
    }

    fn sample_manifest() -> Manifest {
        let mut man = Manifest::new("exp_test");
        man.seed(7)
            .config("seeds", 10)
            .config("quick", true)
            .record_metrics(&sample_metrics())
            .timeline_point(TimelinePoint {
                tick: 0,
                shape: "loopy(2)".into(),
                locally_consistent: 8,
                nodes: 8,
                churn: 0,
            })
            .timeline_point(TimelinePoint {
                tick: 8,
                shape: "consistent-ring".into(),
                locally_consistent: 8,
                nodes: 8,
                churn: 4,
            })
            .extra("note", Value::Str("hello".into()));
        man
    }

    #[test]
    fn manifest_serializes_and_reparses() {
        let man = sample_manifest();
        let v = parse(&man.to_json()).expect("manifest must be valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(v.get("exp").unwrap().as_str(), Some("exp_test"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(
            v.get("config").unwrap().get("seeds").unwrap().as_str(),
            Some("10")
        );
        assert_eq!(
            v.get("counters").unwrap().get("tx.total").unwrap().as_u64(),
            Some(12)
        );
        let hist = v.get("hists").unwrap().get("route.len").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(400));
        assert!(hist.get("p50").unwrap().as_u64().is_some());
        assert!(!hist.get("buckets").unwrap().as_arr().unwrap().is_empty());
        let timeline = v.get("timeline").unwrap().as_arr().unwrap();
        assert_eq!(timeline.len(), 2);
        assert_eq!(
            timeline[1].get("shape").unwrap().as_str(),
            Some("consistent-ring")
        );
        assert_eq!(v.get("series").unwrap().as_arr().unwrap().len(), 2);
        // wall_ms never set → absent
        assert!(v.get("wall_ms").is_none());
    }

    #[test]
    fn chaos_section_round_trips() {
        let mut man = Manifest::new("exp_chaos");
        man.seed(1).chaos_scenario(ChaosScenario {
            name: "partition".into(),
            n: 50,
            seed: 3,
            verdict: "converged".into(),
            recovery_ticks: 412,
            recovery_msgs: 901,
            floods: 0,
            union_disconnected: 0,
            potential_rises: 1,
        });
        assert_eq!(man.chaos_len(), 1);
        let v = parse(&man.to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("ssr-obs/3"));
        let chaos = v.get("chaos").unwrap().as_arr().unwrap();
        assert_eq!(chaos.len(), 1);
        assert_eq!(chaos[0].get("name").unwrap().as_str(), Some("partition"));
        assert_eq!(chaos[0].get("verdict").unwrap().as_str(), Some("converged"));
        assert_eq!(chaos[0].get("recovery_ticks").unwrap().as_u64(), Some(412));
        assert_eq!(chaos[0].get("floods").unwrap().as_u64(), Some(0));
        // manifests without scenarios carry no chaos field at all
        let plain = parse(&Manifest::new("exp_x").to_json()).unwrap();
        assert!(plain.get("chaos").is_none());
    }

    #[test]
    fn provenance_section_round_trips() {
        use ssr_sim::{KindStats, NodeTally};
        let mut summary = ProvenanceSummary {
            roots: 2,
            ..Default::default()
        };
        summary.messages.insert(
            ("bootstrap", "hello"),
            KindStats {
                sent: 9,
                delivered: 7,
                wasted: 3,
            },
        );
        summary.flame.insert(("bootstrap", "hello", 1), 7);
        summary.cascade_sizes.observe(4);
        summary.nodes = vec![
            NodeTally {
                sent: 9,
                received: 0,
                wasted: 0,
            },
            NodeTally {
                sent: 0,
                received: 7,
                wasted: 3,
            },
        ];
        let mut man = Manifest::new("exp_test");
        man.record_provenance(&summary);
        let v = parse(&man.to_json()).unwrap();
        let prov = v.get("provenance").unwrap();
        assert_eq!(prov.get("roots").unwrap().as_u64(), Some(2));
        assert_eq!(prov.get("sent").unwrap().as_u64(), Some(9));
        assert_eq!(prov.get("delivered").unwrap().as_u64(), Some(7));
        assert_eq!(prov.get("wasted").unwrap().as_u64(), Some(3));
        let messages = prov.get("messages").unwrap().as_arr().unwrap();
        assert_eq!(messages.len(), 1);
        assert_eq!(
            messages[0].get("cause").unwrap().as_str(),
            Some("bootstrap")
        );
        assert_eq!(messages[0].get("kind").unwrap().as_str(), Some("hello"));
        assert_eq!(messages[0].get("sent").unwrap().as_u64(), Some(9));
        let flame = prov.get("flame").unwrap().as_arr().unwrap();
        assert_eq!(flame[0].get("depth").unwrap().as_u64(), Some(1));
        assert_eq!(flame[0].get("delivered").unwrap().as_u64(), Some(7));
        let nodes = prov.get("nodes").unwrap().as_arr().unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].as_arr().unwrap()[1].as_u64(), Some(7));
        // manifests without a ledger carry no provenance field at all
        let plain = parse(&Manifest::new("exp_x").to_json()).unwrap();
        assert!(plain.get("provenance").is_none());
    }

    #[test]
    fn same_inputs_serialize_byte_identically() {
        assert_eq!(sample_manifest().to_json(), sample_manifest().to_json());
    }

    #[test]
    fn write_default_uses_results_dir() {
        let dir = std::env::temp_dir().join("ssr_obs_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = sample_manifest().write_default().unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(path.ends_with("results/exp_test.manifest.json"));
        let text = std::fs::read_to_string(dir.join(path)).unwrap();
        assert!(parse(&text).is_ok());
    }
}
