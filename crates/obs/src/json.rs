//! A small, dependency-free JSON model, writer, and parser.
//!
//! The build environment has no registry access, so the manifest and trace
//! tooling cannot use serde; this module is the hand-rolled replacement.
//! Objects preserve insertion order (they are association lists, not maps),
//! which is what makes manifest output deterministic: the writer emits
//! exactly what the builder inserted, in order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Stored as `f64`; integers up to 2⁵³ round-trip exactly
    /// (counters in this workspace stay far below that).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an insertion-ordered association list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Compact (single-line) serialization.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Pretty serialization with two-space indentation — the manifest
    /// on-disk format.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                // arrays of scalars stay on one line; nested structures break
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Value::Arr(_) | Value::Obj(_)));
                if scalar {
                    self.write(out);
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&ssr_sim::trace::escape_json(s));
    out.push('"');
}

/// From-`u64` conveniences for manifest building.
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A parse failure: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // no surrogate-pair support: this workspace's
                            // writers only emit BMP escapes below 0x20
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null", "true", "false", "0", "-3", "1234567", "2.5", "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_json(), text, "{text}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let text = "{\"a\":1,\"b\":[1,2,3],\"c\":{\"d\":\"x\"},\"e\":null}";
        let v = parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::Str("say \"hi\"\n\ttab\\done\u{0001}".to_string());
        let text = original.to_json();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn whitespace_and_errors() {
        assert!(parse("  {\n \"a\" : [ 1 , 2 ] }\n").is_ok());
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        let err = parse("{\"a\" 1}").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn pretty_printer_is_reparseable() {
        let v = parse("{\"a\":[{\"b\":1},{\"c\":[1,2]}],\"d\":{},\"e\":[]}").unwrap();
        let pretty = v.to_json_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\""));
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"ünïcödé ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("ünïcödé ✓"));
    }
}
