//! Observability tooling for the reproduction's experiment runs.
//!
//! Three pieces, all dependency-free (the build environment has no registry
//! access, so everything — including JSON — is hand-rolled):
//!
//! * [`json`] — a small JSON model, writer, and parser;
//! * [`manifest`] — the machine-readable run manifest every `exp_*`/`fig*`
//!   binary writes to `results/<exp>.manifest.json`;
//! * [`report`] — summarize/diff/trace-filter logic behind the `obs` CLI.
//!
//! The `obs` binary (this crate's `src/main.rs`) is the human entry point:
//!
//! ```text
//! obs summarize results/exp_convergence.manifest.json
//! obs diff results/a.manifest.json results/b.manifest.json
//! obs trace trace.jsonl --ev send --node 3 --since 100 --until 500
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod report;

pub use json::{parse, Value};
pub use manifest::{git_describe, ChaosScenario, Manifest, TimelinePoint, SCHEMA};
pub use report::{diff, summarize, time_to_consistency, TraceFilter};
