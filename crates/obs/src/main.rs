//! The `obs` CLI: summarize a manifest, diff two manifests,
//! pretty-print/filter a JSONL trace, or profile causal provenance
//! (`flame`, `top`, `causes` — see docs/PROFILING.md).

use std::process::ExitCode;

use ssr_obs::report::{
    causes, diff, diff_perf, flame, format_trace_line, is_perf_baseline, summarize, top,
    TraceFilter,
};
use ssr_obs::{parse, Value};

const USAGE: &str = "\
usage:
  obs summarize <manifest.json>
  obs diff <a.manifest.json> <b.manifest.json>
  obs diff <a.BENCH_perf.json> <b.BENCH_perf.json> [--threshold PCT]
  obs trace <trace.jsonl> [--ev EV] [--kind KIND] [--node N] [--since T] [--until T]
  obs causes <trace.jsonl> <event-id> [--ev EV] [--kind KIND] [--node N] ...
  obs flame <manifest.json>
  obs top <manifest.json> [--limit N]

subcommands:
  summarize   one-screen view of a run manifest (counters, histogram
              percentiles, condensed convergence timeline)
  diff        counter deltas, histogram percentile shifts, and
              convergence-time regressions between two manifests; when
              both files are perf baselines (exp_perf output, any
              ssr-bench-perf schema), compares per-scenario timing and
              work counters instead and exits non-zero on regressions
              beyond --threshold (default 10)
  trace       human-readable, filterable view of a JSONL trace file
  causes      walk the causal chain of one trace event (by pid) from its
              bootstrap/fault root; shares the trace filter flags
  flame       folded stacks (cause;kind;depth count) from a manifest's
              provenance section, ready for flamegraph.pl / inferno
  top         rank cause classes, message kinds, and hot nodes by
              delivered/sent/wasted messages
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((text, ok)) => {
            print!("{text}");
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("obs: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Runs a subcommand; `Ok((report, ok))` where `ok = false` means the
/// report was produced but the process should exit non-zero (a flagged
/// perf regression).
fn run(args: &[String]) -> Result<(String, bool), String> {
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let path = args.get(1).ok_or("summarize needs a manifest path")?;
            Ok((summarize(&load_json(path)?), true))
        }
        Some("diff") => {
            let a = args.get(1).ok_or("diff needs two manifest paths")?;
            let b = args.get(2).ok_or("diff needs two manifest paths")?;
            let threshold = diff_threshold(&args[3..])?;
            let (va, vb) = (load_json(a)?, load_json(b)?);
            match (is_perf_baseline(&va), is_perf_baseline(&vb)) {
                (true, true) => {
                    let (report, regressed) = diff_perf(&va, &vb, threshold.unwrap_or(10.0));
                    Ok((report, !regressed))
                }
                (false, false) => {
                    if threshold.is_some() {
                        return Err("--threshold only applies to perf baselines".into());
                    }
                    Ok((diff(&va, &vb), true))
                }
                _ => Err(format!(
                    "cannot diff a perf baseline against a run manifest ({a} vs {b})"
                )),
            }
        }
        Some("trace") => {
            let path = args.get(1).ok_or("trace needs a JSONL path")?;
            let filter = trace_filter(&args[2..])?;
            Ok((trace_report(path, &filter)?, true))
        }
        Some("causes") => {
            let path = args.get(1).ok_or("causes needs a JSONL path")?;
            let pid = args
                .get(2)
                .ok_or("causes needs an event id (the pid from obs trace)")?;
            let pid: u64 = pid.parse().map_err(|e| format!("event id {pid}: {e}"))?;
            let filter = trace_filter(&args[3..])?;
            let records = load_jsonl(path)?;
            Ok((causes(&records, pid, &filter)?, true))
        }
        Some("flame") => {
            let path = args.get(1).ok_or("flame needs a manifest path")?;
            Ok((flame(&load_json(path)?)?, true))
        }
        Some("top") => {
            let path = args.get(1).ok_or("top needs a manifest path")?;
            let limit = top_limit(&args[2..])?;
            Ok((top(&load_json(path)?, limit)?, true))
        }
        Some(other) => Err(format!("unknown subcommand '{other}'")),
        None => Err("no subcommand".to_string()),
    }
}

/// Parses the optional `--limit N` tail of `obs top` (default 10).
fn top_limit(rest: &[String]) -> Result<usize, String> {
    match rest.first().map(String::as_str) {
        None => Ok(10),
        Some("--limit") => {
            let v = rest.get(1).ok_or("--limit needs a value")?;
            let n: usize = v.parse().map_err(|e| format!("--limit {v}: {e}"))?;
            if n == 0 {
                return Err("--limit must be at least 1".into());
            }
            Ok(n)
        }
        Some(other) => Err(format!("unknown flag '{other}'")),
    }
}

/// Parses the optional `--threshold PCT` tail of `obs diff`.
fn diff_threshold(rest: &[String]) -> Result<Option<f64>, String> {
    match rest.first().map(String::as_str) {
        None => Ok(None),
        Some("--threshold") => {
            let v = rest.get(1).ok_or("--threshold needs a value")?;
            let pct: f64 = v.parse().map_err(|e| format!("--threshold {v}: {e}"))?;
            if !pct.is_finite() || pct < 0.0 {
                return Err(format!("--threshold {v}: must be a non-negative percent"));
            }
            Ok(Some(pct))
        }
        Some(other) => Err(format!("unknown flag '{other}'")),
    }
}

fn load_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Loads a JSONL trace as one record per non-empty line.
fn load_jsonl(path: &str) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(lineno, l)| parse(l).map_err(|e| format!("{path}:{}: {e}", lineno + 1)))
        .collect()
}

fn trace_filter(rest: &[String]) -> Result<TraceFilter, String> {
    let mut filter = TraceFilter::default();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let value = rest
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let parse_u64 = |v: &String| v.parse::<u64>().map_err(|e| format!("{flag} {v}: {e}"));
        match flag {
            "--ev" => filter.ev = Some(value.clone()),
            "--kind" => filter.kind = Some(value.clone()),
            "--node" => filter.node = Some(parse_u64(value)?),
            "--since" => filter.since = Some(parse_u64(value)?),
            "--until" => filter.until = Some(parse_u64(value)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(filter)
}

fn trace_report(path: &str, filter: &TraceFilter) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = String::new();
    let mut shown = 0usize;
    let mut total = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        let rec = parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if filter.matches(&rec) {
            out.push_str(&format_trace_line(&rec));
            out.push('\n');
            shown += 1;
        }
    }
    out.push_str(&format!("({shown} of {total} events shown)\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus".into()]).is_err());
        assert!(run(&["summarize".into()]).is_err());
        assert!(run(&["diff".into(), "only-one".into()]).is_err());
    }

    #[test]
    fn trace_flags_parse() {
        let f = trace_filter(&[
            "--ev".into(),
            "send".into(),
            "--kind".into(),
            "notify".into(),
            "--node".into(),
            "3".into(),
            "--since".into(),
            "10".into(),
            "--until".into(),
            "20".into(),
        ])
        .unwrap();
        assert_eq!(f.ev.as_deref(), Some("send"));
        assert_eq!(f.kind.as_deref(), Some("notify"));
        assert_eq!(f.node, Some(3));
        assert_eq!(f.since, Some(10));
        assert_eq!(f.until, Some(20));
        assert!(trace_filter(&["--ev".into()]).is_err());
        assert!(trace_filter(&["--wat".into(), "1".into()]).is_err());
        assert_eq!(top_limit(&[]).unwrap(), 10);
        assert_eq!(top_limit(&["--limit".into(), "3".into()]).unwrap(), 3);
        assert!(top_limit(&["--limit".into(), "0".into()]).is_err());
        assert!(top_limit(&["--wat".into()]).is_err());
    }

    #[test]
    fn end_to_end_over_files() {
        let dir = std::env::temp_dir().join("ssr_obs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        std::fs::write(
            &trace_path,
            "{\"ev\":\"send\",\"at\":1,\"from\":0,\"to\":1,\"kind\":\"notify\"}\n\
             {\"ev\":\"lost\",\"at\":2,\"from\":0,\"to\":1,\"reason\":\"link-drop\"}\n",
        )
        .unwrap();
        let (all, _) = run(&["trace".into(), trace_path.display().to_string()]).unwrap();
        assert!(all.contains("2 of 2"));
        let (sends, _) = run(&[
            "trace".into(),
            trace_path.display().to_string(),
            "--ev".into(),
            "send".into(),
        ])
        .unwrap();
        assert!(sends.contains("1 of 2"));
        assert!(!sends.contains("link-drop"));

        let mut man = ssr_obs::Manifest::new("cli_test");
        man.seed(3);
        let man_path = dir.join("m.json");
        man.write_to(&man_path).unwrap();
        let (s, _) = run(&["summarize".into(), man_path.display().to_string()]).unwrap();
        assert!(s.contains("cli_test"));
        let (d, ok) = run(&[
            "diff".into(),
            man_path.display().to_string(),
            man_path.display().to_string(),
        ])
        .unwrap();
        assert!(d.contains("no differences"));
        assert!(ok);
        // --threshold is a perf-baseline flag
        assert!(run(&[
            "diff".into(),
            man_path.display().to_string(),
            man_path.display().to_string(),
            "--threshold".into(),
            "5".into(),
        ])
        .is_err());
    }

    #[test]
    fn provenance_subcommands_over_files() {
        let dir = std::env::temp_dir().join("ssr_obs_cli_prov_test");
        std::fs::create_dir_all(&dir).unwrap();
        // a two-link trace with provenance fields
        let trace_path = dir.join("t.jsonl");
        std::fs::write(
            &trace_path,
            "{\"ev\":\"send\",\"at\":0,\"from\":0,\"to\":1,\"kind\":\"hello\",\
             \"pid\":1,\"depth\":0,\"cause\":\"bootstrap\"}\n\
             {\"ev\":\"deliver\",\"at\":2,\"from\":0,\"to\":1,\"kind\":\"hello\",\
             \"pid\":1,\"depth\":0,\"cause\":\"bootstrap\"}\n\
             {\"ev\":\"send\",\"at\":2,\"from\":1,\"to\":2,\"kind\":\"notify\",\
             \"pid\":2,\"parent\":1,\"depth\":1,\"cause\":\"linearization-step\"}\n",
        )
        .unwrap();
        let (chain, ok) = run(&[
            "causes".into(),
            trace_path.display().to_string(),
            "2".into(),
        ])
        .unwrap();
        assert!(ok);
        assert!(chain.contains("causal chain for event 2"), "{chain}");
        assert!(chain.contains("kind=hello"), "{chain}");
        assert!(run(&[
            "causes".into(),
            trace_path.display().to_string(),
            "99".into(),
        ])
        .is_err());
        assert!(run(&["causes".into(), trace_path.display().to_string()]).is_err());
        // a manifest without provenance gives a friendly flame/top error
        let man_path = dir.join("m.json");
        ssr_obs::Manifest::new("cli_test")
            .write_to(&man_path)
            .unwrap();
        let err = run(&["flame".into(), man_path.display().to_string()]).unwrap_err();
        assert!(err.contains("no provenance section"), "{err}");
        let err = run(&["top".into(), man_path.display().to_string()]).unwrap_err();
        assert!(err.contains("no provenance section"), "{err}");
    }

    #[test]
    fn perf_diff_over_files_sets_exit_status() {
        let dir = std::env::temp_dir().join("ssr_obs_cli_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, ns: f64| {
            let path = dir.join(name);
            std::fs::write(
                &path,
                format!(
                    "{{\"schema\":\"ssr-bench-perf/1\",\"git\":\"x\",\"seed\":1,\
                     \"scenarios\":[{{\"name\":\"s\",\"ops\":1,\"ns_per_op\":{ns},\
                     \"ticks\":1,\"messages_delivered\":1,\"node_activations\":1,\
                     \"peak_queue_depth\":1}}]}}"
                ),
            )
            .unwrap();
            path.display().to_string()
        };
        let a = mk("a.json", 1000.0);
        let b = mk("b.json", 1500.0);
        let (report, ok) = run(&["diff".into(), a.clone(), b.clone()]).unwrap();
        assert!(!ok, "{report}");
        assert!(report.contains("** regression **"), "{report}");
        // a generous threshold clears it
        let (report, ok) = run(&[
            "diff".into(),
            a.clone(),
            b,
            "--threshold".into(),
            "60".into(),
        ])
        .unwrap();
        assert!(ok, "{report}");
        // perf baseline vs plain manifest is an error
        let man_path = dir.join("m.json");
        let man = ssr_obs::Manifest::new("cli_test");
        man.write_to(&man_path).unwrap();
        assert!(run(&["diff".into(), a, man_path.display().to_string()]).is_err());
        assert!(diff_threshold(&["--threshold".into(), "-3".into()]).is_err());
        assert!(diff_threshold(&["--threshold".into()]).is_err());
        assert!(diff_threshold(&["--wat".into()]).is_err());
    }
}
