//! Property-based tests for the identifier-space primitives.

use proptest::prelude::*;
use ssr_types::{
    cw_dist, interval_index, ring_between_cw, ring_dist, IntervalPartition, NodeId, Rng, SeqNo,
    Side,
};

proptest! {
    #[test]
    fn cw_arcs_partition_the_ring(a: u64, b: u64) {
        let (a, b) = (NodeId(a), NodeId(b));
        prop_assert_eq!(cw_dist(a, b).wrapping_add(cw_dist(b, a)), 0);
        prop_assert_eq!(cw_dist(a, b) == 0, a == b);
    }

    #[test]
    fn ring_dist_symmetric_and_bounded(a: u64, b: u64) {
        let (a, b) = (NodeId(a), NodeId(b));
        prop_assert_eq!(ring_dist(a, b), ring_dist(b, a));
        // the shorter arc is at most half the ring
        prop_assert!(ring_dist(a, b) <= 1u64 << 63);
    }

    #[test]
    fn ring_dist_triangle_inequality_mod_ring(a: u64, b: u64, c: u64) {
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        // ring metric satisfies the triangle inequality (saturating to
        // avoid overflow in the sum)
        prop_assert!(ring_dist(a, c) <= ring_dist(a, b).saturating_add(ring_dist(b, c)));
    }

    #[test]
    fn between_cw_trichotomy(from: u64, x: u64, to: u64) {
        let (from, x, to) = (NodeId(from), NodeId(x), NodeId(to));
        // every x != from is in exactly one of (from, to] and (to, from]
        // when from != to
        prop_assume!(from != to && x != from && x != to);
        let in_first = ring_between_cw(from, x, to);
        let in_second = ring_between_cw(to, x, from);
        prop_assert!(in_first ^ in_second);
    }

    #[test]
    fn interval_index_consistent_with_bounds(v: u64, u: u64) {
        prop_assume!(v != u);
        let (v, u) = (NodeId(v), NodeId(u));
        let (side, idx) = interval_index(v, u).unwrap();
        let dist = v.line_dist(u);
        let p = IntervalPartition::base2();
        let (lo, hi) = p.bounds(idx);
        prop_assert!(dist >= lo);
        if let Some(hi) = hi {
            prop_assert!(dist < hi);
        }
        prop_assert_eq!(side == Side::Left, u < v);
        prop_assert_eq!(p.index(v, u), Some((side, idx)));
    }

    #[test]
    fn arbitrary_base_index_within_bounds(v: u64, u: u64, base in 2u64..=16) {
        prop_assume!(v != u);
        let (v, u) = (NodeId(v), NodeId(u));
        let p = IntervalPartition::new(base);
        let (_, idx) = p.index(v, u).unwrap();
        let dist = v.line_dist(u) as u128;
        let lo = (base as u128).pow(idx);
        prop_assert!(dist >= lo, "dist {} < lo {} (base {}, idx {})", dist, lo, base, idx);
        prop_assert!(dist < lo * base as u128 || idx == p.intervals_per_side() - 1);
    }

    #[test]
    fn rng_below_in_range(seed: u64, bound in 1u64..u64::MAX) {
        let mut r = Rng::new(seed);
        for _ in 0..32 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    #[test]
    fn rng_replay(seed: u64) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seqno_newer_is_antisymmetric_off_antipode(a: u32, b: u32) {
        prop_assume!(a.wrapping_sub(b) != 1 << 31);
        let (a, b) = (SeqNo(a), SeqNo(b));
        if a != b {
            prop_assert!(a.newer_than(b) ^ b.newer_than(a));
        } else {
            prop_assert!(!a.newer_than(b) && !b.newer_than(a));
        }
    }

    #[test]
    fn wire_id_list_roundtrip(ids in proptest::collection::vec(any::<u64>(), 0..200)) {
        use bytes::BytesMut;
        let ids: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
        let mut buf = BytesMut::new();
        ssr_types::wire::put_id_list(&mut buf, &ids);
        prop_assert_eq!(buf.len(), ssr_types::wire::id_list_encoded_len(ids.len()));
        let mut b = buf.freeze();
        prop_assert_eq!(ssr_types::wire::get_id_list(&mut b).unwrap(), ids);
    }
}
