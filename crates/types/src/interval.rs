//! Exponentially growing identifier intervals.
//!
//! *Linearization with shortcut neighbors* (LSN, Onus et al.) has every node
//! divide its local view of the identifier space into exponentially growing
//! intervals and remember **at most one edge per interval**. SSR's route
//! cache provides the same structure implicitly ("a node typically caches at
//! least one node for each of the exponentially growing intervals"), which is
//! what gives the linearized SSR bootstrap its polylogarithmic convergence.
//!
//! Relative to a node `v`, the space to the right of `v` is partitioned into
//! intervals `[v + b^i, v + b^(i+1))` for `i = 0, 1, …` (and mirrored to the
//! left), where `b` is the interval base (2 in the paper; configurable here
//! so the E9 ablation can vary it).

use crate::NodeId;

/// Which side of the reference node an identifier lies on — the line reading
/// of the identifier space distinguishes *left* (smaller) from *right*
/// (larger) neighbors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Side {
    /// Identifiers smaller than the reference node's.
    Left,
    /// Identifiers larger than the reference node's.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Index of the base-2 exponential interval (relative to `v`) that `u` falls
/// into, together with the side. Returns `None` iff `u == v`.
///
/// Interval `i` on either side is `{ u : 2^i <= |u - v| < 2^(i+1) }`, i.e.
/// the index is `floor(log2(|u - v|))`.
#[inline]
pub fn interval_index(v: NodeId, u: NodeId) -> Option<(Side, u32)> {
    if u == v {
        return None;
    }
    let side = if u < v { Side::Left } else { Side::Right };
    let dist = v.line_dist(u);
    Some((side, 63 - dist.leading_zeros()))
}

/// An exponential interval partition with a configurable base.
///
/// For base `b >= 2`, interval `i` covers distances `[b^i, b^(i+1))`. The
/// number of intervals per side is `O(log_b(space size))` — at most 64 for
/// base 2.
#[derive(Clone, Copy, Debug)]
pub struct IntervalPartition {
    base: u64,
}

impl IntervalPartition {
    /// Creates a partition with the given base.
    ///
    /// # Panics
    /// Panics if `base < 2`.
    pub fn new(base: u64) -> Self {
        assert!(base >= 2, "interval base must be at least 2");
        IntervalPartition { base }
    }

    /// The canonical base-2 partition used by the paper.
    pub fn base2() -> Self {
        IntervalPartition { base: 2 }
    }

    /// The configured base.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The maximum number of intervals per side for this base (the smallest
    /// `k` such that `base^k` overflows `u64`).
    pub fn intervals_per_side(&self) -> u32 {
        let mut k = 0u32;
        let mut acc: u128 = 1;
        let base = self.base as u128;
        while acc <= u64::MAX as u128 {
            acc *= base;
            k += 1;
        }
        k
    }

    /// Side and interval index of `u` relative to `v`; `None` iff `u == v`.
    pub fn index(&self, v: NodeId, u: NodeId) -> Option<(Side, u32)> {
        if u == v {
            return None;
        }
        let side = if u < v { Side::Left } else { Side::Right };
        let dist = v.line_dist(u) as u128;
        // floor(log_base(dist)); dist >= 1.
        let base = self.base as u128;
        let mut idx = 0u32;
        let mut hi = base; // upper bound (exclusive) of interval idx
        while dist >= hi {
            idx += 1;
            hi = hi.saturating_mul(base);
        }
        Some((side, idx))
    }

    /// Distance bounds `[lo, hi)` of interval `i`; `hi` is `None` when the
    /// interval is unbounded within the 64-bit space (the last interval).
    pub fn bounds(&self, i: u32) -> (u64, Option<u64>) {
        let base = self.base as u128;
        let lo = base.pow(i);
        let hi = lo * base;
        let lo64 = if lo > u64::MAX as u128 {
            u64::MAX
        } else {
            lo as u64
        };
        let hi64 = if hi > u64::MAX as u128 {
            None
        } else {
            Some(hi as u64)
        };
        (lo64, hi64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_index_matches_log2() {
        let v = NodeId(1000);
        assert_eq!(interval_index(v, NodeId(1001)), Some((Side::Right, 0)));
        assert_eq!(interval_index(v, NodeId(1002)), Some((Side::Right, 1)));
        assert_eq!(interval_index(v, NodeId(1003)), Some((Side::Right, 1)));
        assert_eq!(interval_index(v, NodeId(1004)), Some((Side::Right, 2)));
        assert_eq!(interval_index(v, NodeId(999)), Some((Side::Left, 0)));
        assert_eq!(interval_index(v, NodeId(996)), Some((Side::Left, 2)));
        assert_eq!(interval_index(v, v), None);
    }

    #[test]
    fn partition_base2_agrees_with_fast_path() {
        let p = IntervalPartition::base2();
        let v = NodeId(1 << 40);
        for raw in [0u64, 1, 2, 3, 500, 1 << 20, (1 << 41) - 1, u64::MAX] {
            let u = NodeId(raw);
            assert_eq!(p.index(v, u), interval_index(v, u), "u = {raw}");
        }
    }

    #[test]
    fn base4_has_coarser_intervals() {
        let p = IntervalPartition::new(4);
        let v = NodeId(0);
        assert_eq!(p.index(v, NodeId(3)), Some((Side::Right, 0)));
        assert_eq!(p.index(v, NodeId(4)), Some((Side::Right, 1)));
        assert_eq!(p.index(v, NodeId(15)), Some((Side::Right, 1)));
        assert_eq!(p.index(v, NodeId(16)), Some((Side::Right, 2)));
    }

    #[test]
    fn intervals_per_side_counts() {
        assert_eq!(IntervalPartition::base2().intervals_per_side(), 64);
        assert_eq!(IntervalPartition::new(4).intervals_per_side(), 32);
        assert_eq!(IntervalPartition::new(16).intervals_per_side(), 16);
    }

    #[test]
    fn bounds_cover_space_without_gaps() {
        let p = IntervalPartition::base2();
        let mut expected_lo = 1u64;
        for i in 0..p.intervals_per_side() {
            let (lo, hi) = p.bounds(i);
            assert_eq!(lo, expected_lo, "interval {i}");
            match hi {
                Some(h) => {
                    assert_eq!(h, lo * 2);
                    expected_lo = h;
                }
                None => assert_eq!(i, 63),
            }
        }
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }

    #[test]
    fn max_distance_lands_in_last_interval() {
        let p = IntervalPartition::base2();
        assert_eq!(
            p.index(NodeId(0), NodeId(u64::MAX)),
            Some((Side::Right, 63))
        );
        assert_eq!(
            interval_index(NodeId(0), NodeId(u64::MAX)),
            Some((Side::Right, 63))
        );
    }
}
