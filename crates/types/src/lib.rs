//! Identifier-space primitives shared by every crate in the `ssr-linearize`
//! workspace.
//!
//! The reproduction target — *Using Linearization for Global Consistency in
//! SSR* (Kutzner & Fuhrmann, IPPS 2007) — is entirely a story about one
//! identifier space read two different ways:
//!
//! * as a **ring** (the virtual ring of SSR/VRR, used by greedy routing once
//!   the ring is consistent), and
//! * as a **line** (the total order used by linearization, which makes global
//!   inconsistencies locally visible).
//!
//! This crate provides those two readings ([`ring`]), the node identifier
//! type itself ([`id`]), the exponentially growing interval partition that
//! *linearization with shortcut neighbors* (LSN) and SSR's route cache are
//! built on ([`interval`]), a deterministic pseudo-random number generator so
//! that every simulation is replayable from a seed ([`rng`]), wrapping
//! sequence numbers for protocol state ([`seq`]), and a tiny wire-format
//! helper layer ([`wire`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod id;
pub mod interval;
pub mod ring;
pub mod rng;
pub mod seq;
pub mod wire;

pub use id::NodeId;
pub use interval::{interval_index, IntervalPartition, Side};
pub use ring::{cw_dist, ring_between_cw, ring_dist};
pub use rng::{Rng, SplitMix64};
pub use seq::SeqNo;
