//! Node identifiers.
//!
//! SSR and VRR assign every node a fixed-width address drawn from a flat
//! identifier space; the address determines the node's position on the
//! virtual ring (and, under the linearized reading, on the line). We use a
//! 64-bit space. Identifiers are required to be unique — the linearization
//! algorithm of Onus et al. is only defined for graphs with unique node
//! identifiers.

use core::fmt;

/// A node's address in the 64-bit identifier space.
///
/// `NodeId` is `Copy` and totally ordered; the `Ord` instance is the *linear*
/// order used by linearization. Ring-order comparisons live in
/// [`crate::ring`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The smallest possible identifier.
    pub const MIN: NodeId = NodeId(0);
    /// The largest possible identifier.
    pub const MAX: NodeId = NodeId(u64::MAX);

    /// Creates an identifier from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Absolute distance on the *line* (the linearized reading of the
    /// identifier space): `|self - other|`.
    #[inline]
    pub fn line_dist(self, other: NodeId) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// `true` if `self` lies strictly between `a` and `b` on the line,
    /// regardless of the order of `a` and `b`.
    #[inline]
    pub fn strictly_between(self, a: NodeId, b: NodeId) -> bool {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        lo < self && self < hi
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_linear_order() {
        assert!(NodeId(1) < NodeId(2));
        assert!(NodeId(0) < NodeId(u64::MAX));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn line_dist_is_symmetric() {
        assert_eq!(NodeId(3).line_dist(NodeId(10)), 7);
        assert_eq!(NodeId(10).line_dist(NodeId(3)), 7);
        assert_eq!(NodeId(5).line_dist(NodeId(5)), 0);
        assert_eq!(NodeId::MIN.line_dist(NodeId::MAX), u64::MAX);
    }

    #[test]
    fn strictly_between_ignores_argument_order() {
        assert!(NodeId(5).strictly_between(NodeId(1), NodeId(9)));
        assert!(NodeId(5).strictly_between(NodeId(9), NodeId(1)));
        assert!(!NodeId(1).strictly_between(NodeId(1), NodeId(9)));
        assert!(!NodeId(9).strictly_between(NodeId(1), NodeId(9)));
        assert!(!NodeId(0).strictly_between(NodeId(1), NodeId(9)));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", NodeId(42)), "n42");
        assert_eq!(format!("{}", NodeId(42)), "42");
    }

    #[test]
    fn conversions_roundtrip() {
        let id: NodeId = 99u64.into();
        let raw: u64 = id.into();
        assert_eq!(raw, 99);
    }
}
