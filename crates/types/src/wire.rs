//! Wire-format helpers.
//!
//! SSR is a network-layer protocol: its messages — source routes in
//! particular — travel in packet headers. To let the benchmark suite measure
//! realistic header sizes and encode/decode cost (bench B6), this module
//! defines a minimal length-prefixed binary encoding for identifiers, id
//! lists (source routes), and sequence numbers on top of the `bytes` crate.
//!
//! The format is deliberately simple: big-endian fixed-width integers, with
//! `u32` length prefixes for lists. It is *not* a compatibility surface —
//! just a concrete, measurable representation.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{NodeId, SeqNo};

/// Error returned when a buffer is too short or malformed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// What the decoder was trying to read.
    pub context: &'static str,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "wire decode error while reading {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a `NodeId` (8 bytes, big-endian).
#[inline]
pub fn put_node_id(buf: &mut BytesMut, id: NodeId) {
    buf.put_u64(id.raw());
}

/// Decodes a `NodeId`.
#[inline]
pub fn get_node_id(buf: &mut Bytes) -> Result<NodeId, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError { context: "node id" });
    }
    Ok(NodeId(buf.get_u64()))
}

/// Encodes a `SeqNo` (4 bytes, big-endian).
#[inline]
pub fn put_seq(buf: &mut BytesMut, seq: SeqNo) {
    buf.put_u32(seq.0);
}

/// Decodes a `SeqNo`.
#[inline]
pub fn get_seq(buf: &mut Bytes) -> Result<SeqNo, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError {
            context: "sequence number",
        });
    }
    Ok(SeqNo(buf.get_u32()))
}

/// Encodes an id list (source route) with a `u32` length prefix.
pub fn put_id_list(buf: &mut BytesMut, ids: &[NodeId]) {
    buf.put_u32(ids.len() as u32);
    for &id in ids {
        buf.put_u64(id.raw());
    }
}

/// Decodes an id list.
pub fn get_id_list(buf: &mut Bytes) -> Result<Vec<NodeId>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError {
            context: "id list length",
        });
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len * 8 {
        return Err(DecodeError {
            context: "id list body",
        });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(NodeId(buf.get_u64()));
    }
    Ok(out)
}

/// Encoded size in bytes of an id list of the given length — the source
/// route's contribution to a packet header.
#[inline]
pub fn id_list_encoded_len(route_len: usize) -> usize {
    4 + route_len * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let mut buf = BytesMut::new();
        put_node_id(&mut buf, NodeId(0xDEAD_BEEF_0000_0001));
        let mut b = buf.freeze();
        assert_eq!(get_node_id(&mut b).unwrap(), NodeId(0xDEAD_BEEF_0000_0001));
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn seq_roundtrip() {
        let mut buf = BytesMut::new();
        put_seq(&mut buf, SeqNo(77));
        let mut b = buf.freeze();
        assert_eq!(get_seq(&mut b).unwrap(), SeqNo(77));
    }

    #[test]
    fn id_list_roundtrip() {
        let ids: Vec<NodeId> = (0..17u64).map(NodeId).collect();
        let mut buf = BytesMut::new();
        put_id_list(&mut buf, &ids);
        assert_eq!(buf.len(), id_list_encoded_len(17));
        let mut b = buf.freeze();
        assert_eq!(get_id_list(&mut b).unwrap(), ids);
    }

    #[test]
    fn empty_id_list() {
        let mut buf = BytesMut::new();
        put_id_list(&mut buf, &[]);
        let mut b = buf.freeze();
        assert_eq!(get_id_list(&mut b).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn short_buffer_errors() {
        let mut b = Bytes::from_static(&[0, 0, 0]);
        assert!(get_node_id(&mut b.clone()).is_err());
        assert!(get_seq(&mut b.clone()).is_err());
        assert!(get_id_list(&mut b).is_err());
    }

    #[test]
    fn truncated_list_body_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32(5); // claims 5 ids
        buf.put_u64(1); // provides 1
        let mut b = buf.freeze();
        assert!(get_id_list(&mut b).is_err());
    }
}
