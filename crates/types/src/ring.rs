//! Ring arithmetic on the 64-bit identifier space.
//!
//! SSR views the identifier space as "the circularly connected address
//! space": after [`NodeId::MAX`](crate::NodeId::MAX) comes
//! [`NodeId::MIN`](crate::NodeId::MIN). Greedy routing and the successor
//! relation of ISPRP are defined in terms of *clockwise* (increasing-address)
//! distance on that ring.
//!
//! Linearization, by contrast, deliberately drops the wrap-around and reads
//! the space as a line — that reading lives on
//! [`NodeId`] itself (`Ord`, `line_dist`).

use crate::NodeId;

/// Clockwise (increasing-address, wrapping) distance from `a` to `b`.
///
/// `cw_dist(a, b)` is the number of steps from `a` to `b` when walking the
/// ring in the direction of increasing addresses. It is zero iff `a == b`,
/// and `cw_dist(a, b) + cw_dist(b, a) == 2^64` for `a != b` (computed with
/// wrapping arithmetic).
#[inline]
pub fn cw_dist(a: NodeId, b: NodeId) -> u64 {
    b.0.wrapping_sub(a.0)
}

/// Undirected ring distance: the length of the shorter arc between `a` and
/// `b`.
#[inline]
pub fn ring_dist(a: NodeId, b: NodeId) -> u64 {
    let cw = cw_dist(a, b);
    let ccw = cw_dist(b, a);
    cw.min(ccw)
}

/// `true` iff walking clockwise from `from` (exclusive) one meets `x` no
/// later than `to` (inclusive).
///
/// This is the standard Chord-style "`x ∈ (from, to]` on the ring" test that
/// the ISPRP successor relation is built from. If `from == to` the interval
/// is the whole ring minus `from`, so every `x != from` is inside.
#[inline]
pub fn ring_between_cw(from: NodeId, x: NodeId, to: NodeId) -> bool {
    if x == from {
        return false;
    }
    cw_dist(from, x) <= cw_dist(from, to) || from == to
}

/// Of `a` and `b`, returns the one with the smaller clockwise distance from
/// `v`, i.e. the better *successor candidate* for `v`. Ties (only possible if
/// `a == b`) return `a`.
#[inline]
pub fn closer_successor(v: NodeId, a: NodeId, b: NodeId) -> NodeId {
    if cw_dist(v, a) <= cw_dist(v, b) {
        a
    } else {
        b
    }
}

/// Of `a` and `b`, returns the one with the smaller *undirected* ring
/// distance to `target`; on a tie, the one with the smaller clockwise
/// distance (a deterministic tie-break so greedy routing is replayable).
#[inline]
pub fn ring_closer(target: NodeId, a: NodeId, b: NodeId) -> NodeId {
    let da = ring_dist(a, target);
    let db = ring_dist(b, target);
    if da < db {
        a
    } else if db < da {
        b
    } else if cw_dist(a, target) <= cw_dist(b, target) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N10: NodeId = NodeId(10);
    const N20: NodeId = NodeId(20);
    const NMAX: NodeId = NodeId(u64::MAX);

    #[test]
    fn cw_dist_basic_and_wrapping() {
        assert_eq!(cw_dist(N10, N20), 10);
        assert_eq!(cw_dist(N20, N10), u64::MAX - 9);
        assert_eq!(cw_dist(NMAX, N0), 1);
        assert_eq!(cw_dist(N0, NMAX), u64::MAX);
        assert_eq!(cw_dist(N10, N10), 0);
    }

    #[test]
    fn cw_dist_arcs_sum_to_ring_length() {
        // cw(a,b) + cw(b,a) wraps to 0 == 2^64 mod 2^64 for a != b.
        let pairs = [(N0, N10), (N10, NMAX), (NodeId(5), NodeId(123456))];
        for (a, b) in pairs {
            assert_eq!(cw_dist(a, b).wrapping_add(cw_dist(b, a)), 0);
        }
    }

    #[test]
    fn ring_dist_is_shorter_arc() {
        assert_eq!(ring_dist(N10, N20), 10);
        assert_eq!(ring_dist(N20, N10), 10);
        assert_eq!(ring_dist(NMAX, N0), 1);
        assert_eq!(ring_dist(N0, NodeId(u64::MAX / 2)), u64::MAX / 2);
    }

    #[test]
    fn between_cw_half_open_interval() {
        assert!(ring_between_cw(N0, N10, N20));
        assert!(ring_between_cw(N0, N20, N20)); // inclusive right end
        assert!(!ring_between_cw(N0, N0, N20)); // exclusive left end
        assert!(!ring_between_cw(N0, NodeId(21), N20));
        // wrapping interval (MAX, 10]
        assert!(ring_between_cw(NMAX, N0, N10));
        assert!(ring_between_cw(NMAX, N10, N10));
        assert!(!ring_between_cw(NMAX, NodeId(11), N10));
    }

    #[test]
    fn degenerate_interval_is_whole_ring() {
        // (a, a] on the ring contains everything except a itself.
        assert!(ring_between_cw(N10, N20, N10));
        assert!(ring_between_cw(N10, N0, N10));
        assert!(!ring_between_cw(N10, N10, N10));
    }

    #[test]
    fn closer_successor_picks_smaller_cw_arc() {
        assert_eq!(closer_successor(N10, N20, NMAX), N20);
        assert_eq!(closer_successor(NMAX, N0, N10), N0);
        // wrap: from 20, node 0 is cw-closer than node 10? cw(20,0) is huge,
        // cw(20,10) is huge-10, so 10 loses... check carefully:
        // cw(20, 0) = 2^64-20, cw(20, 10) = 2^64-10, so 0 is closer.
        assert_eq!(closer_successor(N20, N0, N10), N0);
    }

    #[test]
    fn ring_closer_deterministic_tie_break() {
        // 5 and 15 are both ring-distance 5 from 10; the cw tie-break picks
        // 15 (cw_dist(15,10) = 2^64-5 > cw_dist(5,10)=5 so actually 5 wins).
        assert_eq!(ring_closer(N10, NodeId(5), NodeId(15)), NodeId(5));
        assert_eq!(ring_closer(N10, NodeId(15), NodeId(5)), NodeId(5));
        assert_eq!(ring_closer(N10, NodeId(9), NodeId(15)), NodeId(9));
    }
}
