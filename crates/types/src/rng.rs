//! Deterministic pseudo-random number generation.
//!
//! Every topology generator, workload, and simulation in this workspace is
//! driven by a seedable generator so that an experiment is exactly
//! reproducible from `(code, seed)`. We implement SplitMix64 (for seeding
//! and cheap streams) and xoshiro256** (the workhorse), plus the handful of
//! distributions the experiments need (uniform ranges without modulo bias,
//! floats, exponential inter-arrival times, and Fisher–Yates shuffling).
//! Implementing these ~200 lines ourselves keeps the replay format stable
//! across external crate versions (see DESIGN.md).

/// SplitMix64 — a tiny, high-quality 64-bit generator, used both directly
/// and to expand seeds for [`Xoshiro256StarStar`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the default generator for simulations.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` with SplitMix64 (the
    /// initialization recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace RNG: xoshiro256** with distribution helpers.
///
/// Cloning an `Rng` forks an identical stream; use [`Rng::split`] to derive
/// an *independent* stream (e.g. one per node, or one per sweep point run on
/// a worker thread).
#[derive(Clone, Debug)]
pub struct Rng {
    inner: Xoshiro256StarStar,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator, keyed by `stream`. Two splits of the
    /// same generator with different keys produce unrelated streams; the
    /// parent stream is not advanced.
    pub fn split(&self, stream: u64) -> Rng {
        // Mix the parent state with the stream key through SplitMix64.
        let mut sm = SplitMix64::new(
            self.inner.s[0]
                ^ self.inner.s[3].rotate_left(17)
                ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        Rng {
            inner: Xoshiro256StarStar { s },
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)` without modulo bias (Lemire's method).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is undefined");
        // Widening multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed sample with rate `lambda` (mean
    /// `1/lambda`), via inverse transform. Used for churn inter-arrival
    /// times and link latency jitter.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        // 1 - f64() is in (0, 1]; ln of it is finite.
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Pareto-distributed sample with shape `alpha` and scale 1 — the heavy
    /// tail used by the power-law degree generator.
    #[inline]
    pub fn pareto(&mut self, alpha: f64) -> f64 {
        assert!(alpha > 0.0, "shape must be positive");
        (1.0 - self.f64()).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// A random `NodeId` (uniform over the whole space).
    pub fn node_id(&mut self) -> crate::NodeId {
        crate::NodeId(self.next_u64())
    }

    /// `count` *distinct* random `NodeId`s, sorted ascending. Used to assign
    /// node addresses: SSR requires globally unique identifiers.
    pub fn distinct_node_ids(&mut self, count: usize) -> Vec<crate::NodeId> {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < count {
            set.insert(self.node_id());
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = Rng::new(7);
        let mut s1 = root.split(1);
        let mut s1_again = root.split(1);
        let mut s2 = root.split(2);
        let a: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s1_again.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| s2.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = Rng::new(13);
        let lambda = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((0.22..0.28).contains(&mean), "mean {mean}, expected 0.25");
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let mut r = Rng::new(17);
        for _ in 0..1000 {
            assert!(r.pareto(2.0) >= 1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::new(23);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*r.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(r.choose::<u32>(&[]), None);
    }

    #[test]
    fn distinct_node_ids_are_distinct_and_sorted() {
        let mut r = Rng::new(29);
        let ids = r.distinct_node_ids(1000);
        assert_eq!(ids.len(), 1000);
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(31);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
