//! Wrapping protocol sequence numbers.
//!
//! Bootstrap and maintenance messages (neighbor notifications, hello
//! beacons, discovery probes) carry sequence numbers so stale state can be
//! superseded after churn. Comparison uses the standard serial-number
//! arithmetic (RFC 1982 style) on 32 bits: `a` is newer than `b` iff
//! `0 < (a - b) mod 2^32 < 2^31`.

use core::fmt;

/// A 32-bit wrapping sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct SeqNo(pub u32);

impl SeqNo {
    /// The initial sequence number.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The next sequence number (wrapping).
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }

    /// Advances in place and returns the *new* value.
    #[inline]
    pub fn bump(&mut self) -> SeqNo {
        *self = self.next();
        *self
    }

    /// `true` iff `self` is strictly newer than `other` under serial-number
    /// arithmetic. Antisymmetric except at the ambiguous antipode
    /// (distance exactly `2^31`), which compares "not newer" both ways.
    #[inline]
    pub fn newer_than(self, other: SeqNo) -> bool {
        let diff = self.0.wrapping_sub(other.0);
        diff != 0 && diff < (1 << 31)
    }

    /// `self.newer_than(other) || self == other`.
    #[inline]
    pub fn at_least(self, other: SeqNo) -> bool {
        self == other || self.newer_than(other)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_without_wrap() {
        assert!(SeqNo(5).newer_than(SeqNo(3)));
        assert!(!SeqNo(3).newer_than(SeqNo(5)));
        assert!(!SeqNo(5).newer_than(SeqNo(5)));
    }

    #[test]
    fn ordering_across_wrap() {
        assert!(SeqNo(2).newer_than(SeqNo(u32::MAX)));
        assert!(!SeqNo(u32::MAX).newer_than(SeqNo(2)));
    }

    #[test]
    fn antipode_is_mutually_not_newer() {
        let a = SeqNo(0);
        let b = SeqNo(1 << 31);
        assert!(!a.newer_than(b));
        assert!(!b.newer_than(a));
    }

    #[test]
    fn next_and_bump() {
        let mut s = SeqNo(u32::MAX);
        assert_eq!(s.next(), SeqNo(0));
        assert_eq!(s.bump(), SeqNo(0));
        assert_eq!(s, SeqNo(0));
        assert!(s.at_least(SeqNo(0)));
    }
}
