//! Topology scenarios: a small declarative layer over `ssr_graph`'s
//! generators so experiments can sweep families uniformly.

use ssr_graph::{generators, Graph, Labeling};
use ssr_types::Rng;

/// A physical-topology family with its parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// Connected unit-disk graph at `scale ×` the connectivity-threshold
    /// radius (the MANET/sensor substrate).
    UnitDisk {
        /// Number of nodes.
        n: usize,
        /// Radius scale factor.
        scale: f64,
    },
    /// Random `d`-regular graph.
    Regular {
        /// Number of nodes.
        n: usize,
        /// Uniform degree.
        d: usize,
    },
    /// Erdős–Rényi `G(n, p)` with `p = c·ln n / n`, patched to connected.
    Gnp {
        /// Number of nodes.
        n: usize,
        /// Multiple of the connectivity threshold `ln n / n`.
        c: f64,
    },
    /// Power-law (erased configuration model) with exponent `alpha`,
    /// minimum degree 2, patched to connected.
    PowerLaw {
        /// Number of nodes.
        n: usize,
        /// Degree exponent.
        alpha: f64,
    },
    /// Barabási–Albert preferential attachment with `m` links per node.
    PreferentialAttachment {
        /// Number of nodes.
        n: usize,
        /// Links added per node.
        m: usize,
    },
    /// Watts–Strogatz ring lattice with degree `k` rewired with
    /// probability `beta`, patched to connected.
    SmallWorld {
        /// Number of nodes.
        n: usize,
        /// Lattice degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// A simple cycle (worst-case diameter).
    Ring {
        /// Number of nodes.
        n: usize,
    },
    /// A 2-D grid as close to square as possible.
    Grid {
        /// Number of nodes (rounded down to `w·h`).
        n: usize,
    },
}

impl Topology {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        match *self {
            Topology::UnitDisk { n, .. }
            | Topology::Regular { n, .. }
            | Topology::Gnp { n, .. }
            | Topology::PowerLaw { n, .. }
            | Topology::PreferentialAttachment { n, .. }
            | Topology::SmallWorld { n, .. }
            | Topology::Ring { n }
            | Topology::Grid { n } => n,
        }
    }

    /// Short name for tables.
    pub fn family(&self) -> &'static str {
        match self {
            Topology::UnitDisk { .. } => "unit-disk",
            Topology::Regular { .. } => "regular",
            Topology::Gnp { .. } => "gnp",
            Topology::PowerLaw { .. } => "power-law",
            Topology::PreferentialAttachment { .. } => "pref-attach",
            Topology::SmallWorld { .. } => "small-world",
            Topology::Ring { .. } => "ring",
            Topology::Grid { .. } => "grid",
        }
    }

    /// Generates a *connected* instance.
    pub fn generate(&self, rng: &mut Rng) -> Graph {
        let mut g = match *self {
            Topology::UnitDisk { n, scale } => generators::unit_disk_connected(n, scale, rng).0,
            Topology::Regular { n, d } => generators::random_regular(n, d, rng),
            Topology::Gnp { n, c } => {
                let p = (c * (n as f64).ln() / n as f64).min(1.0);
                generators::gnp(n, p, rng)
            }
            Topology::PowerLaw { n, alpha } => {
                generators::powerlaw_configuration(n, alpha, 2, None, rng)
            }
            Topology::PreferentialAttachment { n, m } => generators::barabasi_albert(n, m, rng),
            Topology::SmallWorld { n, k, beta } => generators::watts_strogatz(n, k, beta, rng),
            Topology::Ring { n } => generators::ring(n),
            Topology::Grid { n } => {
                let w = (n as f64).sqrt() as usize;
                let h = n / w.max(1);
                generators::grid(w.max(1), h.max(1))
            }
        };
        generators::ensure_connected(&mut g, rng);
        g
    }

    /// Generates an instance plus a random address labeling — the standard
    /// experiment setup.
    pub fn instance(&self, seed: u64) -> (Graph, Labeling) {
        let mut rng = Rng::new(seed);
        let g = self.generate(&mut rng);
        let labels = Labeling::random(g.node_count(), &mut rng);
        (g, labels)
    }
}

/// Draws `count` source/destination pairs (distinct endpoints) for routing
/// workloads.
pub fn traffic_pairs(n: usize, count: usize, rng: &mut Rng) -> Vec<(usize, usize)> {
    assert!(n >= 2);
    (0..count)
        .map(|_| {
            let a = rng.index(n);
            let b = loop {
                let b = rng.index(n);
                if b != a {
                    break b;
                }
            };
            (a, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::algo;

    #[test]
    fn all_families_generate_connected_graphs() {
        let topos = [
            Topology::UnitDisk { n: 60, scale: 1.2 },
            Topology::Regular { n: 60, d: 4 },
            Topology::Gnp { n: 60, c: 1.5 },
            Topology::PowerLaw { n: 60, alpha: 2.0 },
            Topology::PreferentialAttachment { n: 60, m: 2 },
            Topology::SmallWorld {
                n: 60,
                k: 4,
                beta: 0.2,
            },
            Topology::Ring { n: 60 },
            Topology::Grid { n: 60 },
        ];
        for t in topos {
            let (g, labels) = t.instance(7);
            assert!(algo::is_connected(&g), "{}", t.family());
            assert_eq!(labels.len(), g.node_count(), "{}", t.family());
            assert!(!t.family().is_empty());
        }
    }

    #[test]
    fn instance_is_deterministic() {
        let t = Topology::UnitDisk { n: 40, scale: 1.3 };
        let (g1, l1) = t.instance(5);
        let (g2, l2) = t.instance(5);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        assert_eq!(l1.ids(), l2.ids());
    }

    #[test]
    fn grid_node_count_close() {
        let t = Topology::Grid { n: 30 };
        let (g, _) = t.instance(1);
        assert!(g.node_count() >= 25 && g.node_count() <= 30);
    }

    #[test]
    fn traffic_pairs_distinct_endpoints() {
        let mut rng = Rng::new(3);
        for (a, b) in traffic_pairs(10, 200, &mut rng) {
            assert_ne!(a, b);
            assert!(a < 10 && b < 10);
        }
    }
}
