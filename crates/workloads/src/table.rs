//! ASCII tables and CSV output for the experiment binaries.

use std::io::Write as _;
use std::path::Path;

/// A simple right-aligned ASCII table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let hline: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:>w$} ", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&hline);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `path`.
    pub fn to_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut rows = vec![self.headers.clone()];
        rows.extend(self.rows.iter().cloned());
        write_csv(path, &rows)
    }
}

/// Writes rows as CSV (quoting cells containing commas/quotes).
pub fn write_csv(path: impl AsRef<Path>, rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') || c.contains('\n') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut t = Table::new("Demo", &["n", "rounds"]);
        t.row(&["64".into(), "12.0 ± 1.0".into()]);
        t.row(&["128".into(), "14.5 ± 0.8".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("rounds"));
        assert!(s.contains("14.5 ± 0.8"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(&["only one".into()]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("ssr_table_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into(), "with,comma".into()]);
        t.to_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("\"with,comma\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quotes_escaped() {
        let dir = std::env::temp_dir().join("ssr_table_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.csv");
        write_csv(&path, &[vec!["say \"hi\"".to_string()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"say \"\"hi\"\"\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn row_display_helper() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row_display(&[&1u32, &2.5f64]);
        assert!(t.render().contains("2.5"));
    }
}
