//! Parallel deterministic sweep orchestrator.
//!
//! Every point of an experiment sweep — a (scenario, topology size, seed)
//! cell of the matrix — is an independent simulation: a sealed function of
//! its configuration and seed. The orchestrator fans those jobs out over a
//! pool of scoped worker threads and guarantees that **everything observable
//! downstream is byte-independent of the worker count and of OS
//! scheduling**:
//!
//! * jobs are enumerated in one canonical order ([`Matrix::jobs`]:
//!   scenario-major, then size, then seed) with a dense job index;
//! * workers pull the next job index from a shared atomic queue, so the
//!   *assignment* of jobs to threads is scheduling-dependent — but each
//!   result is written into a slot table **at its job index**
//!   ([`run_jobs`]), never appended in completion order;
//! * merged artifacts (metric registries via [`ssr_sim::Metrics::merge`],
//!   causal ledgers via [`ssr_sim::ProvenanceSummary::merge`], tables,
//!   manifests) are folded from that slot table in job order
//!   ([`SweepOutcome::merge_metrics`]).
//!
//! The single sanctioned `std::thread` use in the workspace lives here (the
//! `determinism-time` lint allowlists exactly this file); a job function
//! must not read wall clocks or OS entropy — the lint enforces that
//! elsewhere, and `tests/tests/sweep_determinism.rs` pins the byte-identity
//! guarantee end to end, worker counts 1/2/8 against each other, with a
//! deliberately slow first job forcing completion order ≠ input order.
//!
//! The experiment binaries drive this through a shared CLI layer
//! (`--workers N`, `--matrix SPEC` — see `ssr_bench::Args::workers` and
//! [`Matrix::override_with`]); docs/SWEEPS.md is the operator guide.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ssr_sim::{Metrics, ProvenanceSummary};

/// One cell of a sweep matrix, identified by its dense position in the
/// canonical job order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Dense position in [`Matrix::jobs`] order — the slot this job's
    /// result lands in, regardless of when it completes.
    pub index: usize,
    /// Index into [`Matrix::scenarios`].
    pub scenario: usize,
    /// Topology size for this cell.
    pub n: usize,
    /// Per-run seed.
    pub seed: u64,
}

/// The scenario × n × seed cross product an experiment sweeps.
///
/// Binaries construct their default matrix, apply `--matrix` overrides via
/// [`Matrix::override_with`], and hand the result to [`run_matrix`]. The
/// resolved dimensions (never the worker count) are what belongs in a run
/// manifest: they determine the output bytes, the workers do not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    /// Scenario names (protocol variants, fault mixes, topology families —
    /// whatever the binary's outer dimension is).
    pub scenarios: Vec<String>,
    /// Topology sizes.
    pub sizes: Vec<usize>,
    /// Explicit seed list (`--matrix seeds=K` expands to `0..K`).
    pub seeds: Vec<u64>,
}

impl Matrix {
    /// A matrix from scenario names, sizes, and a seed *count* (seeds
    /// `0..count`, matching the binaries' historical `--seeds K` flag).
    pub fn new<S: Into<String>>(
        scenarios: impl IntoIterator<Item = S>,
        sizes: Vec<usize>,
        seed_count: u64,
    ) -> Matrix {
        Matrix {
            scenarios: scenarios.into_iter().map(Into::into).collect(),
            sizes,
            seeds: (0..seed_count).collect(),
        }
    }

    /// Number of jobs in the cross product.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.sizes.len() * self.seeds.len()
    }

    /// `true` when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scenario name of a job.
    pub fn name(&self, job: &Job) -> &str {
        &self.scenarios[job.scenario]
    }

    /// The full job list in canonical order: scenario-major, then size,
    /// then seed. This order — not completion order — is the order results
    /// are collected, merged, and rendered in.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.len());
        for (scenario, _) in self.scenarios.iter().enumerate() {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    jobs.push(Job {
                        index: jobs.len(),
                        scenario,
                        n,
                        seed,
                    });
                }
            }
        }
        jobs
    }

    /// Canonical one-line description of the resolved dimensions, suitable
    /// for a manifest config entry (it round-trips through
    /// [`Matrix::override_with`]).
    pub fn describe(&self) -> String {
        let join = |it: Vec<String>| it.join(",");
        format!(
            "scenario={};n={};seed={}",
            join(self.scenarios.clone()),
            join(self.sizes.iter().map(|n| n.to_string()).collect()),
            join(self.seeds.iter().map(|s| s.to_string()).collect()),
        )
    }

    /// Applies a `--matrix` override spec onto this (default) matrix.
    ///
    /// The spec is `;`-separated `key=value` clauses:
    ///
    /// * `scenario=a,b` — restrict to the named scenarios (every name must
    ///   exist in the default set; the default order is kept);
    /// * `n=50,100` — replace the size list;
    /// * `seeds=K` — seeds `0..K`; `seeds=A..B` — the half-open range;
    ///   `seed=3,7,9` (or a comma list under `seeds=`) — an explicit list.
    ///
    /// Unknown keys, unknown scenario names, and empty dimensions are
    /// errors — a silently empty sweep would look like a passing one.
    pub fn override_with(&mut self, spec: &str) -> Result<(), String> {
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("`{clause}`: expected key=value"))?;
            match key.trim() {
                "scenario" | "scenarios" => {
                    let want: Vec<&str> = value.split(',').map(str::trim).collect();
                    for w in &want {
                        if !self.scenarios.iter().any(|s| s == w) {
                            return Err(format!(
                                "unknown scenario `{w}` (available: {})",
                                self.scenarios.join(", ")
                            ));
                        }
                    }
                    self.scenarios.retain(|s| want.contains(&s.as_str()));
                }
                "n" | "size" | "sizes" => {
                    self.sizes = value
                        .split(',')
                        .map(|v| v.trim().parse().map_err(|e| format!("n `{v}`: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "seed" | "seeds" => {
                    self.seeds = parse_seeds(value)?;
                }
                other => {
                    return Err(format!(
                        "unknown matrix key `{other}` (expected scenario=, n=, seeds=)"
                    ))
                }
            }
        }
        if self.is_empty() {
            return Err("matrix has an empty dimension".into());
        }
        Ok(())
    }
}

/// `K` → `0..K`; `A..B` → the half-open range; `a,b,c` → explicit list.
fn parse_seeds(value: &str) -> Result<Vec<u64>, String> {
    let value = value.trim();
    if let Some((lo, hi)) = value.split_once("..") {
        let lo: u64 = lo.trim().parse().map_err(|e| format!("seed `{lo}`: {e}"))?;
        let hi: u64 = hi.trim().parse().map_err(|e| format!("seed `{hi}`: {e}"))?;
        if lo >= hi {
            return Err(format!("empty seed range {lo}..{hi}"));
        }
        return Ok((lo..hi).collect());
    }
    let parts: Vec<u64> = value
        .split(',')
        .map(|v| v.trim().parse().map_err(|e| format!("seed `{v}`: {e}")))
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [] => Err("empty seed list".into()),
        // a single number is a count (matches the historical `--seeds K`)
        [k] => Ok((0..*k).collect()),
        _ => Ok(parts),
    }
}

/// The results of one matrix sweep, in canonical job order.
pub struct SweepOutcome<O> {
    /// The resolved matrix the jobs came from.
    pub matrix: Matrix,
    /// One output per job, indexed exactly like [`Matrix::jobs`].
    pub outputs: Vec<O>,
}

impl<O> SweepOutcome<O> {
    /// Iterates the (scenario name, n, per-seed outputs) cells in canonical
    /// order. Each cell's slice is in seed order — the natural shape for a
    /// results table row.
    pub fn cells(&self) -> impl Iterator<Item = (&str, usize, &[O])> {
        let per_cell = self.matrix.seeds.len();
        self.matrix
            .scenarios
            .iter()
            .flat_map(move |s| self.matrix.sizes.iter().map(move |&n| (s.as_str(), n)))
            .zip(self.outputs.chunks(per_cell))
            .map(|((s, n), chunk)| (s, n, chunk))
    }

    /// Folds every job's metric registry into one, in job order — the
    /// deterministic histogram/counter merge that makes the merged manifest
    /// independent of scheduling.
    pub fn merge_metrics(&self, of: impl Fn(&O) -> &Metrics) -> Metrics {
        let mut merged = Metrics::new();
        for o in &self.outputs {
            merged.merge(of(o));
        }
        merged
    }

    /// Folds every job's causal-ledger summary into one, in job order.
    pub fn merge_provenance(&self, of: impl Fn(&O) -> &ProvenanceSummary) -> ProvenanceSummary {
        let mut merged = ProvenanceSummary::default();
        for o in &self.outputs {
            merged.merge(of(o));
        }
        merged
    }
}

/// Runs every job of `matrix` on a pool of `workers` threads and collects
/// the outputs by job index.
pub fn run_matrix<O, F>(matrix: &Matrix, workers: usize, f: F) -> SweepOutcome<O>
where
    O: Send,
    F: Fn(&Job) -> O + Sync,
{
    let jobs = matrix.jobs();
    let outputs = run_jobs(&jobs, workers, |_, job| f(job));
    SweepOutcome {
        matrix: matrix.clone(),
        outputs,
    }
}

/// The job-queue executor: applies `f` to every input on a pool of
/// `workers` scoped threads, returning outputs **in input order**.
///
/// Workers take the next un-started input from a shared atomic counter and
/// write the result into a pre-sized slot table at the input's index, so
/// the output vector's order is the input order *by construction* — no
/// completion-order channel, no sort. `f` is shared across workers (hence
/// `Sync`) and receives the input index alongside the input.
pub fn run_jobs<I, O, F>(inputs: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        // serial fast path: no threads, same order, same bytes
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let (next, slots_ref, f) = (&next, &slots, &f);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = slots_ref;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &inputs[i]);
                *slots[i].lock().expect("job slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("job slot poisoned")
                .expect("every job slot filled")
        })
        .collect()
}

/// Applies `f` to every input on a pool of `workers` threads, returning
/// outputs in input order. Convenience wrapper over [`run_jobs`] for sweeps
/// whose inputs are not a [`Matrix`] (pinned seed lists, ad-hoc point sets).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_jobs(&inputs, workers, |_, x| f(x))
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_workers() -> usize {
    max_workers().saturating_sub(1).max(1)
}

/// Every hardware thread (`--workers 0` resolves to this).
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::new(["a", "b"], vec![16, 32], 3)
    }

    #[test]
    fn jobs_enumerate_scenario_major() {
        let m = matrix();
        let jobs = m.jobs();
        assert_eq!(jobs.len(), 12);
        assert_eq!(
            jobs[0],
            Job {
                index: 0,
                scenario: 0,
                n: 16,
                seed: 0
            }
        );
        assert_eq!(
            jobs[3],
            Job {
                index: 3,
                scenario: 0,
                n: 32,
                seed: 0
            }
        );
        assert_eq!(
            jobs[6],
            Job {
                index: 6,
                scenario: 1,
                n: 16,
                seed: 0
            }
        );
        assert_eq!(
            jobs[11],
            Job {
                index: 11,
                scenario: 1,
                n: 32,
                seed: 2
            }
        );
        assert!(jobs.iter().enumerate().all(|(i, j)| j.index == i));
    }

    #[test]
    fn override_replaces_dimensions() {
        let mut m = matrix();
        m.override_with("n=64; seeds=2").unwrap();
        assert_eq!(m.sizes, vec![64]);
        assert_eq!(m.seeds, vec![0, 1]);
        m.override_with("scenario=b").unwrap();
        assert_eq!(m.scenarios, vec!["b".to_string()]);
        m.override_with("seed=5,9").unwrap();
        assert_eq!(m.seeds, vec![5, 9]);
        m.override_with("seeds=4..7").unwrap();
        assert_eq!(m.seeds, vec![4, 5, 6]);
    }

    #[test]
    fn override_keeps_default_scenario_order() {
        let mut m = matrix();
        m.override_with("scenario=b,a").unwrap();
        assert_eq!(m.scenarios, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn override_rejects_bad_specs() {
        assert!(matrix().override_with("scenario=zzz").is_err());
        assert!(matrix().override_with("bogus=1").is_err());
        assert!(matrix().override_with("n=").is_err());
        assert!(matrix().override_with("seeds=0").is_err()); // empty dimension
        assert!(matrix().override_with("seeds=7..3").is_err());
        assert!(matrix().override_with("n").is_err());
    }

    #[test]
    fn describe_round_trips() {
        let mut m = matrix();
        m.override_with("seed=3,7").unwrap();
        let desc = m.describe();
        let mut again = matrix();
        again.override_with(&desc).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn run_matrix_collects_by_job_index() {
        let m = matrix();
        for workers in [1, 2, 8] {
            let out = run_matrix(&m, workers, |job| (job.index, job.n, job.seed));
            assert_eq!(out.outputs.len(), 12);
            assert!(out.outputs.iter().enumerate().all(|(i, o)| o.0 == i));
        }
    }

    #[test]
    fn cells_group_by_scenario_and_size() {
        let m = matrix();
        let out = run_matrix(&m, 4, |job| job.seed);
        let cells: Vec<(&str, usize, &[u64])> = out.cells().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], ("a", 16, &[0, 1, 2][..]));
        assert_eq!(cells[3], ("b", 32, &[0, 1, 2][..]));
    }

    #[test]
    fn merged_metrics_are_worker_count_independent() {
        let m = matrix();
        let run = |workers| {
            let out = run_matrix(&m, workers, |job| {
                let mut metrics = Metrics::new();
                metrics.add("tx.total", job.seed + job.n as u64);
                metrics.observe_hist("chaos.recovery_ticks", job.index as u64 + 1);
                metrics
            });
            out.merge_metrics(|m| m)
        };
        let merged1 = run(1);
        for workers in [2, 8] {
            let merged = run(workers);
            assert_eq!(
                merged.counter("tx.total"),
                merged1.counter("tx.total"),
                "workers={workers}"
            );
            assert_eq!(
                merged.hist("chaos.recovery_ticks").map(|h| h.count()),
                merged1.hist("chaos.recovery_ticks").map(|h| h.count()),
            );
        }
    }

    #[test]
    fn preserves_order_under_adversarial_completion() {
        // job 0 busy-waits until every other job has finished, forcing the
        // completion order to be the exact reverse of the input order at
        // the front; the slot table must still return input order
        let done = AtomicUsize::new(0);
        let inputs: Vec<u64> = (0..16).collect();
        let n = inputs.len();
        let out = parallel_map(inputs, 4, |&x| {
            if x == 0 {
                while done.load(Ordering::SeqCst) < n - 1 {
                    std::hint::spin_loop();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            x * 10
        });
        let expected: Vec<u64> = (0..16).map(|x| x * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_inputs() {
        let out = parallel_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn heavy_closure_runs_once_per_input() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map((0..50).collect(), 4, |&x: &usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
        assert!(max_workers() >= default_workers());
    }
}
