//! Experiment scaffolding: topology scenarios, statistics, parallel
//! parameter sweeps, and table/CSV output.
//!
//! Every experiment binary in `ssr-bench` is a thin composition of this
//! crate's pieces: a [`scenario::Topology`] describes the physical network,
//! [`sweep`] fans seeds/parameters out over worker threads (crossbeam
//! scoped threads — each point is an independent simulation), [`stats`]
//! aggregates repetitions into mean ± 95% CI, and [`table`] renders the
//! paper-style rows (with optional CSV for plotting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod table;

pub use scenario::Topology;
pub use stats::{summarize_counts, Summary};
pub use sweep::parallel_map;
pub use table::{write_csv, Table};
