//! Experiment scaffolding: topology scenarios, statistics, the parallel
//! deterministic sweep orchestrator, and table/CSV output.
//!
//! Every experiment binary in `ssr-bench` is a thin composition of this
//! crate's pieces: a [`scenario::Topology`] describes the physical network,
//! the [`orchestrator`] enumerates the scenario × n × seed matrix and fans
//! the jobs out over a worker pool (each point is an independent, sealed
//! simulation; results are collected by job index so merged output bytes
//! never depend on worker count or OS scheduling — see docs/SWEEPS.md),
//! [`stats`] aggregates repetitions into mean ± 95% CI, and [`table`]
//! renders the paper-style rows (with optional CSV for plotting).
//!
//! Determinism contract: everything in this crate is a pure function of
//! its inputs plus an explicitly seeded [`ssr_types::Rng`]; the only
//! threads in the workspace live in [`orchestrator`], which guarantees
//! scheduling independence by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod orchestrator;
pub mod scenario;
pub mod stats;
pub mod table;

pub use orchestrator::{default_workers, parallel_map, run_matrix, Job, Matrix, SweepOutcome};
pub use scenario::Topology;
pub use stats::{summarize_counts, Summary};
pub use table::{write_csv, Table};
