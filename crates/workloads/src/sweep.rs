//! Parallel parameter sweeps.
//!
//! Every sweep point (a topology size, a seed, a protocol variant) is an
//! independent simulation, so the experiments parallelize embarrassingly
//! over std scoped threads. Results come back in input order, which
//! keeps the printed tables deterministic regardless of scheduling.

/// Applies `f` to every input on a pool of `workers` threads, returning
/// outputs in input order. `f` must be `Sync` (it is shared across
/// workers); inputs are handed out atomically.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return inputs.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
    let inputs = &inputs;
    let f = &f;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(&inputs[i]))).expect("collector alive");
            });
        }
        drop(tx);
    });
    let mut indexed: Vec<(usize, O)> = rx.into_iter().collect();
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, o)| o).collect()
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), 8, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_inputs() {
        let out = parallel_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn heavy_closure_runs_once_per_input() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out = parallel_map((0..50).collect(), 4, |&x: &usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }
}
