//! Summary statistics over repeated simulation runs.

/// Aggregate of a sample set: mean, standard deviation, extremes, and a
/// normal-approximation 95% confidence interval.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; empty input gives all zeros.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }

    /// `"mean ± ci"` with the given precision.
    pub fn fmt(&self, decimals: usize) -> String {
        format!("{:.d$} ± {:.d$}", self.mean, self.ci95(), d = decimals)
    }
}

/// Convenience: summary over an iterator of unsigned counts.
pub fn summarize_counts(counts: impl IntoIterator<Item = u64>) -> Summary {
    let v: Vec<f64> = counts.into_iter().map(|c| c as f64).collect();
    Summary::of(&v)
}

/// Percentile (nearest-rank) of a sample set; `q` in `[0, 100]`.
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Least-squares slope of `y` against `x` — used to report empirical growth
/// exponents (fit of `log y` vs `log n` distinguishes linear from polylog
/// convergence in E4/E5).
pub fn slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if x.len() < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - 1.2909944487358056).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn fmt_contains_plus_minus() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(s.fmt(1).contains('±'));
    }

    #[test]
    fn counts_helper() {
        let s = summarize_counts([2u64, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 50.0), 3.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        assert_eq!(percentile(&mut v, 1.0), 1.0);
        assert_eq!(percentile(&mut [][..].to_vec(), 50.0), 0.0);
    }

    #[test]
    fn slope_of_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        assert!((slope(&x, &y) - 2.0).abs() < 1e-12);
        assert_eq!(slope(&[1.0], &[2.0]), 0.0);
        assert_eq!(slope(&[2.0, 2.0], &[1.0, 5.0]), 0.0);
    }
}
