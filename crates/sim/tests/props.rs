//! Property-based tests for the simulator's core guarantees: event
//! ordering, deterministic replay, and message conservation.

use proptest::prelude::*;
use ssr_graph::{generators, Graph};
use ssr_sim::event::{EventKind, EventQueue};
use ssr_sim::{Ctx, LinkConfig, Protocol, Simulator, Time};
use ssr_types::Rng;

#[derive(Clone)]
struct Gossip {
    fanout_left: u32,
    seen: u64,
}

#[derive(Clone, Debug)]
struct Token(u64);

impl Protocol for Gossip {
    type Msg = Token;
    fn on_init(&mut self, ctx: &mut Ctx<'_, Token>) {
        if self.fanout_left > 0 {
            ctx.broadcast(Token(1));
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: usize, msg: Token) {
        self.seen = self.seen.wrapping_mul(31).wrapping_add(msg.0);
        if self.fanout_left > 0 {
            self.fanout_left -= 1;
            ctx.broadcast(Token(msg.0 + 1));
        }
    }
    fn reset(&mut self) {
        self.seen = 0;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_queue_pops_in_time_then_fifo_order(times in proptest::collection::vec(0u64..100, 1..200)) {
        let mut q: EventQueue<()> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time(t), EventKind::Timer { node: i, token: 0 }, i as u64);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        // FIFO among equal timestamps == insertion index increases
        let mut per_time_last: std::collections::HashMap<u64, usize> = Default::default();
        while let Some(ev) = q.pop() {
            popped += 1;
            if let Some((lt, _)) = last {
                prop_assert!(ev.at.ticks() >= lt);
            }
            if let EventKind::Timer { node, .. } = ev.kind {
                if let Some(&prev) = per_time_last.get(&ev.at.ticks()) {
                    prop_assert!(node > prev, "FIFO violated at t={}", ev.at.ticks());
                }
                per_time_last.insert(ev.at.ticks(), node);
                last = Some((ev.at.ticks(), node));
            }
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn replay_is_deterministic(seed: u64, n in 4usize..40, p in 0.05f64..0.3, fanout in 1u32..4) {
        let run = || {
            let mut rng = Rng::new(seed);
            let mut g: Graph = generators::gnp(n, p, &mut rng);
            generators::ensure_connected(&mut g, &mut rng);
            let protocols = vec![Gossip { fanout_left: fanout, seen: 0 }; n];
            let mut sim = Simulator::new(g, protocols, LinkConfig::jittered(1, 3), seed);
            sim.run_to_quiescence(100_000);
            let states: Vec<u64> = sim.protocols().iter().map(|p| p.seen).collect();
            (states, sim.metrics().counter("tx.total"), sim.now())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn no_loss_means_rx_equals_tx(seed: u64, n in 4usize..30) {
        let mut rng = Rng::new(seed);
        let mut g: Graph = generators::gnp(n, 0.2, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let protocols = vec![Gossip { fanout_left: 2, seen: 0 }; n];
        let mut sim = Simulator::new(g, protocols, LinkConfig::ideal(), seed);
        let outcome = sim.run_to_quiescence(100_000);
        prop_assert!(outcome.is_quiescent());
        prop_assert_eq!(sim.metrics().counter("rx.total"), sim.metrics().counter("tx.total"));
    }

    #[test]
    fn lossy_links_conserve_messages(seed: u64, n in 4usize..30, drop in 0.05f64..0.5) {
        let mut rng = Rng::new(seed);
        let mut g: Graph = generators::gnp(n, 0.2, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let protocols = vec![Gossip { fanout_left: 2, seen: 0 }; n];
        let mut sim = Simulator::new(g, protocols, LinkConfig::lossy(drop), seed);
        sim.run_to_quiescence(100_000);
        let m = sim.metrics();
        // every transmission is delivered, dropped at send, or lost in flight
        prop_assert_eq!(
            m.counter("tx.total"),
            m.counter("rx.total") + m.counter("tx.dropped") + m.counter("tx.lost_in_flight")
        );
    }
}
