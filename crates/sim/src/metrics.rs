//! Simulation metrics: counters, gauges, log-bucketed histograms, and
//! periodic time-series snapshots.
//!
//! Experiment E6 ("flooding cost") is a message-accounting experiment: it
//! compares how many per-link transmissions each bootstrap mechanism needs,
//! broken down by message kind. The simulator increments these counters on
//! every hop; protocols can add their own counters, gauge samples, and
//! histogram observations.
//!
//! # Canonical key namespaces
//!
//! This is the one place the metric-name contract is written down; the
//! simulator, the protocol crates, and the `obs` tooling all follow it.
//!
//! | prefix     | written by      | meaning                                          |
//! |------------|-----------------|--------------------------------------------------|
//! | `tx.*`     | simulator       | link-layer transmission outcomes: `tx.total` (every hop handed to the link layer, duplicates included), `tx.dropped` (link loss), `tx.lost_in_flight` (endpoint died / link vanished mid-flight), `tx.dup` (adversarial duplications), `tx.reordered` (bounded-delay reorderings) |
//! | `rx.*`     | simulator       | deliveries to protocols: `rx.total`              |
//! | `msg.*`    | simulator       | per-kind transmission counts from [`crate::Protocol::kind`]; **`counter_sum("msg.")` always equals `tx.total`** (kinds are counted at transmit time, before loss sampling) |
//! | `fault.*`  | simulator       | applied faults: `fault.crash`, `fault.join`, `fault.join_dead_link` (requested link to a down peer), `fault.link_down`, `fault.link_up`, `fault.partition` / `fault.partition_cut` (severed cross-group edges), `fault.heal` / `fault.heal_link` (restored edges) |
//! | `probe.*`  | probe layer     | observer-side counters (e.g. `probe.samples`)    |
//! | other      | protocols/exps  | protocol- or experiment-specific counters, ideally `"<crate>."`-prefixed |
//!
//! Histogram keys live in their own registry with the same style; the
//! conventional ones are `route.len` (physical hops), `route.stretch_milli`
//! (stretch × 1000, so the log buckets resolve ratios near 1), `state.entries`
//! (per-node state size), and `latency.ticks` (message latency).
//!
//! The machine-readable form of this table lives in [`crate::registry`];
//! `ssr-lint`'s `metric-registry` rule checks every metric-key literal in
//! the workspace against it, so a new key must be added there (or under an
//! open prefix family like `msg.*`) before it will pass CI.

use std::collections::BTreeMap;

/// Counter/gauge/histogram registry for one simulation run.
///
/// Keys are static strings so that protocols can use literal message-kind
/// names without allocation. A `BTreeMap` keeps report output sorted and
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    /// min/max/sum/count per gauge, enough for mean and extremes.
    gauges: BTreeMap<&'static str, GaugeStats>,
    /// Log-bucketed value distributions.
    hists: BTreeMap<&'static str, Histogram>,
    /// Periodic counter/gauge snapshots (see [`Metrics::sample_series`]).
    series: Vec<SeriesPoint>,
}

/// Aggregate statistics of a sampled gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeStats {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of samples.
    pub sum: f64,
    /// Number of samples.
    pub count: u64,
}

impl GaugeStats {
    const EMPTY: GaugeStats = GaugeStats {
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
        sum: 0.0,
        count: 0,
    };

    fn observe(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per bit
/// length of a `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Merging is bucketwise addition, so it is associative
/// and commutative, and percentile estimates are exact up to bucket
/// resolution (the estimate always lands in the same bucket as the
/// nearest-rank exact percentile).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `v` falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` of bucket `i` (bucket 0 is the
    /// degenerate `[0, 1)`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate for `q` in `[0, 100]`, reported as
    /// the lower bound of the bucket holding the rank (clamped into the
    /// observed `[min, max]` so single-bucket distributions report exact
    /// extremes). `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, _) = Self::bucket_bounds(i);
                return Some(lo.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one (bucketwise).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)` with `[lo, hi)` value bounds.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

/// One periodic snapshot of all counters and gauge means.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Simulated time of the snapshot.
    pub tick: u64,
    /// All counters at that time, in sorted key order.
    pub counters: Vec<(&'static str, u64)>,
    /// All gauge means at that time, in sorted key order.
    pub gauges: Vec<(&'static str, f64)>,
}

/// One aligned point of a cross-run series merge: per-key mean over the
/// runs that had a point at this index.
#[derive(Clone, Debug)]
pub struct MergedSeriesPoint {
    /// Snapshot time (taken from the first run; equal across runs when all
    /// were sampled at the same interval).
    pub tick: u64,
    /// Number of runs contributing to this point.
    pub runs: u64,
    /// Mean counter values across the contributing runs, sorted by key.
    pub counters: Vec<(&'static str, f64)>,
}

/// Merges same-interval series from repeated runs (different seeds)
/// pointwise: index `i` of the output averages index `i` of every input
/// that is long enough. Deterministic — inputs and key sets are iterated in
/// a fixed order.
pub fn merge_series(runs: &[&[SeriesPoint]]) -> Vec<MergedSeriesPoint> {
    let longest = runs.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(longest);
    for i in 0..longest {
        let mut acc: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        let mut tick = 0u64;
        let mut contributing = 0u64;
        for run in runs {
            let Some(p) = run.get(i) else { continue };
            if contributing == 0 {
                tick = p.tick;
            }
            contributing += 1;
            for &(k, v) in &p.counters {
                let e = acc.entry(k).or_insert((0.0, 0));
                e.0 += v as f64;
                e.1 += 1;
            }
        }
        out.push(MergedSeriesPoint {
            tick,
            runs: contributing,
            counters: acc
                .into_iter()
                .map(|(k, (sum, n))| (k, sum / n.max(1) as f64))
                .collect(),
        });
    }
    out
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Increments counter `key` by one.
    #[inline]
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum over all counters whose name starts with `prefix` — e.g. all
    /// `"msg."`-prefixed kinds for a total message count.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Records one sample of gauge `key`.
    pub fn observe(&mut self, key: &'static str, value: f64) {
        self.gauges
            .entry(key)
            .or_insert(GaugeStats::EMPTY)
            .observe(value);
    }

    /// Statistics of gauge `key`, if any samples were recorded.
    pub fn gauge(&self, key: &str) -> Option<GaugeStats> {
        self.gauges.get(key).copied()
    }

    /// Records one histogram observation under `key`.
    #[inline]
    pub fn observe_hist(&mut self, key: &'static str, value: u64) {
        self.hists.entry(key).or_default().observe(value);
    }

    /// Merges a pre-aggregated histogram into the one under `key` — used
    /// when a subsystem (e.g. the causal ledger) maintains its own
    /// [`Histogram`] and mirrors it into the registry at summary time.
    pub fn merge_hist(&mut self, key: &'static str, h: &Histogram) {
        self.hists.entry(key).or_default().merge(h);
    }

    /// The histogram under `key`, if any observations were recorded.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// All histograms in sorted key order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// All counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, GaugeStats)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Appends a snapshot of every counter and gauge mean to the run's
    /// time series. The simulator calls this on a fixed tick interval when
    /// sampling is enabled (see `Simulator::sample_metrics_every`).
    pub fn sample_series(&mut self, tick: u64) {
        let counters: Vec<(&'static str, u64)> =
            self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        let gauges: Vec<(&'static str, f64)> =
            self.gauges.iter().map(|(&k, g)| (k, g.mean())).collect();
        self.series.push(SeriesPoint {
            tick,
            counters,
            gauges,
        });
    }

    /// The recorded time series, in sampling order.
    pub fn series(&self) -> &[SeriesPoint] {
        &self.series
    }

    /// Merges another registry into this one (used when aggregating
    /// repeated runs): counters and histogram buckets add, gauges combine.
    /// Time series are **not** concatenated — cross-run series belong to
    /// [`merge_series`], which aligns them by sample index instead.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(GaugeStats::EMPTY);
            e.min = e.min.min(g.min);
            e.max = e.max.max(g.max);
            e.sum += g.sum;
            e.count += g.count;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msg.notify");
        m.add("msg.notify", 4);
        m.incr("msg.ack");
        assert_eq!(m.counter("msg.notify"), 5);
        assert_eq!(m.counter("msg.ack"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn prefix_sum() {
        let mut m = Metrics::new();
        m.add("msg.a", 2);
        m.add("msg.b", 3);
        m.add("other", 100);
        assert_eq!(m.counter_sum("msg."), 5);
    }

    #[test]
    fn gauges_track_min_max_mean() {
        let mut m = Metrics::new();
        for v in [1.0, 2.0, 3.0] {
            m.observe("state", v);
        }
        let g = m.gauge("state").unwrap();
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 3.0);
        assert!((g.mean() - 2.0).abs() < 1e-12);
        assert!(m.gauge("missing").is_none());
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.add("msg.x", 1);
        a.observe("g", 1.0);
        a.observe_hist("h", 4);
        let mut b = Metrics::new();
        b.add("msg.x", 2);
        b.observe("g", 5.0);
        b.observe_hist("h", 900);
        a.merge(&b);
        assert_eq!(a.counter("msg.x"), 3);
        let g = a.gauge("g").unwrap();
        assert_eq!(g.count, 2);
        assert_eq!(g.max, 5.0);
        let h = a.hist("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(900));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo < hi.max(1));
            assert_eq!(Histogram::bucket_index(lo), i);
        }
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let mut h = Histogram::new();
        assert!(h.percentile(50.0).is_none());
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 22.0).abs() < 1e-12);
        // ranks: p50 → 3rd smallest = 3, bucket [2,4) → lower bound 2
        assert_eq!(h.percentile(50.0), Some(2));
        // p100 → 100, bucket [64,128) → lower bound 64
        assert_eq!(h.percentile(100.0), Some(64));
        // p0 clamps to rank 1 → value 1
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    fn histogram_merge_matches_bulk() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.observe(v * v);
            } else {
                b.observe(v * v);
            }
            all.observe(v * v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn series_snapshots_accumulate() {
        let mut m = Metrics::new();
        m.incr("tx.total");
        m.sample_series(10);
        m.add("tx.total", 4);
        m.observe("g", 2.0);
        m.sample_series(20);
        let s = m.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].tick, 10);
        assert_eq!(s[0].counters, vec![("tx.total", 1)]);
        assert_eq!(s[1].counters, vec![("tx.total", 5)]);
        assert_eq!(s[1].gauges, vec![("g", 2.0)]);
    }

    #[test]
    fn merged_series_averages_pointwise() {
        let run = |scale: u64| -> Vec<SeriesPoint> {
            (1..=3)
                .map(|i| SeriesPoint {
                    tick: i * 10,
                    counters: vec![("tx.total", i * scale)],
                    gauges: vec![],
                })
                .collect()
        };
        let (a, b) = (run(2), run(4));
        let merged = merge_series(&[&a, &b]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].tick, 10);
        assert_eq!(merged[0].runs, 2);
        // means of (2,4), (4,8), (6,12)
        assert_eq!(merged[0].counters, vec![("tx.total", 3.0)]);
        assert_eq!(merged[2].counters, vec![("tx.total", 9.0)]);
    }
}
