//! Simulation metrics.
//!
//! Experiment E6 ("flooding cost") is a message-accounting experiment: it
//! compares how many per-link transmissions each bootstrap mechanism needs,
//! broken down by message kind. The simulator increments these counters on
//! every hop; protocols can add their own counters and gauge samples.

use std::collections::BTreeMap;

/// Counter/gauge registry for one simulation run.
///
/// Keys are static strings so that protocols can use literal message-kind
/// names without allocation. A `BTreeMap` keeps report output sorted and
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    /// min/max/sum/count per gauge, enough for mean and extremes.
    gauges: BTreeMap<&'static str, GaugeStats>,
}

/// Aggregate statistics of a sampled gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeStats {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of samples.
    pub sum: f64,
    /// Number of samples.
    pub count: u64,
}

impl GaugeStats {
    fn observe(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Increments counter `key` by one.
    #[inline]
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum over all counters whose name starts with `prefix` — e.g. all
    /// `"msg."`-prefixed kinds for a total message count.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Records one sample of gauge `key`.
    pub fn observe(&mut self, key: &'static str, value: f64) {
        self.gauges
            .entry(key)
            .or_insert(GaugeStats {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                sum: 0.0,
                count: 0,
            })
            .observe(value);
    }

    /// Statistics of gauge `key`, if any samples were recorded.
    pub fn gauge(&self, key: &str) -> Option<GaugeStats> {
        self.gauges.get(key).copied()
    }

    /// All counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another registry into this one (used when aggregating
    /// repeated runs).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(GaugeStats {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                sum: 0.0,
                count: 0,
            });
            e.min = e.min.min(g.min);
            e.max = e.max.max(g.max);
            e.sum += g.sum;
            e.count += g.count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msg.notify");
        m.add("msg.notify", 4);
        m.incr("msg.ack");
        assert_eq!(m.counter("msg.notify"), 5);
        assert_eq!(m.counter("msg.ack"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn prefix_sum() {
        let mut m = Metrics::new();
        m.add("msg.a", 2);
        m.add("msg.b", 3);
        m.add("other", 100);
        assert_eq!(m.counter_sum("msg."), 5);
    }

    #[test]
    fn gauges_track_min_max_mean() {
        let mut m = Metrics::new();
        for v in [1.0, 2.0, 3.0] {
            m.observe("state", v);
        }
        let g = m.gauge("state").unwrap();
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 3.0);
        assert!((g.mean() - 2.0).abs() < 1e-12);
        assert!(m.gauge("missing").is_none());
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.add("msg.x", 1);
        a.observe("g", 1.0);
        let mut b = Metrics::new();
        b.add("msg.x", 2);
        b.observe("g", 5.0);
        a.merge(&b);
        assert_eq!(a.counter("msg.x"), 3);
        let g = a.gauge("g").unwrap();
        assert_eq!(g.count, 2);
        assert_eq!(g.max, 5.0);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
    }
}
