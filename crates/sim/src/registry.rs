//! The canonical metric-name registry.
//!
//! The [`crate::metrics`] module documents the key namespaces in prose; this
//! module is the same contract in machine-readable form, so tooling can
//! check conformance. `ssr-lint`'s `metric-registry` rule resolves every
//! string literal passed to a counter/gauge/histogram API against this
//! table: a typo'd key fails CI instead of silently forking a new series
//! that no dashboard or `obs` report ever aggregates.
//!
//! Adding a metric is a two-step change by design: register the key here
//! (with the namespace docs in [`crate::metrics`] when it opens a new
//! family), then use it. The registry tests keep the table sorted and
//! well-formed.

/// Every canonical counter and gauge key, sorted.
///
/// Counters and gauges share one namespace (a key is only ever used as one
/// of the two); histogram keys live in [`HISTOGRAMS`].
pub const KEYS: &[&str] = &[
    "chaos.potential",
    "fault.crash",
    "fault.heal",
    "fault.heal_link",
    "fault.join",
    "fault.join_dead_link",
    "fault.link_down",
    "fault.link_up",
    "fault.partition",
    "fault.partition_cut",
    "fwd.bad_trace",
    "fwd.broken",
    "fwd.misrouted",
    "fwd.no_path",
    "fwd.no_route",
    "fwd.truncated",
    "fwd.ttl_expired",
    "fwd.unexpected",
    "probe.delivered",
    "probe.fired",
    "probe.invariant.potential_rise",
    "probe.invariant.union_disconnected",
    "probe.locally_consistent",
    "probe.samples",
    "probe.stuck",
    "probe.watchdog_frozen",
    "prov.roots",
    "prov.wasted",
    "route.attempts",
    "route.delivered",
    "runs.converged",
    "runs.total",
    "rx.total",
    "rx.wasted",
    "tx.dropped",
    "tx.dup",
    "tx.lost_in_flight",
    "tx.reordered",
    "tx.total",
];

/// Every canonical histogram key, sorted.
pub const HISTOGRAMS: &[&str] = &[
    "chaos.recovery_msgs",
    "chaos.recovery_ticks",
    "latency.ticks",
    "probe.pending",
    "prov.cascade",
    "prov.depth",
    "rounds.to_line",
    "route.len",
    "route.stretch_milli",
    "state.entries",
    "state.peak_degree",
];

/// Open families: any key under these prefixes is canonical without being
/// enumerated. `msg.*` is open because the per-kind transmission counters
/// are derived from [`crate::Protocol::kind`] at transmit time — the set of
/// kinds belongs to the protocols, not to this registry.
pub const OPEN_PREFIXES: &[&str] = &["msg."];

/// `true` iff `key` may be written to (or read from) a metrics registry:
/// an enumerated counter/gauge/histogram key or a member of an open family.
pub fn is_canonical_key(key: &str) -> bool {
    KEYS.binary_search(&key).is_ok()
        || HISTOGRAMS.binary_search(&key).is_ok()
        || OPEN_PREFIXES.iter().any(|p| key.starts_with(p))
}

/// `true` iff `prefix` is a valid argument to a prefix-sum query
/// ([`crate::Metrics::counter_sum`]): an open family, or a prefix of at
/// least one enumerated key.
pub fn is_canonical_prefix(prefix: &str) -> bool {
    OPEN_PREFIXES.contains(&prefix)
        || KEYS.iter().any(|k| k.starts_with(prefix))
        || HISTOGRAMS.iter().any(|k| k.starts_with(prefix))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_unique(table: &[&str]) {
        for w in table.windows(2) {
            assert!(
                w[0] < w[1],
                "out of order or duplicate: {} / {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn tables_are_sorted_and_unique() {
        sorted_unique(KEYS);
        sorted_unique(HISTOGRAMS);
        sorted_unique(OPEN_PREFIXES);
    }

    #[test]
    fn keys_are_namespaced() {
        for k in KEYS.iter().chain(HISTOGRAMS) {
            assert!(
                k.contains('.'),
                "{k}: canonical keys are namespaced as family.name"
            );
            assert!(!k.starts_with('.') && !k.ends_with('.'), "{k}");
        }
        for p in OPEN_PREFIXES {
            assert!(p.ends_with('.'), "{p}: open families end with the dot");
        }
    }

    #[test]
    fn no_key_shadows_an_open_family() {
        for k in KEYS.iter().chain(HISTOGRAMS) {
            assert!(
                !OPEN_PREFIXES.iter().any(|p| k.starts_with(p)),
                "{k} is already covered by an open prefix"
            );
        }
    }

    #[test]
    fn canonical_lookups() {
        assert!(is_canonical_key("tx.total"));
        assert!(is_canonical_key("route.len"));
        assert!(is_canonical_key("msg.anything"));
        assert!(!is_canonical_key("tx.totall"));
        assert!(!is_canonical_key("unregistered"));
        assert!(is_canonical_prefix("msg."));
        assert!(is_canonical_prefix("fault."));
        assert!(is_canonical_prefix("tx."));
        assert!(!is_canonical_prefix("bogus."));
    }

    /// The simulator's own counters must all be registered — guards against
    /// the registry drifting behind the code it describes.
    #[test]
    fn simulator_counters_are_registered() {
        for k in [
            "tx.total",
            "tx.dropped",
            "tx.lost_in_flight",
            "tx.dup",
            "tx.reordered",
            "rx.total",
            "rx.wasted",
            "prov.roots",
            "prov.wasted",
            "fault.crash",
            "fault.join",
            "fault.join_dead_link",
            "fault.link_down",
            "fault.link_up",
            "fault.partition",
            "fault.partition_cut",
            "fault.heal",
            "fault.heal_link",
            "probe.fired",
            "probe.watchdog_frozen",
        ] {
            assert!(is_canonical_key(k), "{k} missing from registry");
        }
    }
}
