//! Fault and churn injection.
//!
//! Linearization is *self-stabilizing*: it must converge from any initial
//! state, which in a running network means after any pattern of node
//! crashes, joins, and link failures. Experiment E8 schedules these faults
//! against a converged network and measures re-convergence without any
//! flooding. Faults are ordinary events in the queue, so fault timing is as
//! deterministic as everything else.

use ssr_types::Rng;

use crate::time::Time;

/// A topology change applied at a scheduled time.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Node stops: loses all links, drops all state, ignores traffic.
    Crash {
        /// The crashing node.
        node: usize,
    },
    /// A previously crashed (or fresh) node comes up with the given
    /// physical links. Links to dead endpoints are ignored.
    Join {
        /// The joining node.
        node: usize,
        /// Physical neighbors to connect to.
        links: Vec<usize>,
    },
    /// Remove one physical link (radio obstruction, mobility).
    LinkDown {
        /// One endpoint.
        a: usize,
        /// Other endpoint.
        b: usize,
    },
    /// Restore one physical link.
    LinkUp {
        /// One endpoint.
        a: usize,
        /// Other endpoint.
        b: usize,
    },
    /// Sever every physical link between distinct groups, splitting the
    /// topology into (at least) `groups.len()` components for a window.
    /// Nodes absent from every group keep all their links. The cut edges
    /// are remembered and restored by the next [`Fault::Heal`].
    Partition {
        /// Disjoint node groups; cross-group edges are cut.
        groups: Vec<Vec<usize>>,
    },
    /// Restore every link cut by partitions since the last heal (links
    /// whose endpoints are both alive; edges re-created by other means in
    /// the meantime are left untouched).
    Heal,
}

/// A scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledFault {
    /// When to apply.
    pub at: Time,
    /// What to apply.
    pub fault: Fault,
}

/// Generates a Poisson churn trace over `[start, end)`: crash events at rate
/// `crash_rate` (per tick), each followed `downtime` ticks later by a rejoin
/// with the node's original links. Targets are drawn uniformly from
/// `0..n`.
pub fn poisson_crash_rejoin_trace(
    n: usize,
    start: Time,
    end: Time,
    crash_rate: f64,
    downtime: u64,
    links_of: impl Fn(usize) -> Vec<usize>,
    rng: &mut Rng,
) -> Vec<ScheduledFault> {
    assert!(crash_rate > 0.0);
    let mut out = Vec::new();
    let mut t = start.ticks() as f64;
    loop {
        t += rng.exponential(crash_rate);
        let at = Time(t.ceil() as u64);
        if at >= end {
            break;
        }
        let node = rng.index(n);
        out.push(ScheduledFault {
            at,
            fault: Fault::Crash { node },
        });
        out.push(ScheduledFault {
            at: at + downtime,
            fault: Fault::Join {
                node,
                links: links_of(node),
            },
        });
    }
    out
}

/// Generates a trace of transient link failures: at rate `fail_rate`, a
/// uniformly random existing link goes down for `downtime` ticks.
pub fn poisson_link_flap_trace(
    edges: &[(usize, usize)],
    start: Time,
    end: Time,
    fail_rate: f64,
    downtime: u64,
    rng: &mut Rng,
) -> Vec<ScheduledFault> {
    assert!(fail_rate > 0.0);
    let mut out = Vec::new();
    if edges.is_empty() {
        return out;
    }
    let mut t = start.ticks() as f64;
    loop {
        t += rng.exponential(fail_rate);
        let at = Time(t.ceil() as u64);
        if at >= end {
            break;
        }
        let &(a, b) = &edges[rng.index(edges.len())];
        out.push(ScheduledFault {
            at,
            fault: Fault::LinkDown { a, b },
        });
        out.push(ScheduledFault {
            at: at + downtime,
            fault: Fault::LinkUp { a, b },
        });
    }
    out
}

/// Splits `0..n` into `k` disjoint random groups (each non-empty) for a
/// [`Fault::Partition`]. Group sizes are as equal as the division allows.
///
/// # Panics
/// Panics unless `1 <= k <= n`.
pub fn partition_groups(n: usize, k: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut nodes: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut nodes);
    let base = n / k;
    let extra = n % k;
    let mut groups = Vec::with_capacity(k);
    let mut off = 0;
    for g in 0..k {
        let len = base + usize::from(g < extra);
        groups.push(nodes[off..off + len].to_vec());
        off += len;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_trace_pairs_crash_with_rejoin() {
        let mut rng = Rng::new(1);
        let trace = poisson_crash_rejoin_trace(
            10,
            Time(0),
            Time(1000),
            0.05,
            20,
            |u| vec![(u + 1) % 10],
            &mut rng,
        );
        assert!(!trace.is_empty());
        assert_eq!(trace.len() % 2, 0);
        for pair in trace.chunks(2) {
            match (&pair[0].fault, &pair[1].fault) {
                (Fault::Crash { node: c }, Fault::Join { node: j, links }) => {
                    assert_eq!(c, j);
                    assert_eq!(pair[1].at - pair[0].at, 20);
                    assert_eq!(links, &vec![(c + 1) % 10]);
                }
                other => panic!("unexpected pair {other:?}"),
            }
        }
    }

    #[test]
    fn trace_respects_window() {
        let mut rng = Rng::new(2);
        let trace =
            poisson_crash_rejoin_trace(5, Time(100), Time(200), 0.2, 5, |_| vec![], &mut rng);
        for f in trace.chunks(2) {
            assert!(f[0].at >= Time(100) && f[0].at < Time(200));
        }
    }

    #[test]
    fn link_flap_trace_uses_existing_edges() {
        let mut rng = Rng::new(3);
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let trace = poisson_link_flap_trace(&edges, Time(0), Time(500), 0.1, 10, &mut rng);
        assert!(!trace.is_empty());
        for pair in trace.chunks(2) {
            match (&pair[0].fault, &pair[1].fault) {
                (Fault::LinkDown { a, b }, Fault::LinkUp { a: a2, b: b2 }) => {
                    assert!((a, b) == (a2, b2));
                    assert!(edges.contains(&(*a, *b)));
                }
                other => panic!("unexpected pair {other:?}"),
            }
        }
    }

    #[test]
    fn empty_edge_list_gives_empty_trace() {
        let mut rng = Rng::new(4);
        let trace = poisson_link_flap_trace(&[], Time(0), Time(100), 0.5, 1, &mut rng);
        assert!(trace.is_empty());
    }

    #[test]
    fn partition_groups_cover_all_nodes_disjointly() {
        let mut rng = Rng::new(6);
        for k in 1..=5 {
            let groups = partition_groups(11, k, &mut rng);
            assert_eq!(groups.len(), k);
            let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..11).collect::<Vec<_>>(), "k={k}");
            assert!(groups.iter().all(|g| !g.is_empty()));
            // balanced within one node
            let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn partition_groups_rejects_k_above_n() {
        let mut rng = Rng::new(7);
        partition_groups(3, 4, &mut rng);
    }

    #[test]
    fn rate_scales_event_count() {
        let mut rng = Rng::new(5);
        let slow =
            poisson_crash_rejoin_trace(10, Time(0), Time(5000), 0.01, 1, |_| vec![], &mut rng)
                .len();
        let fast =
            poisson_crash_rejoin_trace(10, Time(0), Time(5000), 0.1, 1, |_| vec![], &mut rng).len();
        assert!(fast > 3 * slow, "fast {fast} vs slow {slow}");
    }
}
