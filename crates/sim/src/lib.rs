//! A discrete-event network simulator.
//!
//! The paper evaluates routing-protocol bootstrap mechanisms in network
//! simulations; no offline Rust network-simulation framework exists, so this
//! crate is the substituted substrate (see DESIGN.md). It is deliberately a
//! *network-layer* simulator:
//!
//! * messages travel only between **physical neighbors** — a protocol can
//!   never teleport state across the network; SSR source routes and VRR path
//!   state must be forwarded hop by hop, and every per-link transmission is
//!   metered (that is what makes the flooding-cost experiment E6 honest);
//! * per-link latency, loss, duplication and bounded-delay reordering are
//!   configurable ([`link`]), globally or per link direction
//!   ([`Simulator::set_link_override`]);
//! * execution is fully deterministic for a given seed: the event queue
//!   breaks timestamp ties by insertion sequence, and all randomness flows
//!   from one [`ssr_types::Rng`];
//! * nodes can crash, join, lose links, and partition into components
//!   mid-run ([`faults`]), which is how the churn experiment E8 and the
//!   chaos experiment E11 exercise self-stabilization;
//! * a generic freeze [`watchdog`] classifies livelock /
//!   fixpoint-without-convergence instead of burning the tick budget;
//! * every event carries deterministic causal [`Provenance`], and an
//!   opt-in [`CausalLedger`] ([`ledger`]) attributes message cost per
//!   cause class and kind without perturbing the run
//!   (see `docs/PROFILING.md`).
//!
//! Protocols implement the [`Protocol`] trait and interact with the world
//! through a [`Ctx`] handed to each callback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod faults;
pub mod ledger;
pub mod link;
pub mod metrics;
pub mod registry;
pub mod sim;
pub mod time;
pub mod trace;
pub mod watchdog;

pub use event::{CauseClass, Provenance, QueueBackend};
pub use ledger::{CausalLedger, KindStats, NodeTally, ProvenanceSummary};
pub use link::LinkConfig;
pub use metrics::{merge_series, Histogram, Metrics, SeriesPoint};
pub use sim::{Ctx, ProbeView, Protocol, RunOutcome, Simulator};
pub use time::Time;
pub use trace::{TraceEvent, TraceSink};
pub use watchdog::{shared_watchdog, watchdog_probe, SharedWatchdog, Verdict, WatchdogState};
