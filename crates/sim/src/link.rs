//! Link models: per-hop latency, loss, duplication and reordering.
//!
//! The default — latency 1 tick, no loss — makes simulated time coincide
//! with the synchronous round model that the convergence results are stated
//! in. Jittered latency and loss are used by the robustness variants of the
//! experiments; duplication and bounded-delay reordering complete the
//! adversarial link model used by the chaos harness (linearization is
//! self-stabilizing, so it must converge under all of them). A
//! [`LinkConfig`] describes one *direction* of a link: the simulator applies
//! a global default but accepts per-direction overrides, so asymmetric loss
//! falls out naturally.

use ssr_types::Rng;

/// Per-hop latency model.
#[derive(Clone, Copy, Debug)]
pub enum Latency {
    /// Every hop takes exactly this many ticks (≥ 1).
    Fixed(u64),
    /// Uniform in `[min, max]` ticks.
    Uniform {
        /// Minimum per-hop latency (≥ 1).
        min: u64,
        /// Maximum per-hop latency.
        max: u64,
    },
}

impl Latency {
    /// Draws a latency sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        match *self {
            Latency::Fixed(t) => t.max(1),
            Latency::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.range(lo, hi + 1)
            }
        }
    }
}

/// Configuration of one link direction (or, as the simulator default, of
/// every link in the network).
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Per-hop latency model.
    pub latency: Latency,
    /// Probability that a transmission is lost (per hop, i.i.d.).
    pub drop_prob: f64,
    /// Probability that a transmission is duplicated (per hop, i.i.d.).
    /// Each copy is metered and samples loss/latency independently.
    pub dup_prob: f64,
    /// Probability that a transmission is delayed by an extra uniform
    /// `1..=reorder_window` ticks — the bounded-delay adversary. With
    /// FIFO tie-breaking this is what makes later sends overtake
    /// earlier ones.
    pub reorder_prob: f64,
    /// Maximum extra delay (in ticks) a reordered transmission suffers.
    pub reorder_window: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Latency::Fixed(1),
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: 0,
        }
    }
}

impl LinkConfig {
    /// The synchronous-round model: unit latency, no loss.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A lossy network with the given drop probability.
    pub fn lossy(drop_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0,1)"
        );
        LinkConfig {
            drop_prob,
            ..Self::default()
        }
    }

    /// Jittered latency in `[min, max]`, no loss.
    pub fn jittered(min: u64, max: u64) -> Self {
        LinkConfig {
            latency: Latency::Uniform { min, max },
            ..Self::default()
        }
    }

    /// Returns `self` with the given duplication probability.
    pub fn with_dup(mut self, dup_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dup_prob),
            "duplication probability must be in [0,1)"
        );
        self.dup_prob = dup_prob;
        self
    }

    /// Returns `self` with bounded-delay reordering: with probability
    /// `reorder_prob` a transmission is held back an extra uniform
    /// `1..=window` ticks.
    pub fn with_reorder(mut self, reorder_prob: f64, window: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&reorder_prob),
            "reorder probability must be in [0,1)"
        );
        assert!(window >= 1, "reorder window must be at least 1 tick");
        self.reorder_prob = reorder_prob;
        self.reorder_window = window;
        self
    }

    /// Returns `self` with the given loss probability (keeps everything
    /// else — composes with [`LinkConfig::with_dup`]/[`LinkConfig::with_reorder`]).
    pub fn with_drop(mut self, drop_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0,1)"
        );
        self.drop_prob = drop_prob;
        self
    }

    /// The full adversary: loss, duplication and bounded-delay reordering
    /// at once.
    pub fn adversarial(drop_prob: f64, dup_prob: f64, reorder_prob: f64, window: u64) -> Self {
        Self::default()
            .with_drop(drop_prob)
            .with_dup(dup_prob)
            .with_reorder(reorder_prob, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_never_zero() {
        let mut rng = Rng::new(1);
        assert_eq!(Latency::Fixed(0).sample(&mut rng), 1);
        assert_eq!(Latency::Fixed(3).sample(&mut rng), 3);
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = Rng::new(2);
        let l = Latency::Uniform { min: 2, max: 5 };
        for _ in 0..500 {
            let s = l.sample(&mut rng);
            assert!((2..=5).contains(&s));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = Rng::new(3);
        let l = Latency::Uniform { min: 4, max: 4 };
        assert_eq!(l.sample(&mut rng), 4);
        // max < min saturates to min
        let l = Latency::Uniform { min: 4, max: 2 };
        assert_eq!(l.sample(&mut rng), 4);
    }

    #[test]
    fn presets() {
        let ideal = LinkConfig::ideal();
        assert_eq!(ideal.drop_prob, 0.0);
        let lossy = LinkConfig::lossy(0.1);
        assert!((lossy.drop_prob - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn lossy_rejects_certain_loss() {
        LinkConfig::lossy(1.0);
    }

    #[test]
    fn adversarial_composes_all_knobs() {
        let cfg = LinkConfig::adversarial(0.1, 0.2, 0.3, 8);
        assert!((cfg.drop_prob - 0.1).abs() < 1e-12);
        assert!((cfg.dup_prob - 0.2).abs() < 1e-12);
        assert!((cfg.reorder_prob - 0.3).abs() < 1e-12);
        assert_eq!(cfg.reorder_window, 8);
        let quiet = LinkConfig::ideal();
        assert_eq!(quiet.dup_prob, 0.0);
        assert_eq!(quiet.reorder_prob, 0.0);
    }

    #[test]
    #[should_panic(expected = "reorder window")]
    fn zero_reorder_window_rejected() {
        let _ = LinkConfig::ideal().with_reorder(0.1, 0);
    }

    #[test]
    #[should_panic(expected = "duplication probability")]
    fn certain_duplication_rejected() {
        let _ = LinkConfig::ideal().with_dup(1.0);
    }
}
