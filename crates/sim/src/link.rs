//! Link models: per-hop latency and loss.
//!
//! The default — latency 1 tick, no loss — makes simulated time coincide
//! with the synchronous round model that the convergence results are stated
//! in. Jittered latency and loss are used by the robustness variants of the
//! experiments (linearization is self-stabilizing, so it must converge under
//! both).

use ssr_types::Rng;

/// Per-hop latency model.
#[derive(Clone, Copy, Debug)]
pub enum Latency {
    /// Every hop takes exactly this many ticks (≥ 1).
    Fixed(u64),
    /// Uniform in `[min, max]` ticks.
    Uniform {
        /// Minimum per-hop latency (≥ 1).
        min: u64,
        /// Maximum per-hop latency.
        max: u64,
    },
}

impl Latency {
    /// Draws a latency sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        match *self {
            Latency::Fixed(t) => t.max(1),
            Latency::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.range(lo, hi + 1)
            }
        }
    }
}

/// Configuration of every link in the network.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Per-hop latency model.
    pub latency: Latency,
    /// Probability that a transmission is lost (per hop, i.i.d.).
    pub drop_prob: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Latency::Fixed(1),
            drop_prob: 0.0,
        }
    }
}

impl LinkConfig {
    /// The synchronous-round model: unit latency, no loss.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A lossy network with the given drop probability.
    pub fn lossy(drop_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0,1)"
        );
        LinkConfig {
            latency: Latency::Fixed(1),
            drop_prob,
        }
    }

    /// Jittered latency in `[min, max]`, no loss.
    pub fn jittered(min: u64, max: u64) -> Self {
        LinkConfig {
            latency: Latency::Uniform { min, max },
            drop_prob: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_never_zero() {
        let mut rng = Rng::new(1);
        assert_eq!(Latency::Fixed(0).sample(&mut rng), 1);
        assert_eq!(Latency::Fixed(3).sample(&mut rng), 3);
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = Rng::new(2);
        let l = Latency::Uniform { min: 2, max: 5 };
        for _ in 0..500 {
            let s = l.sample(&mut rng);
            assert!((2..=5).contains(&s));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = Rng::new(3);
        let l = Latency::Uniform { min: 4, max: 4 };
        assert_eq!(l.sample(&mut rng), 4);
        // max < min saturates to min
        let l = Latency::Uniform { min: 4, max: 2 };
        assert_eq!(l.sample(&mut rng), 4);
    }

    #[test]
    fn presets() {
        let ideal = LinkConfig::ideal();
        assert_eq!(ideal.drop_prob, 0.0);
        let lossy = LinkConfig::lossy(0.1);
        assert!((lossy.drop_prob - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn lossy_rejects_certain_loss() {
        LinkConfig::lossy(1.0);
    }
}
