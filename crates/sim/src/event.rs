//! The event queue.
//!
//! A binary heap of timestamped events. Determinism matters more than
//! anything here: events with equal timestamps are delivered in insertion
//! order (a strictly increasing sequence number breaks ties), so a
//! simulation is a pure function of `(topology, protocols, seed)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// Deliver `msg` to `dst`, sent by physical neighbor `from`.
    Deliver {
        /// Receiving node index.
        dst: usize,
        /// Sending node index (a physical neighbor of `dst` at send time).
        from: usize,
        /// The protocol payload.
        msg: M,
    },
    /// Fire a protocol timer at `node` with an opaque `token`.
    Timer {
        /// Node whose timer fires.
        node: usize,
        /// Token the node passed to `Ctx::set_timer`.
        token: u64,
    },
    /// Apply a scheduled fault (crash/join/link change).
    Fault(crate::faults::Fault),
}

/// A timestamped queue entry.
#[derive(Clone, Debug)]
pub struct QueuedEvent<M> {
    /// Firing time.
    pub at: Time,
    /// Tie-break: insertion order.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue: earliest timestamp first, FIFO among equals.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<QueuedEvent<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize) -> EventKind<()> {
        EventKind::Timer { node, token: 0 }
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(Time(5), timer(5));
        q.push(Time(1), timer(1));
        q.push(Time(3), timer(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for node in 0..10 {
            q.push(Time(7), timer(node));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { node, .. } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(2), timer(0));
        q.push(Time(1), timer(1));
        assert_eq!(q.peek_time(), Some(Time(1)));
        assert_eq!(q.len(), 2);
    }
}
