//! The event queue: a deterministic pending-delivery wheel.
//!
//! Determinism matters more than anything here: events with equal
//! timestamps are delivered in insertion order, so a simulation is a pure
//! function of `(topology, protocols, seed)`.
//!
//! The default backend is a **tick wheel** — a `BTreeMap` from arrival tick
//! to a FIFO bucket of events (honoring the workspace's
//! determinism-collections rule). Compared to the binary heap it replaced,
//! the wheel
//!
//! * needs no global tie-break sequence number: FIFO order *within* a tick
//!   bucket is insertion order by construction;
//! * pops a whole tick's worth of events from one bucket instead of paying
//!   a heap sift per event (most events cluster on few ticks under the
//!   unit-latency round model);
//! * exposes the next occupied tick ([`EventQueue::next_tick`]) in O(1)
//!   amortized, which is what lets the run loops fast-forward across empty
//!   tick ranges instead of idling through them.
//!
//! The pre-wheel binary-heap implementation is retained as
//! [`QueueBackend::ReferenceHeap`], selectable only so equivalence tests
//! can prove byte-identical schedules (see
//! `tests/tests/perf_equivalence.rs`); production code always uses the
//! wheel.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::num::NonZeroU64;

use crate::time::Time;

/// Why a causal cascade exists: the protocol phase that originated (or
/// re-tagged) the lineage an event belongs to.
///
/// Protocol callbacks set the class via `Ctx::set_cause`; events queued
/// without an explicit override inherit the class of the event being
/// processed, so attribution flows along causal chains by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CauseClass {
    /// Rooted at a node's `on_init` — initial startup traffic.
    Bootstrap,
    /// Rooted at an applied fault: crash/join/link/partition repair work.
    FaultRepair,
    /// The hello identification sweep re-probing unidentified links.
    HelloSweep,
    /// The linearization machinery: notify/ack handshakes, retries,
    /// audits, and the teardowns they trigger.
    LinearizationStep,
    /// Data-plane greedy forwarding (routing probes).
    Routing,
}

impl CauseClass {
    /// Every cause class, in `Ord` order.
    pub const ALL: [CauseClass; 5] = [
        CauseClass::Bootstrap,
        CauseClass::FaultRepair,
        CauseClass::HelloSweep,
        CauseClass::LinearizationStep,
        CauseClass::Routing,
    ];

    /// Stable label used in traces, manifests and flame output.
    pub fn label(self) -> &'static str {
        match self {
            CauseClass::Bootstrap => "bootstrap",
            CauseClass::FaultRepair => "fault-repair",
            CauseClass::HelloSweep => "hello-sweep",
            CauseClass::LinearizationStep => "linearization-step",
            CauseClass::Routing => "routing",
        }
    }
}

/// Causal provenance carried by every queued simulator event.
///
/// Ids are dense, start at 1, and are assigned at enqueue time from a
/// single monotone counter, so two same-seed runs — on either queue
/// backend — assign byte-identical ids: enqueue order is already part of
/// the determinism contract. Message copies that are dropped by the link
/// layer still consume an id, so `Send`/`Lost` trace records always
/// carry one.
///
/// The queue itself carries only the 8-byte id; the rest of the stamp
/// lives in the simulator's side table, which exists only when a trace
/// sink or the causal ledger is attached — an uninstrumented run pays
/// one counter increment per event and nothing else. The stamp is still
/// kept small (`NonZeroU64` parent, `u32` depth, 32 bytes total with a
/// niche for `Option<Provenance>`, pinned by the layout test below)
/// because the instrumented path stores one per *pending* event and the
/// dispatch frame copies it per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Dense event id (enqueue order, starting at 1).
    pub id: u64,
    /// Id of the event being processed when this one was enqueued;
    /// `None` for roots (bootstrap actions and scheduled faults).
    pub parent: Option<NonZeroU64>,
    /// Id of the root event of this cascade (`id` itself for roots).
    pub root: u64,
    /// Causal depth: 0 for roots, parent's depth + 1 otherwise.
    pub depth: u32,
    /// The cause class this lineage is attributed to.
    pub cause: CauseClass,
}

impl Provenance {
    /// A root event: its own cascade, at depth 0.
    pub fn root(id: u64, cause: CauseClass) -> Self {
        Provenance {
            id,
            parent: None,
            root: id,
            depth: 0,
            cause,
        }
    }

    /// A child of `parent`, one level deeper, attributed to `cause`.
    pub fn child(parent: &Provenance, id: u64, cause: CauseClass) -> Self {
        debug_assert!(parent.id != 0, "provenance ids start at 1");
        Provenance {
            id,
            parent: NonZeroU64::new(parent.id),
            root: parent.root,
            depth: parent.depth + 1,
            cause,
        }
    }
}

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// Deliver `msg` to `dst`, sent by physical neighbor `from`.
    Deliver {
        /// Receiving node index.
        dst: usize,
        /// Sending node index (a physical neighbor of `dst` at send time).
        from: usize,
        /// The protocol payload.
        msg: M,
    },
    /// Fire a protocol timer at `node` with an opaque `token`.
    Timer {
        /// Node whose timer fires.
        node: usize,
        /// Token the node passed to `Ctx::set_timer`.
        token: u64,
    },
    /// Apply a scheduled fault (crash/join/link change).
    Fault(crate::faults::Fault),
}

/// A timestamped event as returned by [`EventQueue::pop`].
#[derive(Clone, Debug)]
pub struct QueuedEvent<M> {
    /// Firing time.
    pub at: Time,
    /// Payload.
    pub kind: EventKind<M>,
    /// Dense provenance id assigned at enqueue time. The full
    /// [`Provenance`] stamp is keyed by this id in the simulator's side
    /// table when instrumentation is attached.
    pub pid: u64,
}

/// Which scheduling structure backs an [`EventQueue`].
///
/// Both backends produce the *identical* event schedule — earliest tick
/// first, FIFO among events on the same tick. The heap is the pre-wheel
/// implementation, kept only so the equivalence tests can demonstrate
/// that, byte for byte, against real workloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// `BTreeMap<tick, bucket>` pending-delivery wheel (the default).
    #[default]
    TickWheel,
    /// The pre-wheel binary heap with a global insertion-sequence
    /// tie-break. Reference implementation for equivalence tests only.
    ReferenceHeap,
}

/// A heap entry of the reference backend: global insertion sequence breaks
/// timestamp ties.
#[derive(Clone, Debug)]
struct HeapEvent<M> {
    at: Time,
    seq: u64,
    kind: EventKind<M>,
    pid: u64,
}

impl<M> PartialEq for HeapEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for HeapEvent<M> {}

impl<M> Ord for HeapEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for HeapEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

enum Inner<M> {
    Wheel(BTreeMap<u64, VecDeque<(EventKind<M>, u64)>>),
    Heap {
        heap: BinaryHeap<HeapEvent<M>>,
        next_seq: u64,
    },
}

/// The event queue: earliest timestamp first, FIFO among equals.
pub struct EventQueue<M> {
    inner: Inner<M>,
    len: usize,
    peak_len: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::with_backend(QueueBackend::TickWheel)
    }
}

impl<M> EventQueue<M> {
    /// An empty tick-wheel queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue over an explicit [`QueueBackend`].
    pub fn with_backend(backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::TickWheel => Inner::Wheel(BTreeMap::new()),
            QueueBackend::ReferenceHeap => Inner::Heap {
                heap: BinaryHeap::new(),
                next_seq: 0,
            },
        };
        EventQueue {
            inner,
            len: 0,
            peak_len: 0,
        }
    }

    /// Schedules `kind` at time `at`, carrying provenance id `pid`.
    pub fn push(&mut self, at: Time, kind: EventKind<M>, pid: u64) {
        match &mut self.inner {
            Inner::Wheel(wheel) => {
                wheel.entry(at.ticks()).or_default().push_back((kind, pid));
            }
            Inner::Heap { heap, next_seq } => {
                let seq = *next_seq;
                *next_seq += 1;
                heap.push(HeapEvent { at, seq, kind, pid });
            }
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        let ev = match &mut self.inner {
            Inner::Wheel(wheel) => {
                let mut entry = wheel.first_entry()?;
                let tick = *entry.key();
                let bucket = entry.get_mut();
                let (kind, pid) = bucket.pop_front().expect("empty bucket left in wheel");
                if bucket.is_empty() {
                    entry.remove();
                }
                QueuedEvent {
                    at: Time(tick),
                    kind,
                    pid,
                }
            }
            Inner::Heap { heap, .. } => {
                let e = heap.pop()?;
                QueuedEvent {
                    at: e.at,
                    kind: e.kind,
                    pid: e.pid,
                }
            }
        };
        self.len -= 1;
        Some(ev)
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.next_tick().map(Time)
    }

    /// Earliest occupied tick, if any — the target the run loops
    /// fast-forward to across empty tick ranges.
    pub fn next_tick(&self) -> Option<u64> {
        match &self.inner {
            Inner::Wheel(wheel) => wheel.keys().next().copied(),
            Inner::Heap { heap, .. } => heap.peek().map(|e| e.at.ticks()),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime —
    /// the "peak queue depth" reported by the benchmark harness.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize) -> EventKind<()> {
        EventKind::Timer { node, token: 0 }
    }

    fn backends() -> [QueueBackend; 2] {
        [QueueBackend::TickWheel, QueueBackend::ReferenceHeap]
    }

    /// The stamp rides on every queued event; growing it inflates the
    /// whole wheel (and the uninstrumented perf baseline with it).
    #[test]
    fn provenance_stays_within_32_bytes() {
        assert!(std::mem::size_of::<Provenance>() <= 32);
        // the CauseClass niche keeps the frame Option free
        assert_eq!(
            std::mem::size_of::<Option<Provenance>>(),
            std::mem::size_of::<Provenance>()
        );
    }

    #[test]
    fn earliest_first() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time(5), timer(5), 0);
            q.push(Time(1), timer(1), 1);
            q.push(Time(3), timer(3), 2);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
            assert_eq!(order, vec![1, 3, 5], "{backend:?}");
        }
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            for node in 0..10 {
                q.push(Time(7), timer(node), node as u64);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Timer { node, .. } => node,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn peek_and_len() {
        for backend in backends() {
            let mut q: EventQueue<()> = EventQueue::with_backend(backend);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            assert_eq!(q.next_tick(), None);
            q.push(Time(2), timer(0), 0);
            q.push(Time(1), timer(1), 1);
            assert_eq!(q.peek_time(), Some(Time(1)));
            assert_eq!(q.next_tick(), Some(1));
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn peak_depth_is_a_high_water_mark() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..8 {
            q.push(Time(i), timer(0), i);
        }
        for _ in 0..8 {
            q.pop();
        }
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 8);
        q.push(Time(100), timer(0), 8);
        assert_eq!(q.peak_len(), 8, "peak must not reset");
    }

    /// The two backends must produce the same schedule on an interleaved
    /// push/pop workload — the invariant the integration-level equivalence
    /// test re-proves against full chaos scenarios.
    #[test]
    fn wheel_matches_reference_heap() {
        let mut wheel = EventQueue::with_backend(QueueBackend::TickWheel);
        let mut heap = EventQueue::with_backend(QueueBackend::ReferenceHeap);
        let mut rng = ssr_types::Rng::new(99);
        let mut log_w = Vec::new();
        let mut log_h = Vec::new();
        for round in 0..200u64 {
            let t = Time(rng.range(0, 50));
            wheel.push(t, timer(round as usize), round);
            heap.push(t, timer(round as usize), round);
            if rng.chance(0.4) {
                let (a, b) = (wheel.pop(), heap.pop());
                if let (Some(a), Some(b)) = (&a, &b) {
                    log_w.push((a.at.0, a.pid, format!("{:?}", a.kind)));
                    log_h.push((b.at.0, b.pid, format!("{:?}", b.kind)));
                }
            }
        }
        while let (Some(a), Some(b)) = (wheel.pop(), heap.pop()) {
            log_w.push((a.at.0, a.pid, format!("{:?}", a.kind)));
            log_h.push((b.at.0, b.pid, format!("{:?}", b.kind)));
        }
        assert!(wheel.is_empty() && heap.is_empty());
        assert_eq!(log_w, log_h);
    }
}
