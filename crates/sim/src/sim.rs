//! The simulator core: protocol trait, context, and event loop.

use std::collections::BTreeMap;

use ssr_graph::Graph;
use ssr_types::Rng;

use crate::event::{CauseClass, EventKind, EventQueue, Provenance, QueueBackend};
use crate::faults::Fault;
use crate::ledger::{CausalLedger, ProvenanceSummary};
use crate::link::LinkConfig;
use crate::metrics::Metrics;
use crate::time::Time;
use crate::trace::{TraceEvent, TraceSink};

/// A per-node protocol state machine.
///
/// One instance runs at every node. All interaction with the network goes
/// through the [`Ctx`]: a node can only message its current **physical
/// neighbors** — multi-hop dissemination (source routes, floods, path setup)
/// must be implemented as explicit per-hop forwarding, which is exactly what
/// the message-cost experiments meter.
pub trait Protocol: Sized {
    /// The protocol's message type.
    type Msg: Clone;

    /// Called once when the node starts (simulation start, or rejoin after a
    /// crash).
    fn on_init(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called for every delivered message. `from` is the physical neighbor
    /// that transmitted the final hop.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: usize, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when a physical link to `neighbor` appears (join/link-up).
    fn on_neighbor_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>, neighbor: usize) {
        let _ = (ctx, neighbor);
    }

    /// Called when a physical link to `neighbor` disappears (crash or
    /// link-down). Protocols should drop direct state derived from it.
    fn on_neighbor_down(&mut self, ctx: &mut Ctx<'_, Self::Msg>, neighbor: usize) {
        let _ = (ctx, neighbor);
    }

    /// Drops all protocol state — the node forgot everything (crash).
    /// Called before `on_init` when the node rejoins.
    fn reset(&mut self);

    /// Classifies a message for the metrics breakdown (e.g. `"notify"`,
    /// `"flood"`). Counted per link-layer transmission under
    /// `msg.<kind>`.
    fn kind(msg: &Self::Msg) -> &'static str {
        let _ = msg;
        "msg"
    }
}

/// Deferred side effects collected from a protocol callback. Each carries
/// the cause class in force when it was queued (see [`Ctx::set_cause`]).
enum Action<M> {
    Send {
        to: usize,
        msg: M,
        cause: CauseClass,
    },
    Timer {
        delay: u64,
        token: u64,
        cause: CauseClass,
    },
}

/// The world as seen from inside a protocol callback.
pub struct Ctx<'a, M> {
    /// The node this callback runs at.
    pub node: usize,
    now: Time,
    neighbors: &'a [usize],
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut Rng,
    metrics: &'a mut Metrics,
    trace: &'a TraceSink,
    cause: CauseClass,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The node's current physical neighbors (sorted by index).
    #[inline]
    pub fn neighbors(&self) -> &[usize] {
        self.neighbors
    }

    /// Queues `msg` for transmission to physical neighbor `to`.
    ///
    /// # Panics
    /// Panics if `to` is not currently a physical neighbor — protocols must
    /// not assume links they do not have.
    pub fn send(&mut self, to: usize, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.actions.push(Action::Send {
            to,
            msg,
            cause: self.cause,
        });
    }

    /// Queues `msg` to every physical neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for &to in self.neighbors {
            self.actions.push(Action::Send {
                to,
                msg: msg.clone(),
                cause: self.cause,
            });
        }
    }

    /// Schedules [`Protocol::on_timer`] with `token` after `delay` ticks
    /// (minimum 1).
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        self.actions.push(Action::Timer {
            delay: delay.max(1),
            token,
            cause: self.cause,
        });
    }

    /// The [`CauseClass`] that actions queued from here on are attributed
    /// to. The callback starts with the class inherited from the event
    /// being processed ([`CauseClass::Bootstrap`] for `on_init`,
    /// [`CauseClass::FaultRepair`] for fault-triggered callbacks).
    #[inline]
    pub fn cause(&self) -> CauseClass {
        self.cause
    }

    /// Re-tags the cause class for subsequently queued actions and returns
    /// the previous one, so protocol phases can save/restore around
    /// sub-steps. Affects only provenance attribution — never delivery
    /// order, metrics outside the `prov.*`/`rx.wasted` families, or RNG
    /// draws.
    #[inline]
    pub fn set_cause(&mut self, cause: CauseClass) -> CauseClass {
        std::mem::replace(&mut self.cause, cause)
    }

    /// The run's metrics registry.
    #[inline]
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// The run's deterministic RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Emits a trace annotation (no-op unless tracing is enabled).
    pub fn note(&mut self, text: impl Into<String>) {
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Note {
                at: self.now,
                node: self.node,
                text: text.into(),
            });
        }
    }
}

/// A read-only snapshot of the simulation handed to [probes](Simulator::add_probe),
/// plus mutable access to the metrics registry so probes can record
/// gauges, histograms and series samples.
///
/// Probes that scan all protocol state every firing (watchdog signatures,
/// ring classification, invariant audits) should gate the scan on
/// [`ProbeView::state_gen`]: if it equals the value seen at the previous
/// firing, *nothing* in the simulation changed in between — no protocol
/// callback ran and no fault was applied — so the previous scan result is
/// still exact and the O(n) rescan can be skipped. This is what makes
/// probe grids over long idle tick ranges cost O(1) per grid point instead
/// of O(n).
pub struct ProbeView<'a, P: Protocol> {
    /// Current simulated time.
    pub now: Time,
    /// Every node's protocol state, indexed by node.
    pub protocols: &'a [P],
    /// The physical topology (reflecting applied faults).
    pub topology: &'a Graph,
    /// Per-node liveness.
    pub alive: &'a [bool],
    /// The run's metrics registry (mutable: probes may record).
    pub metrics: &'a mut Metrics,
    /// The run's trace sink — probes (e.g. the freeze watchdog) may emit
    /// structured diagnostics into it.
    pub trace: &'a TraceSink,
    /// Number of events still queued.
    pub pending_events: usize,
    /// Total events processed so far.
    pub events_processed: u64,
    /// The **dirty-node set**: nodes whose protocol callbacks ran (or whose
    /// state was injected via [`Simulator::protocol_mut`]) since the
    /// previous probe batch, in first-activation order. Cleared after every
    /// batch of due probes fires, so probes sharing a grid point see the
    /// same set. Empty means no protocol state changed since the last
    /// firing of *any* probe — probes on one shared grid can use it for
    /// incremental work; probes on differing grids should gate on
    /// [`ProbeView::state_gen`] instead.
    pub dirty_nodes: &'a [usize],
    /// Total protocol callback invocations ("node activations") so far —
    /// the work metric reported by `exp_perf` alongside messages delivered.
    pub activations: u64,
    /// Monotone generation counter, bumped on every protocol callback,
    /// fault application, and experiment-side state injection. Equal values
    /// across two probe firings guarantee the simulation state (protocols,
    /// topology, liveness) is bit-for-bit unchanged between them.
    pub state_gen: u64,
}

/// A probe callback (boxed so heterogeneous observers can coexist).
type ProbeFn<P> = Box<dyn FnMut(&mut ProbeView<'_, P>)>;

/// A registered observer: fires every `every` ticks during the run loops.
struct Probe<P: Protocol> {
    every: u64,
    next_at: Time,
    f: ProbeFn<P>,
}

/// Why a run loop returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained — no protocol has anything left to do.
    Quiescent(Time),
    /// The time budget was exhausted with events still pending.
    Budget(Time),
}

impl RunOutcome {
    /// The time at which the loop stopped.
    pub fn time(self) -> Time {
        match self {
            RunOutcome::Quiescent(t) | RunOutcome::Budget(t) => t,
        }
    }

    /// `true` if the network went quiescent.
    pub fn is_quiescent(self) -> bool {
        matches!(self, RunOutcome::Quiescent(_))
    }
}

/// The discrete-event simulator.
///
/// Execution is **event-driven end to end**: pending work lives in a
/// deterministic tick-wheel [`EventQueue`], so quiescent nodes cost zero
/// work and the run loops fast-forward simulated time straight to the next
/// occupied tick (or the next probe-grid point, whichever is earlier)
/// instead of idling tick by tick. Alongside the wheel the simulator keeps
/// an **active-set ledger** — a per-batch dirty-node set plus monotone
/// activation/state-generation counters — which probes use to skip O(n)
/// state scans across idle ranges (see [`ProbeView::state_gen`]) and which
/// the benchmark harness reports as its work metrics
/// ([`Simulator::node_activations`], [`Simulator::messages_delivered`],
/// [`Simulator::peak_pending_events`]).
pub struct Simulator<P: Protocol> {
    topo: Graph,
    alive: Vec<bool>,
    protocols: Vec<P>,
    queue: EventQueue<P::Msg>,
    now: Time,
    cfg: LinkConfig,
    /// Per-direction link overrides: `(from, to)` → config. Directed, so
    /// asymmetric loss/latency is expressed by overriding one direction.
    link_overrides: BTreeMap<(usize, usize), LinkConfig>,
    /// Edges cut by the most recent `Fault::Partition`, restored by
    /// `Fault::Heal`.
    severed: Vec<(usize, usize)>,
    rng: Rng,
    metrics: Metrics,
    trace: TraceSink,
    nbr_buf: Vec<usize>,
    action_buf: Vec<Action<P::Msg>>,
    events_processed: u64,
    probes: Vec<Probe<P>>,
    /// `dirty[u]` — node `u` was dispatched since the last probe batch.
    dirty: Vec<bool>,
    /// Distinct dirty nodes in first-activation order (mirrors `dirty`).
    dirty_nodes: Vec<usize>,
    /// Total protocol callback invocations.
    activations: u64,
    /// Bumped on every dispatch, fault, and experiment-side injection.
    state_gen: u64,
    /// Messages actually delivered to a protocol (post loss/liveness).
    deliveries: u64,
    /// Next dense provenance id (enqueue order).
    next_prov: u64,
    /// Provenance of the event currently being processed; `None` during
    /// construction-time `on_init` dispatches, whose actions become roots.
    frame: Option<Provenance>,
    /// Full provenance stamps of *pending* events, keyed by id — present
    /// only when a trace sink or the causal ledger is attached. The queue
    /// itself carries just the 8-byte id, so the uninstrumented hot path
    /// pays one counter increment per event; entries are inserted at
    /// enqueue and removed at pop (or at link drop), keeping the table's
    /// size bounded by the queue depth.
    prov_meta: Option<BTreeMap<u64, Provenance>>,
    /// The causal ledger ([`Simulator::instrumented`]); `None` — costing
    /// one never-taken branch per record site — on the default path.
    ledger: Option<Box<CausalLedger>>,
}

impl<P: Protocol> Simulator<P> {
    /// Builds a simulator over `topo` with one protocol instance per node
    /// and runs every node's `on_init` at time 0 (in index order).
    ///
    /// # Panics
    /// Panics if `protocols.len() != topo.node_count()`.
    pub fn new(topo: Graph, protocols: Vec<P>, cfg: LinkConfig, seed: u64) -> Self {
        Self::with_trace(topo, protocols, cfg, seed, TraceSink::disabled())
    }

    /// Like [`Simulator::new`] with an explicit trace sink.
    pub fn with_trace(
        topo: Graph,
        protocols: Vec<P>,
        cfg: LinkConfig,
        seed: u64,
        trace: TraceSink,
    ) -> Self {
        Self::with_trace_backend(topo, protocols, cfg, seed, trace, QueueBackend::default())
    }

    /// Like [`Simulator::with_trace`] with an explicit [`QueueBackend`].
    ///
    /// Only equivalence tests should pass
    /// [`QueueBackend::ReferenceHeap`] — it re-runs a workload on the
    /// pre-wheel scheduling structure so the two schedules can be compared
    /// byte for byte. Everything else uses [`Simulator::new`] /
    /// [`Simulator::with_trace`], which select the tick wheel.
    pub fn with_trace_backend(
        topo: Graph,
        protocols: Vec<P>,
        cfg: LinkConfig,
        seed: u64,
        trace: TraceSink,
        backend: QueueBackend,
    ) -> Self {
        Self::build(topo, protocols, cfg, seed, trace, backend, false)
    }

    /// Like [`Simulator::with_trace_backend`] with the [`CausalLedger`]
    /// enabled from before the `on_init` dispatches, so even bootstrap
    /// sends are attributed. Instrumentation never samples the RNG and
    /// never reorders events: an instrumented run is byte-identical to an
    /// uninstrumented one in every other observable.
    pub fn instrumented(
        topo: Graph,
        protocols: Vec<P>,
        cfg: LinkConfig,
        seed: u64,
        trace: TraceSink,
        backend: QueueBackend,
    ) -> Self {
        Self::build(topo, protocols, cfg, seed, trace, backend, true)
    }

    fn build(
        topo: Graph,
        protocols: Vec<P>,
        cfg: LinkConfig,
        seed: u64,
        trace: TraceSink,
        backend: QueueBackend,
        instrumented: bool,
    ) -> Self {
        assert_eq!(
            protocols.len(),
            topo.node_count(),
            "one protocol instance per node required"
        );
        let n = topo.node_count();
        let observing = trace.enabled() || instrumented;
        let mut sim = Simulator {
            topo,
            alive: vec![true; n],
            protocols,
            queue: EventQueue::with_backend(backend),
            now: Time::ZERO,
            cfg,
            link_overrides: BTreeMap::new(),
            severed: Vec::new(),
            rng: Rng::new(seed),
            metrics: Metrics::new(),
            trace,
            nbr_buf: Vec::new(),
            action_buf: Vec::new(),
            events_processed: 0,
            probes: Vec::new(),
            dirty: vec![false; n],
            dirty_nodes: Vec::new(),
            activations: 0,
            state_gen: 0,
            deliveries: 0,
            next_prov: 1,
            frame: None,
            prov_meta: observing.then(BTreeMap::new),
            ledger: instrumented.then(|| Box::new(CausalLedger::new(n))),
        };
        for node in 0..n {
            sim.dispatch(node, |p, ctx| p.on_init(ctx));
        }
        sim
    }

    /// The causal ledger, when this simulator was built via
    /// [`Simulator::instrumented`].
    pub fn causal_ledger(&self) -> Option<&CausalLedger> {
        self.ledger.as_deref()
    }

    /// A mergeable snapshot of the causal ledger, when instrumented.
    pub fn causal_summary(&self) -> Option<ProvenanceSummary> {
        self.ledger.as_deref().map(CausalLedger::summary)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The physical topology (reflecting applied faults).
    pub fn topology(&self) -> &Graph {
        &self.topo
    }

    /// `true` if `node` is currently up.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Shared view of node `u`'s protocol state.
    pub fn protocol(&self, u: usize) -> &P {
        &self.protocols[u]
    }

    /// Mutable access to node `u`'s protocol state — for experiment-side
    /// *state injection* (e.g. starting from the paper's adversarial loopy
    /// or partitioned configurations). Protocol callbacks themselves never
    /// get this.
    ///
    /// The node is conservatively marked dirty and the state generation is
    /// bumped, so probes caching on [`ProbeView::state_gen`] never reuse a
    /// scan across an injection.
    pub fn protocol_mut(&mut self, u: usize) -> &mut P {
        self.mark_dirty(u);
        self.state_gen += 1;
        &mut self.protocols[u]
    }

    /// All protocol instances, indexed by node.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (for experiment-level annotations).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event queue over the run — the "peak
    /// queue depth" scenario metric in `BENCH_perf.json`.
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// Total protocol callback invocations so far ("node activations") —
    /// with [`Simulator::messages_delivered`], the work metric the
    /// benchmark harness reports instead of wall-clock ticks alone.
    pub fn node_activations(&self) -> u64 {
        self.activations
    }

    /// Messages actually delivered to a protocol (after loss, liveness and
    /// stale-link filtering) so far.
    pub fn messages_delivered(&self) -> u64 {
        self.deliveries
    }

    /// Current state generation (see [`ProbeView::state_gen`]).
    pub fn state_generation(&self) -> u64 {
        self.state_gen
    }

    /// Marks `u` dirty for the next probe batch (idempotent per batch).
    fn mark_dirty(&mut self, u: usize) {
        if !self.dirty[u] {
            self.dirty[u] = true;
            self.dirty_nodes.push(u);
        }
    }

    /// Overrides the link configuration for the single direction
    /// `from → to` — transmissions in that direction use `cfg` instead of
    /// the global default. Overriding only one direction yields asymmetric
    /// loss/latency; override both (or use
    /// [`Simulator::set_link_override_sym`]) for a symmetric adversarial
    /// link. Installing an override for a non-existent edge is allowed (it
    /// simply applies once such an edge appears via `LinkUp`/`Join`).
    pub fn set_link_override(&mut self, from: usize, to: usize, cfg: LinkConfig) {
        assert!(from != to, "a link needs two distinct endpoints");
        self.link_overrides.insert((from, to), cfg);
    }

    /// Overrides both directions of the link `a ↔ b` with the same config.
    pub fn set_link_override_sym(&mut self, a: usize, b: usize, cfg: LinkConfig) {
        self.set_link_override(a, b, cfg);
        self.set_link_override(b, a, cfg);
    }

    /// Removes all per-direction link overrides (back to the global
    /// default).
    pub fn clear_link_overrides(&mut self) {
        self.link_overrides.clear();
    }

    /// The effective link configuration for the direction `from → to`.
    pub fn link_config(&self, from: usize, to: usize) -> LinkConfig {
        *self.link_overrides.get(&(from, to)).unwrap_or(&self.cfg)
    }

    /// Schedules a fault at absolute time `at` (must not be in the past).
    /// Fault events are provenance roots: every callback and message they
    /// trigger is attributed to [`CauseClass::FaultRepair`] (unless a
    /// protocol re-tags it).
    pub fn schedule_fault(&mut self, at: Time, fault: Fault) {
        assert!(at >= self.now, "fault scheduled in the past");
        let prov = self.alloc_root(CauseClass::FaultRepair);
        self.queue.push(at, EventKind::Fault(fault), prov.id);
    }

    /// Allocates the next dense provenance id as a child of the event
    /// being processed, or as a fresh root during `on_init` dispatches.
    /// When observing (trace or ledger attached), the stamp is parked in
    /// the side table until the event pops.
    fn alloc_prov(&mut self, cause: CauseClass) -> Provenance {
        let id = self.next_prov;
        self.next_prov += 1;
        let prov = match &self.frame {
            Some(parent) => Provenance::child(parent, id, cause),
            None => Provenance::root(id, cause),
        };
        if let Some(meta) = self.prov_meta.as_mut() {
            meta.insert(id, prov);
        }
        prov
    }

    /// Allocates the next dense provenance id as a root unconditionally.
    fn alloc_root(&mut self, cause: CauseClass) -> Provenance {
        let id = self.next_prov;
        self.next_prov += 1;
        let prov = Provenance::root(id, cause);
        if let Some(meta) = self.prov_meta.as_mut() {
            meta.insert(id, prov);
        }
        prov
    }

    /// Registers an observer invoked every `every` ticks during the
    /// [`Simulator::run_until`]-family loops (first firing at the current
    /// time). Probes see a consistent snapshot *between* events: every
    /// event at a tick `< t` has been fully processed when a probe fires
    /// at `t`, and none at `>= t` has. They run in registration order and
    /// may record into the metrics registry, which makes them the hook for
    /// convergence timelines (ring-shape classification, per-node churn).
    ///
    /// Single [`Simulator::step`] calls do **not** fire probes.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn add_probe(&mut self, every: u64, f: impl FnMut(&mut ProbeView<'_, P>) + 'static) {
        assert!(every > 0, "probe interval must be positive");
        self.probes.push(Probe {
            every,
            next_at: self.now,
            f: Box::new(f),
        });
    }

    /// Registers a built-in probe that snapshots all counters and gauges
    /// into the metrics time series every `every` ticks (see
    /// [`Metrics::sample_series`]).
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn sample_metrics_every(&mut self, every: u64) {
        self.add_probe(every, |view| {
            let tick = view.now.ticks();
            view.metrics.sample_series(tick);
        });
    }

    /// Earliest pending probe deadline, if any probes are registered.
    fn next_probe_due(&self) -> Option<Time> {
        self.probes.iter().map(|p| p.next_at).min()
    }

    /// Fires every probe whose deadline has passed, then re-arms it on its
    /// own `every`-grid strictly after `now`.
    fn fire_due_probes(&mut self) {
        if self.probes.is_empty() {
            return;
        }
        let mut probes = std::mem::take(&mut self.probes);
        let mut fired = false;
        for probe in probes.iter_mut() {
            if probe.next_at > self.now {
                continue;
            }
            fired = true;
            let mut view = ProbeView {
                now: self.now,
                protocols: &self.protocols,
                topology: &self.topo,
                alive: &self.alive,
                metrics: &mut self.metrics,
                trace: &self.trace,
                pending_events: self.queue.len(),
                events_processed: self.events_processed,
                dirty_nodes: &self.dirty_nodes,
                activations: self.activations,
                state_gen: self.state_gen,
            };
            (probe.f)(&mut view);
            while probe.next_at <= self.now {
                probe.next_at += probe.every;
            }
        }
        debug_assert!(self.probes.is_empty(), "probe registered a probe");
        self.probes = probes;
        if fired {
            for u in self.dirty_nodes.drain(..) {
                self.dirty[u] = false;
            }
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    ///
    /// Simulated time jumps directly to the event's tick — empty tick
    /// ranges are fast-forwarded over, never iterated. Only nodes with an
    /// event to process do any work; a quiescent node costs nothing.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        // Rehydrate the full stamp from the side table; without observers
        // the lineage is unobservable, so a synthetic root frame suffices
        // (and keeps the hot path free of map traffic).
        let prov = match self.prov_meta.as_mut() {
            Some(meta) => meta
                .remove(&ev.pid)
                .expect("queued event is missing its provenance stamp"),
            None => Provenance::root(ev.pid, CauseClass::Bootstrap),
        };
        if let Some(ledger) = self.ledger.as_deref_mut() {
            ledger.record_event(&prov);
        }
        self.frame = Some(prov);
        match ev.kind {
            EventKind::Deliver { dst, from, msg } => self.deliver(dst, from, msg),
            EventKind::Timer { node, token } => {
                if self.trace.enabled() {
                    self.trace.record(TraceEvent::TimerFired {
                        at: self.now,
                        node,
                        token,
                        prov,
                    });
                }
                if self.alive[node] {
                    self.dispatch(node, |p, ctx| p.on_timer(ctx, token));
                }
            }
            EventKind::Fault(fault) => self.apply_fault(fault),
        }
        self.frame = None;
        true
    }

    /// Runs until the queue drains or simulated time reaches `deadline`.
    /// Registered probes fire on their tick grids, interleaved with event
    /// processing in deterministic order (all events strictly before a
    /// probe's deadline run first).
    ///
    /// Time advances by fast-forward only: to the next occupied tick of
    /// the event wheel, or to the next probe-grid point, whichever is
    /// earlier. A tick range containing neither costs nothing, and once
    /// the queue drains the clock stops — probes do not keep firing on
    /// their grids out to the deadline.
    pub fn run_until(&mut self, deadline: Time) -> RunOutcome {
        loop {
            // Fire any probe due before (or at the same tick as) the next
            // event, so probes observe the state *at* their deadline. Once
            // the queue drains nothing can change, so only already-due
            // probes fire — the clock does not advance on empty ticks.
            if let Some(due) = self.next_probe_due() {
                let gate = match self.queue.peek_time() {
                    Some(t) => t.min(deadline),
                    None => self.now,
                };
                if due <= gate {
                    self.now = due.max(self.now);
                    self.fire_due_probes();
                    continue;
                }
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Quiescent(self.now),
                Some(t) if t > deadline => {
                    self.now = deadline;
                    return RunOutcome::Budget(self.now);
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until quiescence, but at most `max_ticks` further ticks.
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> RunOutcome {
        let deadline = self.now.saturating_add(max_ticks);
        self.run_until(deadline)
    }

    /// Runs in `check_every`-tick slices until `stable` returns `true` (its
    /// arguments are the protocol states and the current time), the queue
    /// drains, or `max_ticks` elapse. Use this for protocols with periodic
    /// timers that never go quiescent on their own (e.g. VRR hello beacons).
    pub fn run_until_stable(
        &mut self,
        check_every: u64,
        max_ticks: u64,
        mut stable: impl FnMut(&[P], Time) -> bool,
    ) -> RunOutcome {
        let deadline = self.now.saturating_add(max_ticks);
        loop {
            if stable(&self.protocols, self.now) {
                return RunOutcome::Quiescent(self.now);
            }
            if self.now >= deadline {
                return RunOutcome::Budget(self.now);
            }
            let slice_end = self.now.saturating_add(check_every.max(1)).min(deadline);
            if self.run_until(slice_end).is_quiescent() {
                let ok = stable(&self.protocols, self.now);
                return if ok {
                    RunOutcome::Quiescent(self.now)
                } else {
                    // Quiescent but not stable: nothing more will happen.
                    RunOutcome::Budget(self.now)
                };
            }
        }
    }

    /// Runs `node`'s callback with a fully wired [`Ctx`], then applies the
    /// actions it queued. Returns how many actions the callback queued —
    /// zero means the event produced no onward work, which is what tags a
    /// delivery as *wasted* in the causal ledger.
    fn dispatch(&mut self, node: usize, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>)) -> usize {
        self.activations += 1;
        self.state_gen += 1;
        self.mark_dirty(node);
        let mut nbrs = std::mem::take(&mut self.nbr_buf);
        nbrs.clear();
        nbrs.extend(self.topo.neighbors(node).filter(|&v| self.alive[v]));
        let mut actions = std::mem::take(&mut self.action_buf);
        actions.clear();
        {
            let mut ctx = Ctx {
                node,
                now: self.now,
                neighbors: &nbrs,
                actions: &mut actions,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                trace: &self.trace,
                cause: match &self.frame {
                    Some(frame) => frame.cause,
                    None => CauseClass::Bootstrap,
                },
            };
            f(&mut self.protocols[node], &mut ctx);
        }
        let queued = actions.len();
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg, cause } => self.transmit(node, to, msg, cause),
                Action::Timer {
                    delay,
                    token,
                    cause,
                } => {
                    let prov = self.alloc_prov(cause);
                    self.queue
                        .push(self.now + delay, EventKind::Timer { node, token }, prov.id);
                }
            }
        }
        self.nbr_buf = nbrs;
        self.action_buf = actions;
        queued
    }

    /// Link-layer transmission: applies the effective per-direction config —
    /// duplication first (each copy is a metered, independent transmission),
    /// then per-copy loss, latency, and bounded-delay reordering.
    fn transmit(&mut self, from: usize, to: usize, msg: P::Msg, cause: CauseClass) {
        let cfg = self.link_config(from, to);
        if cfg.dup_prob > 0.0 && self.rng.chance(cfg.dup_prob) {
            self.metrics.incr("tx.dup");
            self.transmit_copy(from, to, msg.clone(), &cfg, cause);
        }
        self.transmit_copy(from, to, msg, &cfg, cause);
    }

    /// Transmits one copy: meters the hop (kinds are counted *before* loss
    /// sampling, so `msg.` sums to `tx.total`), samples loss, latency and
    /// reorder delay. Each copy consumes one provenance id *before* loss
    /// sampling, so `Send`/`Lost` trace records always carry a `pid` and
    /// a dropped copy appears in the lineage as a leaf.
    fn transmit_copy(
        &mut self,
        from: usize,
        to: usize,
        msg: P::Msg,
        cfg: &LinkConfig,
        cause: CauseClass,
    ) {
        let kind = P::kind(&msg);
        let prov = self.alloc_prov(cause);
        self.metrics.incr("tx.total");
        self.metrics.incr(kind_key(kind));
        if let Some(ledger) = self.ledger.as_deref_mut() {
            ledger.record_send(cause, kind, from);
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Send {
                at: self.now,
                from,
                to,
                kind,
                prov,
            });
        }
        if cfg.drop_prob > 0.0 && self.rng.chance(cfg.drop_prob) {
            self.metrics.incr("tx.dropped");
            if self.trace.enabled() {
                self.trace.record(TraceEvent::Lost {
                    at: self.now,
                    from,
                    to,
                    reason: "link-drop",
                    prov,
                });
            }
            // the copy never enters the queue, so its parked stamp would
            // otherwise leak in the side table
            if let Some(meta) = self.prov_meta.as_mut() {
                meta.remove(&prov.id);
            }
            return;
        }
        let mut latency = cfg.latency.sample(&mut self.rng);
        if cfg.reorder_prob > 0.0 && self.rng.chance(cfg.reorder_prob) {
            latency += self.rng.range(1, cfg.reorder_window.max(1) + 1);
            self.metrics.incr("tx.reordered");
        }
        self.metrics.observe_hist("latency.ticks", latency);
        self.queue.push(
            self.now + latency,
            EventKind::Deliver { dst: to, from, msg },
            prov.id,
        );
    }

    /// Delivery-time checks: the receiver must still be alive and the link
    /// must still exist (mobility may have severed it in flight).
    fn deliver(&mut self, dst: usize, from: usize, msg: P::Msg) {
        let prov = self.frame.expect("delivery outside an event frame");
        if !self.alive[dst] || !self.alive[from] || !self.topo.has_edge(from, dst) {
            self.metrics.incr("tx.lost_in_flight");
            if self.trace.enabled() {
                self.trace.record(TraceEvent::Lost {
                    at: self.now,
                    from,
                    to: dst,
                    reason: "stale-link",
                    prov,
                });
            }
            return;
        }
        let kind = P::kind(&msg);
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Deliver {
                at: self.now,
                from,
                to: dst,
                kind,
                prov,
            });
        }
        self.metrics.incr("rx.total");
        self.deliveries += 1;
        if let Some(ledger) = self.ledger.as_deref_mut() {
            ledger.record_delivery(prov.cause, kind, dst, prov.depth);
        }
        let queued = self.dispatch(dst, |p, ctx| p.on_message(ctx, from, msg));
        if queued == 0 {
            // Wasted work: the delivery triggered no onward action — the
            // receiver already knew everything the message told it.
            self.metrics.incr("rx.wasted");
            if let Some(ledger) = self.ledger.as_deref_mut() {
                ledger.record_wasted(prov.cause, kind, dst);
            }
        }
    }

    fn apply_fault(&mut self, fault: Fault) {
        self.state_gen += 1;
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Fault {
                at: self.now,
                desc: format!("{fault:?}"),
                prov: self.frame.expect("fault outside an event frame"),
            });
        }
        match fault {
            Fault::Crash { node } => {
                if !self.alive[node] {
                    return;
                }
                self.alive[node] = false;
                self.metrics.incr("fault.crash");
                let nbrs: Vec<usize> = self
                    .topo
                    .neighbors(node)
                    .filter(|&v| self.alive[v])
                    .collect();
                for v in nbrs {
                    self.dispatch(v, |p, ctx| p.on_neighbor_down(ctx, node));
                }
            }
            Fault::Join { node, links } => {
                if self.alive[node] {
                    return;
                }
                // Sever any stale physical edges from before the crash, then
                // install the new ones.
                let old: Vec<usize> = self.topo.isolate(node);
                let _ = old;
                self.alive[node] = true;
                self.metrics.incr("fault.join");
                let mut fresh = Vec::new();
                for l in links {
                    if l == node || l >= self.topo.node_count() {
                        continue;
                    }
                    if self.alive[l] {
                        self.topo.add_edge(node, l);
                        fresh.push(l);
                    } else {
                        // The requested peer is down: the link cannot come
                        // up. Count it — a rejoin trace replaying stale
                        // links otherwise loses edges silently.
                        self.metrics.incr("fault.join_dead_link");
                    }
                }
                self.protocols[node].reset();
                self.dispatch(node, |p, ctx| p.on_init(ctx));
                for v in fresh {
                    self.dispatch(v, |p, ctx| p.on_neighbor_up(ctx, node));
                }
            }
            Fault::LinkDown { a, b } => {
                if self.topo.remove_edge(a, b) {
                    self.metrics.incr("fault.link_down");
                    if self.alive[a] {
                        self.dispatch(a, |p, ctx| p.on_neighbor_down(ctx, b));
                    }
                    if self.alive[b] {
                        self.dispatch(b, |p, ctx| p.on_neighbor_down(ctx, a));
                    }
                }
            }
            Fault::LinkUp { a, b } => {
                if a != b && self.alive[a] && self.alive[b] && self.topo.add_edge(a, b) {
                    self.metrics.incr("fault.link_up");
                    self.dispatch(a, |p, ctx| p.on_neighbor_up(ctx, b));
                    self.dispatch(b, |p, ctx| p.on_neighbor_up(ctx, a));
                }
            }
            Fault::Partition { groups } => {
                self.metrics.incr("fault.partition");
                // Map each grouped node to its group id; nodes absent from
                // every group are unconstrained and keep all their links.
                let mut group_of: BTreeMap<usize, usize> = BTreeMap::new();
                for (gi, group) in groups.iter().enumerate() {
                    for &u in group {
                        group_of.insert(u, gi);
                    }
                }
                let cuts: Vec<(usize, usize)> = self
                    .topo
                    .edges()
                    .filter(|&(a, b)| match (group_of.get(&a), group_of.get(&b)) {
                        (Some(ga), Some(gb)) => ga != gb,
                        _ => false,
                    })
                    .collect();
                for (a, b) in cuts {
                    if self.topo.remove_edge(a, b) {
                        self.metrics.incr("fault.partition_cut");
                        self.severed.push((a, b));
                        if self.alive[a] {
                            self.dispatch(a, |p, ctx| p.on_neighbor_down(ctx, b));
                        }
                        if self.alive[b] {
                            self.dispatch(b, |p, ctx| p.on_neighbor_down(ctx, a));
                        }
                    }
                }
            }
            Fault::Heal => {
                self.metrics.incr("fault.heal");
                let severed = std::mem::take(&mut self.severed);
                for (a, b) in severed {
                    if self.alive[a] && self.alive[b] && self.topo.add_edge(a, b) {
                        self.metrics.incr("fault.heal_link");
                        self.dispatch(a, |p, ctx| p.on_neighbor_up(ctx, b));
                        self.dispatch(b, |p, ctx| p.on_neighbor_up(ctx, a));
                    }
                }
            }
        }
    }
}

/// Maps a protocol message kind to its metrics key. Kinds used by the
/// workspace protocols are interned here; unknown kinds fall back to
/// `"msg.other"` so the sum under `msg.` is always the total.
fn kind_key(kind: &'static str) -> &'static str {
    match kind {
        "notify" => "msg.notify",
        "ack" => "msg.ack",
        "teardown" => "msg.teardown",
        "discover" => "msg.discover",
        "succ" => "msg.succ",
        "update" => "msg.update",
        "flood" => "msg.flood",
        "hello" => "msg.hello",
        "setup" => "msg.setup",
        "data" => "msg.data",
        "probe" => "msg.probe",
        "msg" => "msg.other",
        _ => "msg.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    /// A toy protocol: floods a token through the network once, recording
    /// the hop count at which it first arrived.
    #[derive(Clone, Debug)]
    struct Flood {
        seen: bool,
        first_hops: Option<u64>,
        origin: bool,
    }

    #[derive(Clone, Debug)]
    struct FloodMsg {
        hops: u64,
    }

    impl Protocol for Flood {
        type Msg = FloodMsg;

        fn on_init(&mut self, ctx: &mut Ctx<'_, FloodMsg>) {
            if self.origin {
                self.seen = true;
                self.first_hops = Some(0);
                ctx.broadcast(FloodMsg { hops: 1 });
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, FloodMsg>, _from: usize, msg: FloodMsg) {
            if !self.seen {
                self.seen = true;
                self.first_hops = Some(msg.hops);
                ctx.broadcast(FloodMsg { hops: msg.hops + 1 });
            }
        }

        fn reset(&mut self) {
            self.seen = false;
            self.first_hops = None;
        }

        fn kind(_msg: &FloodMsg) -> &'static str {
            "flood"
        }
    }

    fn flood_sim(n: usize, seed: u64) -> Simulator<Flood> {
        let topo = generators::ring(n);
        let protocols: Vec<Flood> = (0..n)
            .map(|u| Flood {
                seen: false,
                first_hops: None,
                origin: u == 0,
            })
            .collect();
        Simulator::new(topo, protocols, LinkConfig::ideal(), seed)
    }

    #[test]
    fn flood_reaches_everyone_with_bfs_hops() {
        let mut sim = flood_sim(10, 1);
        let outcome = sim.run_to_quiescence(1_000);
        assert!(outcome.is_quiescent());
        for u in 0..10 {
            let hops = sim.protocol(u).first_hops.expect("node not reached");
            let expected = u.min(10 - u) as u64;
            assert_eq!(hops, expected, "node {u}");
        }
    }

    #[test]
    fn unit_latency_makes_time_equal_eccentricity() {
        let mut sim = flood_sim(10, 2);
        let outcome = sim.run_to_quiescence(1_000);
        // On a 10-ring, the farthest node is 5 hops out; the final wasted
        // re-broadcasts take one more tick.
        assert!(outcome.time().ticks() >= 5);
        assert!(outcome.time().ticks() <= 7);
    }

    #[test]
    fn messages_are_metered() {
        let mut sim = flood_sim(8, 3);
        sim.run_to_quiescence(1_000);
        // every node broadcasts exactly once on a degree-2 ring
        assert_eq!(sim.metrics().counter("tx.total"), 16);
        assert_eq!(sim.metrics().counter("msg.flood"), 16);
        assert_eq!(sim.metrics().counter_sum("msg."), 16);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let topo = generators::gnp(30, 0.15, &mut Rng::new(9));
            let protocols: Vec<Flood> = (0..30)
                .map(|u| Flood {
                    seen: false,
                    first_hops: None,
                    origin: u == 0,
                })
                .collect();
            let trace = TraceSink::memory();
            let mut sim = Simulator::with_trace(
                topo,
                protocols,
                LinkConfig::jittered(1, 4),
                seed,
                trace.clone(),
            );
            sim.run_to_quiescence(10_000);
            // drain, don't clone: the trace is consumed exactly once
            trace.take()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// Canonical-namespace invariant (see the metrics module doc): every
    /// link-layer transmission is counted under exactly one `msg.<kind>`
    /// key *before* loss sampling, so the `msg.` sum always equals
    /// `tx.total` — even on lossy links.
    #[test]
    fn msg_namespace_sums_to_tx_total() {
        let topo = generators::complete(8);
        let protocols: Vec<Flood> = (0..8)
            .map(|u| Flood {
                seen: false,
                first_hops: None,
                origin: u == 0,
            })
            .collect();
        let mut sim = Simulator::new(topo, protocols, LinkConfig::lossy(0.3), 21);
        sim.run_to_quiescence(10_000);
        let m = sim.metrics();
        assert!(m.counter("tx.dropped") > 0, "want losses in this run");
        assert_eq!(m.counter_sum("msg."), m.counter("tx.total"));
    }

    #[test]
    fn probes_fire_on_their_grid_and_see_consistent_state() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = flood_sim(10, 6);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = Rc::clone(&log);
        sim.add_probe(2, move |view| {
            let reached = view.protocols.iter().filter(|p| p.seen).count();
            log2.borrow_mut().push((view.now.ticks(), reached));
        });
        sim.run_to_quiescence(1_000);
        let log = log.borrow();
        // fires at 0, 2, 4, ... while events remain
        assert!(log.len() >= 3, "probe fired {} times", log.len());
        for (i, &(tick, _)) in log.iter().enumerate() {
            assert_eq!(tick, 2 * i as u64);
        }
        // monotone spread, ending with everyone reached
        for w in log.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(log.last().unwrap().1, 10);
    }

    #[test]
    fn probes_can_record_metrics_and_stop_at_quiescence() {
        let mut sim = flood_sim(6, 12);
        sim.add_probe(1, |view| {
            view.metrics.incr("probe.fired");
            view.metrics
                .observe_hist("probe.pending", view.pending_events as u64);
        });
        let outcome = sim.run_to_quiescence(1_000);
        assert!(outcome.is_quiescent());
        let fired = sim.metrics().counter("probe.fired");
        assert!(fired > 0);
        // the probe grid must not run past quiescence to the deadline
        assert!(fired < 100, "probe kept firing after quiescence: {fired}");
        assert_eq!(sim.metrics().hist("probe.pending").unwrap().count(), fired);
    }

    #[test]
    fn series_sampling_records_counter_growth() {
        let mut sim = flood_sim(10, 13);
        sim.sample_metrics_every(2);
        sim.run_to_quiescence(1_000);
        let series = sim.metrics().series();
        assert!(series.len() >= 3);
        assert_eq!(series[0].tick, 0);
        assert_eq!(series[1].tick, 2);
        let tx_at = |p: &crate::metrics::SeriesPoint| {
            p.counters
                .iter()
                .find(|(k, _)| *k == "tx.total")
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        let first = tx_at(&series[0]);
        let last = tx_at(series.last().unwrap());
        assert!(last > first, "tx.total should grow over the run");
        assert_eq!(last, sim.metrics().counter("tx.total"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_probe_interval_panics() {
        let mut sim = flood_sim(3, 1);
        sim.add_probe(0, |_| {});
    }

    #[test]
    fn lossy_links_drop_messages() {
        let topo = generators::complete(6);
        let protocols: Vec<Flood> = (0..6)
            .map(|u| Flood {
                seen: false,
                first_hops: None,
                origin: u == 0,
            })
            .collect();
        let mut sim = Simulator::new(topo, protocols, LinkConfig::lossy(0.5), 7);
        sim.run_to_quiescence(1_000);
        assert!(sim.metrics().counter("tx.dropped") > 0);
    }

    #[test]
    fn crash_stops_participation_and_join_restarts() {
        let mut sim = flood_sim(6, 5);
        sim.schedule_fault(Time(0), Fault::Crash { node: 3 });
        sim.run_to_quiescence(1_000);
        // crash at t=0 happens after init broadcasts but before delivery:
        // node 3 must not have flooded on
        assert!(!sim.is_alive(3));
        // rejoin with its old links
        sim.schedule_fault(
            Time(100),
            Fault::Join {
                node: 3,
                links: vec![2, 4],
            },
        );
        sim.run_to_quiescence(1_000);
        assert!(sim.is_alive(3));
        assert!(sim.topology().has_edge(3, 2));
        assert!(sim.topology().has_edge(3, 4));
        // protocol state was reset; non-origin node stays unseen (flood over)
        assert!(!sim.protocol(3).seen);
    }

    /// Ping floods back and forth forever between timer fires — a steady
    /// message source for the adversarial-link tests.
    #[derive(Clone)]
    struct Chatter {
        received: u64,
    }
    impl Protocol for Chatter {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(1, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: usize, _: u64) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _: u64) {
            ctx.broadcast(1);
            if ctx.now().ticks() < 200 {
                ctx.set_timer(1, 0);
            }
        }
        fn reset(&mut self) {
            self.received = 0;
        }
    }

    #[test]
    fn duplication_preserves_metering_invariant() {
        let topo = generators::line(2);
        let cfg = LinkConfig::ideal().with_dup(0.4);
        let mut sim = Simulator::new(topo, vec![Chatter { received: 0 }; 2], cfg, 17);
        sim.run_to_quiescence(10_000);
        let m = sim.metrics();
        assert!(m.counter("tx.dup") > 0, "want duplicated transmissions");
        // each duplicate is a full transmission: metered under msg.* too
        assert_eq!(m.counter_sum("msg."), m.counter("tx.total"));
        // every non-dropped copy is delivered (no loss configured)
        assert_eq!(m.counter("rx.total"), m.counter("tx.total"));
        // 2 nodes × 200 timer broadcasts = 400 originals, plus duplicates
        assert_eq!(m.counter("tx.total"), 400 + m.counter("tx.dup"));
    }

    #[test]
    fn reordering_delays_within_window_and_is_metered() {
        let topo = generators::line(2);
        let cfg = LinkConfig::ideal().with_reorder(0.5, 6);
        let mut sim = Simulator::new(topo, vec![Chatter { received: 0 }; 2], cfg, 23);
        sim.run_to_quiescence(10_000);
        let m = sim.metrics();
        assert!(m.counter("tx.reordered") > 0);
        assert_eq!(m.counter("rx.total"), m.counter("tx.total"));
        // latency = base 1 + extra in 1..=6, so the histogram max is ≤ 7
        let max = m.hist("latency.ticks").unwrap().max().unwrap();
        assert!(max <= 7, "reorder delay exceeded window: {max}");
        assert!(max >= 2, "no reordered sample observed");
    }

    #[test]
    fn per_link_override_gives_asymmetric_loss() {
        // 0 → 1 loses everything short of certainty; 1 → 0 is clean.
        let topo = generators::line(2);
        let mut sim = Simulator::new(
            topo,
            vec![Chatter { received: 0 }; 2],
            LinkConfig::ideal(),
            31,
        );
        sim.set_link_override(0, 1, LinkConfig::lossy(0.99));
        sim.run_to_quiescence(10_000);
        // node 0 hears everything from 1; node 1 hears almost nothing
        assert_eq!(sim.protocol(0).received, 200);
        assert!(
            sim.protocol(1).received < 50,
            "lossy direction delivered {}",
            sim.protocol(1).received
        );
        assert!(sim.metrics().counter("tx.dropped") > 150);
    }

    #[test]
    fn partition_splits_and_heal_restores() {
        let topo = generators::complete(6);
        let edge_count = topo.edge_count();
        let mut sim = Simulator::new(
            topo,
            vec![Chatter { received: 0 }; 6],
            LinkConfig::ideal(),
            37,
        );
        sim.schedule_fault(
            Time(10),
            Fault::Partition {
                groups: vec![vec![0, 1, 2], vec![3, 4], vec![5]],
            },
        );
        sim.run_until(Time(11));
        // only intra-group edges survive: 0-1,0-2,1-2,3-4
        assert_eq!(sim.topology().edge_count(), 4);
        let (_, comps) = ssr_graph::algo::components(sim.topology());
        assert_eq!(comps, 3);
        assert_eq!(sim.metrics().counter("fault.partition"), 1);
        assert_eq!(sim.metrics().counter("fault.partition_cut"), 11);
        sim.schedule_fault(Time(20), Fault::Heal);
        sim.run_until(Time(21));
        assert_eq!(sim.topology().edge_count(), edge_count);
        let (_, comps) = ssr_graph::algo::components(sim.topology());
        assert_eq!(comps, 1);
        assert_eq!(sim.metrics().counter("fault.heal_link"), 11);
    }

    #[test]
    fn heal_skips_edges_to_dead_nodes() {
        let topo = generators::complete(4);
        let mut sim = Simulator::new(
            topo,
            vec![Chatter { received: 0 }; 4],
            LinkConfig::ideal(),
            41,
        );
        sim.schedule_fault(
            Time(5),
            Fault::Partition {
                groups: vec![vec![0, 1], vec![2, 3]],
            },
        );
        sim.schedule_fault(Time(6), Fault::Crash { node: 3 });
        sim.schedule_fault(Time(7), Fault::Heal);
        sim.run_until(Time(8));
        // 0-3 and 1-3 stay down (3 is dead); 0-2 and 1-2 come back
        assert!(sim.topology().has_edge(0, 2));
        assert!(sim.topology().has_edge(1, 2));
        assert!(!sim.topology().has_edge(0, 3));
        assert_eq!(sim.metrics().counter("fault.heal_link"), 2);
    }

    #[test]
    fn join_to_dead_peer_is_counted_and_recovers_on_peer_rejoin() {
        let topo = generators::line(3); // 0-1-2
        let mut sim = Simulator::new(
            topo,
            vec![Chatter { received: 0 }; 3],
            LinkConfig::ideal(),
            43,
        );
        sim.schedule_fault(Time(5), Fault::Crash { node: 1 });
        sim.schedule_fault(Time(6), Fault::Crash { node: 2 });
        // 1 rejoins while 2 is still down: the 1-2 link is requested but
        // cannot come up — it must be counted, not silently dropped.
        sim.schedule_fault(
            Time(10),
            Fault::Join {
                node: 1,
                links: vec![0, 2],
            },
        );
        sim.run_until(Time(11));
        assert!(sim.is_alive(1));
        assert!(sim.topology().has_edge(0, 1));
        assert!(!sim.topology().has_edge(1, 2));
        assert_eq!(sim.metrics().counter("fault.join_dead_link"), 1);
        // the peer rejoining restores the link
        sim.schedule_fault(
            Time(20),
            Fault::Join {
                node: 2,
                links: vec![1],
            },
        );
        sim.run_until(Time(21));
        assert!(sim.topology().has_edge(1, 2));
        assert_eq!(sim.metrics().counter("fault.join_dead_link"), 1);
    }

    #[test]
    fn link_down_blocks_direct_delivery() {
        let topo = generators::line(3); // 0-1-2
        let protocols: Vec<Flood> = (0..3)
            .map(|u| Flood {
                seen: false,
                first_hops: None,
                origin: u == 0,
            })
            .collect();
        let mut sim = Simulator::new(topo, protocols, LinkConfig::ideal(), 11);
        // Cut 0-1 immediately: nothing can reach 1 or 2 (fault at t=0 is
        // processed after init's sends are queued but before delivery at t=1;
        // in-flight messages over the cut link are lost).
        sim.schedule_fault(Time(0), Fault::LinkDown { a: 0, b: 1 });
        sim.run_to_quiescence(1_000);
        assert!(!sim.protocol(1).seen);
        assert!(!sim.protocol(2).seen);
        assert!(sim.metrics().counter("tx.lost_in_flight") > 0);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        #[derive(Clone)]
        struct Bad;
        impl Protocol for Bad {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(2, ()); // 0 and 2 are not adjacent on a line
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: usize, _: ()) {}
            fn reset(&mut self) {}
        }
        let topo = generators::line(3);
        let _ = Simulator::new(topo, vec![Bad, Bad, Bad], LinkConfig::ideal(), 0);
    }

    /// Edge case: a delivery scheduled *exactly on* a probe-grid tick. The
    /// probe must observe the state strictly before the same-tick events —
    /// on line(3) the tick-1 delivery to node 1 is invisible to the tick-1
    /// probe and visible to the tick-2 probe.
    #[test]
    fn probe_on_a_delivery_tick_sees_pre_delivery_state() {
        let topo = generators::line(3);
        let protocols: Vec<Flood> = (0..3)
            .map(|u| Flood {
                seen: false,
                first_hops: None,
                origin: u == 0,
            })
            .collect();
        let mut sim = Simulator::new(topo, protocols, LinkConfig::ideal(), 1);
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<(u64, usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = Rc::clone(&log);
        sim.add_probe(1, move |view| {
            let reached = view.protocols.iter().filter(|p| p.seen).count();
            log2.borrow_mut()
                .push((view.now.ticks(), reached, view.dirty_nodes.len()));
        });
        assert!(sim.run_to_quiescence(1_000).is_quiescent());
        // t=0: only the origin (its init broadcast is queued, not delivered);
        // the dirty set carries all 3 init dispatches.
        // t=1: the delivery to node 1 lands *at* this grid tick — the probe
        // still sees reached=1, and nothing ran since the t=0 batch.
        // t=2: node 1's tick-1 activation is now visible.
        // t=3: node 2's tick-2 activation (plus node 0's wasted redelivery).
        let log = log.borrow();
        assert_eq!(*log, vec![(0, 1, 3), (1, 1, 0), (2, 2, 1), (3, 3, 2)]);
        assert_eq!(sim.protocol(2).first_hops, Some(2));
    }

    /// Edge case: a partition heals inside a tick range containing no other
    /// events. The fault events are the only occupied ticks; the run
    /// fast-forwards between them, probes keep their grid, and the clock
    /// stops at the heal instead of idling to the deadline.
    #[test]
    fn partition_heal_during_an_empty_tick_range() {
        let topo = generators::complete(4);
        let edges = topo.edge_count();
        // no origin: zero protocol traffic, the fault schedule is all there is
        let protocols: Vec<Flood> = (0..4)
            .map(|_| Flood {
                seen: false,
                first_hops: None,
                origin: false,
            })
            .collect();
        let mut sim = Simulator::new(topo, protocols, LinkConfig::ideal(), 2);
        use std::cell::RefCell;
        use std::rc::Rc;
        let ticks: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let t2 = Rc::clone(&ticks);
        sim.add_probe(7, move |view| t2.borrow_mut().push(view.now.ticks()));
        sim.schedule_fault(
            Time(100),
            Fault::Partition {
                groups: vec![vec![0, 1], vec![2, 3]],
            },
        );
        sim.schedule_fault(Time(200), Fault::Heal);
        let outcome = sim.run_until(Time(300));
        // the queue drained at the heal; the clock did not idle to 300
        assert_eq!(outcome, RunOutcome::Quiescent(Time(200)));
        assert_eq!(sim.topology().edge_count(), edges);
        assert_eq!(sim.metrics().counter("fault.partition_cut"), 4);
        assert_eq!(sim.metrics().counter("fault.heal_link"), 4);
        let ticks = ticks.borrow();
        // the probe grid spans both empty ranges: 0, 7, ..., 196
        assert_eq!(ticks.first(), Some(&0));
        assert_eq!(ticks.last(), Some(&196));
        assert!(ticks.windows(2).all(|w| w[1] - w[0] == 7));
    }

    #[test]
    fn work_ledger_counts_activations_deliveries_and_peak_depth() {
        let mut sim = flood_sim(8, 3);
        let init_acts = sim.node_activations();
        assert_eq!(init_acts, 8, "one on_init per node");
        assert_eq!(sim.messages_delivered(), 0);
        sim.run_to_quiescence(1_000);
        // every delivery is one activation on top of the inits
        assert_eq!(sim.node_activations(), init_acts + sim.messages_delivered());
        assert_eq!(sim.messages_delivered(), sim.metrics().counter("rx.total"));
        // degree-2 ring: the origin's init broadcast alone pends 2 events
        assert!(sim.peak_pending_events() >= 2);
        assert!(sim.peak_pending_events() <= 16);
    }

    #[test]
    fn reference_heap_backend_produces_the_same_run() {
        let run = |backend| {
            let topo = generators::gnp(24, 0.2, &mut Rng::new(5));
            let protocols: Vec<Flood> = (0..24)
                .map(|u| Flood {
                    seen: false,
                    first_hops: None,
                    origin: u == 0,
                })
                .collect();
            let trace = TraceSink::memory();
            let mut sim = Simulator::with_trace_backend(
                topo,
                protocols,
                LinkConfig::jittered(1, 3),
                77,
                trace.clone(),
                backend,
            );
            sim.run_to_quiescence(10_000);
            (trace.take(), sim.metrics().clone(), sim.now())
        };
        let wheel = run(crate::event::QueueBackend::TickWheel);
        let heap = run(crate::event::QueueBackend::ReferenceHeap);
        assert_eq!(wheel.0, heap.0, "traces diverged");
        assert_eq!(wheel.2, heap.2, "end times diverged");
    }

    #[test]
    fn run_outcome_accessors() {
        let q = RunOutcome::Quiescent(Time(5));
        let b = RunOutcome::Budget(Time(9));
        assert!(q.is_quiescent());
        assert!(!b.is_quiescent());
        assert_eq!(q.time(), Time(5));
        assert_eq!(b.time(), Time(9));
    }

    #[test]
    fn run_until_never_passes_the_deadline() {
        let mut sim = flood_sim(10, 4);
        let outcome = sim.run_until(Time(2));
        assert_eq!(outcome, RunOutcome::Budget(Time(2)));
        assert!(sim.now() <= Time(2));
        assert!(sim.pending_events() > 0);
        // resuming continues from where we stopped
        let outcome = sim.run_to_quiescence(10_000);
        assert!(outcome.is_quiescent());
    }

    #[test]
    fn events_processed_counts_monotonically() {
        let mut sim = flood_sim(6, 8);
        let before = sim.events_processed();
        sim.run_to_quiescence(1_000);
        assert!(sim.events_processed() > before);
    }

    #[test]
    fn run_until_stable_with_periodic_timers() {
        /// Beacons forever; "stable" once everyone has beaconed 3 times.
        #[derive(Clone)]
        struct Beacon {
            fired: u32,
        }
        impl Protocol for Beacon {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(1, 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: usize, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
                self.fired += 1;
                ctx.set_timer(1, 0);
            }
            fn reset(&mut self) {
                self.fired = 0;
            }
        }
        let topo = generators::line(4);
        let mut sim = Simulator::new(topo, vec![Beacon { fired: 0 }; 4], LinkConfig::ideal(), 1);
        let outcome = sim.run_until_stable(2, 10_000, |ps, _| ps.iter().all(|p| p.fired >= 3));
        assert!(outcome.is_quiescent());
        assert!(outcome.time().ticks() < 100);
    }

    /// Flood re-deliveries to already-seen nodes queue nothing — those are
    /// exactly the deliveries the wasted-work counter must tag, with or
    /// without the ledger attached.
    #[test]
    fn wasted_deliveries_are_metered() {
        let mut sim = flood_sim(8, 3);
        sim.run_to_quiescence(1_000);
        let m = sim.metrics();
        let wasted = m.counter("rx.wasted");
        assert!(wasted > 0, "a ring flood must waste its second arrivals");
        assert!(wasted < m.counter("rx.total"));
    }

    /// The ledger's per-cell totals must reconcile exactly with the
    /// pre-existing aggregate counters, and a pure-bootstrap run must
    /// attribute 100% of traffic to the bootstrap cause class.
    #[test]
    fn instrumented_ledger_reconciles_with_aggregate_counters() {
        let topo = generators::ring(8);
        let protocols: Vec<Flood> = (0..8)
            .map(|u| Flood {
                seen: false,
                first_hops: None,
                origin: u == 0,
            })
            .collect();
        let mut sim = Simulator::instrumented(
            topo,
            protocols,
            LinkConfig::ideal(),
            3,
            TraceSink::disabled(),
            QueueBackend::default(),
        );
        sim.run_to_quiescence(1_000);
        let summary = sim.causal_summary().expect("instrumented sim has a ledger");
        let m = sim.metrics();
        assert_eq!(summary.sent(), m.counter("tx.total"));
        assert_eq!(summary.delivered(), m.counter("rx.total"));
        assert_eq!(summary.wasted(), m.counter("rx.wasted"));
        // everything here descends from on_init broadcasts
        for &(cause, kind) in summary.messages.keys() {
            assert_eq!(cause, "bootstrap");
            assert_eq!(kind, "flood");
        }
        // the origin's init broadcast queues one root per ring neighbor
        assert_eq!(summary.roots, 2);
        assert_eq!(summary.cascade_sizes.count(), 2);
        // per-node tallies cover the whole ring
        assert_eq!(summary.nodes.iter().map(|t| t.sent).sum::<u64>(), 16);
    }

    /// Attaching the ledger must not perturb the run: traces, metrics and
    /// end time are byte-identical with and without it.
    #[test]
    fn instrumented_run_is_byte_identical_to_uninstrumented() {
        let run = |instrument: bool| {
            let topo = generators::gnp(24, 0.2, &mut Rng::new(5));
            let protocols: Vec<Flood> = (0..24)
                .map(|u| Flood {
                    seen: false,
                    first_hops: None,
                    origin: u == 0,
                })
                .collect();
            let trace = TraceSink::memory();
            let link = LinkConfig::lossy(0.1).with_dup(0.1);
            let backend = QueueBackend::default();
            let mut sim = if instrument {
                Simulator::instrumented(topo, protocols, link, 77, trace.clone(), backend)
            } else {
                Simulator::with_trace_backend(topo, protocols, link, 77, trace.clone(), backend)
            };
            sim.run_to_quiescence(10_000);
            (trace.take(), sim.metrics().clone(), sim.now())
        };
        let plain = run(false);
        let instrumented = run(true);
        assert_eq!(plain.0, instrumented.0, "traces diverged");
        assert_eq!(plain.2, instrumented.2, "end times diverged");
        let counters_of = |m: &Metrics| m.counters().collect::<Vec<_>>();
        assert_eq!(counters_of(&plain.1), counters_of(&instrumented.1));
    }

    /// `Ctx::set_cause` re-tags subsequently queued actions, and the tag
    /// flows down the causal chain to every descendant.
    #[test]
    fn set_cause_retags_descendant_lineage() {
        /// Origin relays its timer-driven sends as "routing"; receivers
        /// forward once without touching the cause.
        #[derive(Clone)]
        struct Relay {
            forwarded: bool,
            origin: bool,
        }
        impl Protocol for Relay {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if self.origin {
                    ctx.set_timer(1, 0);
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
                assert_eq!(ctx.cause(), CauseClass::Bootstrap);
                let prev = ctx.set_cause(CauseClass::Routing);
                ctx.broadcast(());
                ctx.set_cause(prev);
                assert_eq!(ctx.cause(), CauseClass::Bootstrap);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _: usize, _: ()) {
                assert_eq!(ctx.cause(), CauseClass::Routing, "inherited tag");
                if !self.forwarded {
                    self.forwarded = true;
                    ctx.broadcast(());
                }
            }
            fn reset(&mut self) {
                self.forwarded = false;
            }
        }
        let topo = generators::line(3);
        let protocols = vec![
            Relay {
                forwarded: false,
                origin: true,
            },
            Relay {
                forwarded: false,
                origin: false,
            },
            Relay {
                forwarded: false,
                origin: false,
            },
        ];
        let mut sim = Simulator::instrumented(
            topo,
            protocols,
            LinkConfig::ideal(),
            1,
            TraceSink::disabled(),
            QueueBackend::default(),
        );
        sim.run_to_quiescence(1_000);
        let summary = sim.causal_summary().unwrap();
        assert!(summary.delivered() > 0);
        for &(cause, _) in summary.messages.keys() {
            assert_eq!(cause, "routing", "all message traffic was re-tagged");
        }
    }
}
