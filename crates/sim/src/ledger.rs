//! The causal ledger: per-cause × per-kind message accounting over the
//! provenance lineage (see `docs/PROFILING.md` for the model).
//!
//! A [`CausalLedger`] is attached to a [`crate::Simulator`] built via
//! `Simulator::instrumented`; the default constructors leave it off, and
//! the disabled path allocates nothing and touches no RNG, so an
//! instrumented run is byte-identical to an uninstrumented one in every
//! other observable (traces, metrics other than the `prov.*` family,
//! convergence ticks).
//!
//! The ledger aggregates along three axes:
//!
//! * **cause class × message kind** — sent/delivered/wasted counts, the
//!   attribution `obs top` ranks;
//! * **causal depth** — log₂-bucketed per-cause histograms plus the
//!   3-way (cause, kind, depth-bucket) cells `obs flame` folds into
//!   flamegraph stacks;
//! * **lineage shape** — root counts and per-root descendant ("cascade")
//!   sizes, the quantity the paper's bounded-cascade claim is about.

use std::collections::BTreeMap;

use crate::event::{CauseClass, Provenance};
use crate::metrics::{Histogram, Metrics};

/// Sent/delivered/wasted counts for one (cause, kind) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Link-layer transmissions: pre-loss, duplicates included — sums to
    /// `tx.total` across all cells.
    pub sent: u64,
    /// Deliveries into a protocol callback — sums to `rx.total`.
    pub delivered: u64,
    /// Deliveries whose callback queued no onward actions — sums to
    /// `rx.wasted`.
    pub wasted: u64,
}

/// Per-node message tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTally {
    /// Transmissions originated by this node.
    pub sent: u64,
    /// Deliveries to this node.
    pub received: u64,
    /// Deliveries to this node that queued no onward actions.
    pub wasted: u64,
}

/// Aggregates causal-provenance statistics for one instrumented run.
///
/// All interior maps are `BTreeMap`s keyed by `Copy` data, so iteration
/// order — and therefore every serialization downstream — is
/// deterministic. The ledger never samples the simulator RNG.
#[derive(Clone, Debug, Default)]
pub struct CausalLedger {
    messages: BTreeMap<(CauseClass, &'static str), KindStats>,
    /// (cause, kind, log₂ depth-bucket index) → delivered count: the
    /// exact aggregation `obs flame` folds into stack lines.
    flame: BTreeMap<(CauseClass, &'static str, usize), u64>,
    depth: BTreeMap<CauseClass, Histogram>,
    nodes: Vec<NodeTally>,
    /// Root event id → processed-descendant count.
    cascades: BTreeMap<u64, u64>,
    roots: u64,
}

impl CausalLedger {
    /// An empty ledger for an `n`-node simulation.
    pub fn new(n: usize) -> Self {
        CausalLedger {
            nodes: vec![NodeTally::default(); n],
            ..Default::default()
        }
    }

    /// Records an event popped from the queue: roots open a cascade,
    /// descendants grow their root's cascade.
    pub(crate) fn record_event(&mut self, prov: &Provenance) {
        if prov.depth == 0 {
            self.roots += 1;
            self.cascades.entry(prov.root).or_insert(0);
        } else {
            *self.cascades.entry(prov.root).or_insert(0) += 1;
        }
    }

    /// Records a link-layer transmission (called per copy, before loss).
    pub(crate) fn record_send(&mut self, cause: CauseClass, kind: &'static str, from: usize) {
        self.messages.entry((cause, kind)).or_default().sent += 1;
        self.nodes[from].sent += 1;
    }

    /// Records a delivery into a protocol callback.
    pub(crate) fn record_delivery(
        &mut self,
        cause: CauseClass,
        kind: &'static str,
        dst: usize,
        depth: u32,
    ) {
        self.messages.entry((cause, kind)).or_default().delivered += 1;
        *self
            .flame
            .entry((cause, kind, Histogram::bucket_index(u64::from(depth))))
            .or_insert(0) += 1;
        self.depth
            .entry(cause)
            .or_default()
            .observe(u64::from(depth));
        self.nodes[dst].received += 1;
    }

    /// Tags the preceding delivery as wasted work: its callback queued
    /// zero onward actions.
    pub(crate) fn record_wasted(&mut self, cause: CauseClass, kind: &'static str, dst: usize) {
        self.messages.entry((cause, kind)).or_default().wasted += 1;
        self.nodes[dst].wasted += 1;
    }

    /// A deterministic, mergeable snapshot for manifests and benchmarks.
    ///
    /// Per-root cascade counts are folded into a size histogram here:
    /// root event ids are only dense *within* a run, so summaries from
    /// different runs can merge without id collisions.
    pub fn summary(&self) -> ProvenanceSummary {
        let mut cascade_sizes = Histogram::new();
        for &size in self.cascades.values() {
            cascade_sizes.observe(size);
        }
        ProvenanceSummary {
            roots: self.roots,
            messages: self
                .messages
                .iter()
                .map(|(&(cause, kind), &stats)| ((cause.label(), kind), stats))
                .collect(),
            flame: self
                .flame
                .iter()
                .map(|(&(cause, kind, bucket), &count)| {
                    (
                        (cause.label(), kind, Histogram::bucket_bounds(bucket).0),
                        count,
                    )
                })
                .collect(),
            depth: self
                .depth
                .iter()
                .map(|(&cause, hist)| (cause.label(), hist.clone()))
                .collect(),
            cascade_sizes,
            nodes: self.nodes.clone(),
        }
    }
}

/// A deterministic, mergeable snapshot of a [`CausalLedger`] — what
/// manifests record and `exp_chaos`/`exp_perf` aggregate across runs.
///
/// Cause classes appear as their stable labels so the snapshot is
/// self-describing once serialized.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProvenanceSummary {
    /// Number of root events (bootstrap actions and scheduled faults).
    pub roots: u64,
    /// (cause label, message kind) → stats.
    pub messages: BTreeMap<(&'static str, &'static str), KindStats>,
    /// (cause label, message kind, depth-bucket lower bound) → delivered
    /// count.
    pub flame: BTreeMap<(&'static str, &'static str, u64), u64>,
    /// Per-cause causal-depth histograms (log₂-bucketed).
    pub depth: BTreeMap<&'static str, Histogram>,
    /// Distribution of cascade sizes: processed descendants per root.
    pub cascade_sizes: Histogram,
    /// Per-node tallies, indexed by node.
    pub nodes: Vec<NodeTally>,
}

impl ProvenanceSummary {
    /// Total deliveries attributed across all (cause, kind) cells.
    pub fn delivered(&self) -> u64 {
        self.messages.values().map(|s| s.delivered).sum()
    }

    /// Total deliveries tagged as wasted work.
    pub fn wasted(&self) -> u64 {
        self.messages.values().map(|s| s.wasted).sum()
    }

    /// Total link-layer transmissions attributed.
    pub fn sent(&self) -> u64 {
        self.messages.values().map(|s| s.sent).sum()
    }

    /// Folds `other` into `self`, cell-wise.
    pub fn merge(&mut self, other: &ProvenanceSummary) {
        self.roots += other.roots;
        for (key, stats) in &other.messages {
            let cell = self.messages.entry(*key).or_default();
            cell.sent += stats.sent;
            cell.delivered += stats.delivered;
            cell.wasted += stats.wasted;
        }
        for (key, count) in &other.flame {
            *self.flame.entry(*key).or_insert(0) += count;
        }
        for (cause, hist) in &other.depth {
            self.depth.entry(cause).or_default().merge(hist);
        }
        self.cascade_sizes.merge(&other.cascade_sizes);
        if self.nodes.len() < other.nodes.len() {
            self.nodes.resize(other.nodes.len(), NodeTally::default());
        }
        for (mine, theirs) in self.nodes.iter_mut().zip(&other.nodes) {
            mine.sent += theirs.sent;
            mine.received += theirs.received;
            mine.wasted += theirs.wasted;
        }
    }

    /// Mirrors the ledger aggregates into the canonical metrics registry
    /// (the `prov.*` family), so manifests and `obs summarize` pick them
    /// up without schema-specific handling.
    pub fn record_metrics(&self, metrics: &mut Metrics) {
        metrics.add("prov.roots", self.roots);
        metrics.add("prov.wasted", self.wasted());
        for hist in self.depth.values() {
            metrics.merge_hist("prov.depth", hist);
        }
        metrics.merge_hist("prov.cascade", &self.cascade_sizes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Provenance;

    fn sample() -> CausalLedger {
        let mut ledger = CausalLedger::new(3);
        let root = Provenance::root(1, CauseClass::Bootstrap);
        let child = Provenance::child(&root, 2, CauseClass::Bootstrap);
        ledger.record_event(&root);
        ledger.record_send(CauseClass::Bootstrap, "hello", 0);
        ledger.record_event(&child);
        ledger.record_delivery(CauseClass::Bootstrap, "hello", 1, child.depth);
        ledger.record_wasted(CauseClass::Bootstrap, "hello", 1);
        ledger
    }

    #[test]
    fn ledger_counts_and_summary_totals_agree() {
        let summary = sample().summary();
        assert_eq!(summary.roots, 1);
        assert_eq!(summary.sent(), 1);
        assert_eq!(summary.delivered(), 1);
        assert_eq!(summary.wasted(), 1);
        assert_eq!(summary.nodes[0].sent, 1);
        assert_eq!(summary.nodes[1].received, 1);
        assert_eq!(summary.nodes[1].wasted, 1);
        // one cascade with exactly one descendant
        assert_eq!(summary.cascade_sizes.count(), 1);
        assert_eq!(summary.cascade_sizes.max(), Some(1));
        // the flame cell keys by depth-bucket lower bound
        assert_eq!(
            summary.flame.get(&("bootstrap", "hello", 1)).copied(),
            Some(1)
        );
    }

    #[test]
    fn merge_is_cell_wise_addition() {
        let a = sample().summary();
        let mut twice = a.clone();
        twice.merge(&a);
        assert_eq!(twice.roots, 2);
        assert_eq!(twice.delivered(), 2);
        assert_eq!(twice.wasted(), 2);
        assert_eq!(twice.messages.get(&("bootstrap", "hello")).unwrap().sent, 2);
        assert_eq!(twice.cascade_sizes.count(), 2);
        assert_eq!(twice.nodes[1].received, 2);
    }

    #[test]
    fn summary_metrics_land_under_the_prov_family() {
        let summary = sample().summary();
        let mut metrics = Metrics::default();
        summary.record_metrics(&mut metrics);
        assert_eq!(metrics.counter("prov.roots"), 1);
        assert_eq!(metrics.counter("prov.wasted"), 1);
        assert_eq!(metrics.hist("prov.depth").unwrap().count(), 1);
        assert_eq!(metrics.hist("prov.cascade").unwrap().count(), 1);
    }
}
