//! Simulated time.
//!
//! Time is a monotone `u64` tick counter. With the default link latency of
//! one tick, a tick corresponds to one synchronous *round* in the sense of
//! Onus et al., which is the unit all convergence results are stated in.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time (ticks since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Time(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);
    /// The largest representable time (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    #[inline]
    pub fn saturating_add(self, delta: u64) -> Time {
        Time(self.0.saturating_add(delta))
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time(10);
        assert_eq!(t + 5, Time(15));
        assert_eq!(Time(15) - t, 5);
        let mut u = t;
        u += 7;
        assert_eq!(u, Time(17));
    }

    #[test]
    fn ordering() {
        assert!(Time::ZERO < Time(1));
        assert!(Time(1) < Time::MAX);
    }

    #[test]
    fn saturating() {
        assert_eq!(Time::MAX.saturating_add(10), Time::MAX);
    }
}
