//! Optional execution tracing with pluggable sinks.
//!
//! The figure binaries (E1–E3) print step-by-step protocol behaviour; the
//! determinism integration test asserts that two runs with the same seed
//! produce byte-identical traces. Tracing is off by default and costs one
//! branch per event when disabled.
//!
//! Three recording backends are available:
//!
//! * [`TraceSink::memory`] — unbounded in-memory buffer (tests, short
//!   figure runs);
//! * [`TraceSink::ring`] — bounded ring buffer keeping the **last** `cap`
//!   events (long runs where only the tail matters);
//! * [`TraceSink::jsonl_file`] — streaming JSON-Lines file sink with a
//!   stable, hand-rolled schema (see [`event_to_jsonl`]) for offline
//!   analysis with the `obs` CLI.
//!
//! In-memory sinks support non-destructive [`TraceSink::snapshot`] and
//! draining [`TraceSink::take`]; prefer `take` when the events are consumed
//! exactly once — it moves the buffer out instead of cloning it.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::event::Provenance;
use crate::time::Time;

/// One traced simulator event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A message was handed to the link layer.
    Send {
        /// Send time.
        at: Time,
        /// Sender.
        from: usize,
        /// Receiver (physical neighbor).
        to: usize,
        /// Protocol-reported message kind.
        kind: &'static str,
        /// Causal provenance of the transmitted copy.
        prov: Provenance,
    },
    /// A message arrived and was delivered to the protocol.
    Deliver {
        /// Delivery time.
        at: Time,
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Protocol-reported message kind.
        kind: &'static str,
        /// Causal provenance (same `pid` as the matching `Send`).
        prov: Provenance,
    },
    /// A message was lost (link drop, dead endpoint, vanished link).
    Lost {
        /// Time of loss.
        at: Time,
        /// Sender.
        from: usize,
        /// Intended receiver.
        to: usize,
        /// Why it was lost.
        reason: &'static str,
        /// Causal provenance (same `pid` as the matching `Send`).
        prov: Provenance,
    },
    /// A protocol timer fired (whether or not the node was alive to
    /// handle it) — recorded so `obs causes` can resolve timer links in
    /// a causal chain.
    TimerFired {
        /// Firing time.
        at: Time,
        /// Node whose timer fired.
        node: usize,
        /// Token the node passed to `Ctx::set_timer`.
        token: u64,
        /// Causal provenance of the timer event.
        prov: Provenance,
    },
    /// A fault was applied.
    Fault {
        /// Application time.
        at: Time,
        /// Human-readable description.
        desc: String,
        /// Causal provenance (faults are lineage roots).
        prov: Provenance,
    },
    /// A protocol-emitted annotation (via `Ctx::note`).
    Note {
        /// Emission time.
        at: Time,
        /// Emitting node.
        node: usize,
        /// Annotation text.
        text: String,
    },
    /// A structured diagnosis from an observer (e.g. the freeze watchdog
    /// or an invariant checker) — network-global, not tied to one node.
    Diag {
        /// Emission time.
        at: Time,
        /// Which observer produced the diagnosis (e.g. `"watchdog"`).
        source: &'static str,
        /// Diagnosis text.
        text: String,
    },
}

/// Serializes one event as a JSON-Lines record (no trailing newline).
///
/// The field names are a stable contract consumed by `obs trace`:
/// every record has `"ev"` (`send` / `deliver` / `lost` / `timer` /
/// `fault` / `note` / `diag`) and `"at"`; message events add `"from"`,
/// `"to"` and `"kind"` or `"reason"`; timers add `"node"` and `"token"`;
/// faults add `"desc"`; notes add `"node"` and `"text"`; diagnoses add
/// `"source"` and `"text"`. Simulator events (everything but `note` /
/// `diag`) also carry provenance: `"pid"`, `"parent"` (omitted for
/// lineage roots), `"depth"` and `"cause"` — the fields `obs causes`
/// walks and `obs flame` folds.
pub fn event_to_jsonl(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Send {
            at,
            from,
            to,
            kind,
            prov,
        } => format!(
            "{{\"ev\":\"send\",\"at\":{},\"from\":{from},\"to\":{to},\"kind\":\"{kind}\"{}}}",
            at.ticks(),
            prov_fields(prov)
        ),
        TraceEvent::Deliver {
            at,
            from,
            to,
            kind,
            prov,
        } => format!(
            "{{\"ev\":\"deliver\",\"at\":{},\"from\":{from},\"to\":{to},\"kind\":\"{kind}\"{}}}",
            at.ticks(),
            prov_fields(prov)
        ),
        TraceEvent::Lost {
            at,
            from,
            to,
            reason,
            prov,
        } => format!(
            "{{\"ev\":\"lost\",\"at\":{},\"from\":{from},\"to\":{to},\"reason\":\"{reason}\"{}}}",
            at.ticks(),
            prov_fields(prov)
        ),
        TraceEvent::TimerFired {
            at,
            node,
            token,
            prov,
        } => format!(
            "{{\"ev\":\"timer\",\"at\":{},\"node\":{node},\"token\":{token}{}}}",
            at.ticks(),
            prov_fields(prov)
        ),
        TraceEvent::Fault { at, desc, prov } => format!(
            "{{\"ev\":\"fault\",\"at\":{},\"desc\":\"{}\"{}}}",
            at.ticks(),
            escape_json(desc),
            prov_fields(prov)
        ),
        TraceEvent::Note { at, node, text } => format!(
            "{{\"ev\":\"note\",\"at\":{},\"node\":{node},\"text\":\"{}\"}}",
            at.ticks(),
            escape_json(text)
        ),
        TraceEvent::Diag { at, source, text } => format!(
            "{{\"ev\":\"diag\",\"at\":{},\"source\":\"{source}\",\"text\":\"{}\"}}",
            at.ticks(),
            escape_json(text)
        ),
    }
}

/// The provenance tail shared by simulator-event records: `,"pid":N`,
/// then `,"parent":M` unless the event is a lineage root, then
/// `,"depth":D,"cause":"<label>"`.
fn prov_fields(prov: &Provenance) -> String {
    let parent = match prov.parent {
        Some(id) => format!(",\"parent\":{id}"),
        None => String::new(),
    };
    format!(
        ",\"pid\":{}{parent},\"depth\":{},\"cause\":\"{}\"",
        prov.id,
        prov.depth,
        prov.cause.label()
    )
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

enum Backend {
    Memory(Vec<TraceEvent>),
    Ring {
        buf: VecDeque<TraceEvent>,
        cap: usize,
        dropped: u64,
    },
    Jsonl {
        out: BufWriter<File>,
        path: PathBuf,
        written: u64,
    },
}

/// Where trace events go.
#[derive(Clone, Default)]
pub struct TraceSink {
    backend: Option<Arc<Mutex<Backend>>>,
}

impl TraceSink {
    /// A sink that discards everything (the default).
    pub fn disabled() -> Self {
        TraceSink { backend: None }
    }

    /// A sink that records into a shared, unbounded in-memory buffer.
    pub fn memory() -> Self {
        TraceSink {
            backend: Some(Arc::new(Mutex::new(Backend::Memory(Vec::new())))),
        }
    }

    /// A sink that keeps only the **last** `cap` events (older events are
    /// dropped; the drop count is tracked).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn ring(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        TraceSink {
            backend: Some(Arc::new(Mutex::new(Backend::Ring {
                buf: VecDeque::with_capacity(cap),
                cap,
                dropped: 0,
            }))),
        }
    }

    /// A sink that streams events to `path` as JSON Lines, one event per
    /// line (see [`event_to_jsonl`] for the schema). Events are buffered;
    /// call [`TraceSink::flush`] (or drop the last clone) to sync.
    pub fn jsonl_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(TraceSink {
            backend: Some(Arc::new(Mutex::new(Backend::Jsonl {
                out: BufWriter::new(file),
                path,
                written: 0,
            }))),
        })
    }

    /// `true` if events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.backend.is_some()
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        let Some(backend) = &self.backend else { return };
        match &mut *backend.lock().unwrap() {
            Backend::Memory(buf) => buf.push(ev),
            Backend::Ring { buf, cap, dropped } => {
                if buf.len() == *cap {
                    buf.pop_front();
                    *dropped += 1;
                }
                buf.push_back(ev);
            }
            Backend::Jsonl { out, path, written } => {
                let line = event_to_jsonl(&ev);
                writeln!(out, "{line}")
                    .unwrap_or_else(|e| panic!("trace write to {} failed: {e}", path.display()));
                *written += 1;
            }
        }
    }

    /// A non-destructive copy of the buffered events (in-memory backends).
    /// The JSONL backend buffers nothing and returns an empty vec.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.backend {
            None => Vec::new(),
            Some(backend) => match &*backend.lock().unwrap() {
                Backend::Memory(buf) => buf.clone(),
                Backend::Ring { buf, .. } => buf.iter().cloned().collect(),
                Backend::Jsonl { .. } => Vec::new(),
            },
        }
    }

    /// Drains the buffered events, leaving the sink empty. Cheaper than
    /// [`TraceSink::snapshot`] — the buffer is moved out, not cloned. The
    /// JSONL backend buffers nothing and returns an empty vec.
    pub fn take(&self) -> Vec<TraceEvent> {
        match &self.backend {
            None => Vec::new(),
            Some(backend) => match &mut *backend.lock().unwrap() {
                Backend::Memory(buf) => std::mem::take(buf),
                Backend::Ring { buf, .. } => std::mem::take(buf).into_iter().collect(),
                Backend::Jsonl { .. } => Vec::new(),
            },
        }
    }

    /// Number of recorded (JSONL: written) events currently accounted for.
    pub fn len(&self) -> usize {
        match &self.backend {
            None => 0,
            Some(backend) => match &*backend.lock().unwrap() {
                Backend::Memory(buf) => buf.len(),
                Backend::Ring { buf, .. } => buf.len(),
                Backend::Jsonl { written, .. } => *written as usize,
            },
        }
    }

    /// `true` when no events have been recorded (or recording is off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped by a full ring buffer (0 for other backends).
    pub fn dropped(&self) -> u64 {
        match &self.backend {
            Some(backend) => match &*backend.lock().unwrap() {
                Backend::Ring { dropped, .. } => *dropped,
                _ => 0,
            },
            None => 0,
        }
    }

    /// Flushes a JSONL backend to disk (no-op for the others).
    pub fn flush(&self) -> io::Result<()> {
        if let Some(backend) = &self.backend {
            if let Backend::Jsonl { out, .. } = &mut *backend.lock().unwrap() {
                out.flush()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CauseClass;

    fn prov(id: u64) -> Provenance {
        Provenance::root(id, CauseClass::Bootstrap)
    }

    #[test]
    fn disabled_sink_discards() {
        let sink = TraceSink::disabled();
        assert!(!sink.enabled());
        sink.record(TraceEvent::Note {
            at: Time(1),
            node: 0,
            text: "x".into(),
        });
        assert!(sink.is_empty());
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = TraceSink::memory();
        assert!(sink.enabled());
        for i in 0..3 {
            sink.record(TraceEvent::Note {
                at: Time(i),
                node: 0,
                text: format!("{i}"),
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        match &snap[2] {
            TraceEvent::Note { at, text, .. } => {
                assert_eq!(*at, Time(2));
                assert_eq!(text, "2");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::memory();
        let clone = sink.clone();
        clone.record(TraceEvent::Fault {
            at: Time(0),
            desc: "crash".into(),
            prov: prov(0),
        });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn take_drains_snapshot_does_not() {
        let sink = TraceSink::memory();
        for i in 0..4 {
            sink.record(TraceEvent::Note {
                at: Time(i),
                node: 0,
                text: String::new(),
            });
        }
        assert_eq!(sink.snapshot().len(), 4);
        assert_eq!(sink.len(), 4, "snapshot must not drain");
        let taken = sink.take();
        assert_eq!(taken.len(), 4);
        assert!(sink.is_empty(), "take must drain");
        assert!(sink.take().is_empty());
    }

    #[test]
    fn ring_keeps_the_tail() {
        let sink = TraceSink::ring(3);
        for i in 0..10u64 {
            sink.record(TraceEvent::Note {
                at: Time(i),
                node: 0,
                text: String::new(),
            });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let snap = sink.snapshot();
        match &snap[0] {
            TraceEvent::Note { at, .. } => assert_eq!(*at, Time(7)),
            _ => panic!(),
        }
    }

    #[test]
    fn jsonl_sink_streams_stable_lines() {
        let dir = std::env::temp_dir().join("ssr_sim_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace_test.jsonl");
        let sink = TraceSink::jsonl_file(&path).unwrap();
        sink.record(TraceEvent::Send {
            at: Time(3),
            from: 1,
            to: 2,
            kind: "notify",
            prov: Provenance {
                id: 7,
                parent: std::num::NonZeroU64::new(3),
                root: 3,
                depth: 2,
                cause: CauseClass::LinearizationStep,
            },
        });
        sink.record(TraceEvent::Note {
            at: Time(4),
            node: 2,
            text: "say \"hi\"\n".into(),
        });
        assert_eq!(sink.len(), 2);
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"send\",\"at\":3,\"from\":1,\"to\":2,\"kind\":\"notify\",\
             \"pid\":7,\"parent\":3,\"depth\":2,\"cause\":\"linearization-step\"}\n\
             {\"ev\":\"note\",\"at\":4,\"node\":2,\"text\":\"say \\\"hi\\\"\\n\"}\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_schema_covers_every_variant() {
        let evs = [
            TraceEvent::Send {
                at: Time(1),
                from: 0,
                to: 1,
                kind: "k",
                prov: prov(0),
            },
            TraceEvent::Deliver {
                at: Time(2),
                from: 0,
                to: 1,
                kind: "k",
                prov: prov(0),
            },
            TraceEvent::Lost {
                at: Time(3),
                from: 0,
                to: 1,
                reason: "r",
                prov: prov(0),
            },
            TraceEvent::TimerFired {
                at: Time(4),
                node: 7,
                token: 260,
                prov: prov(1),
            },
            TraceEvent::Fault {
                at: Time(4),
                desc: "d".into(),
                prov: prov(2),
            },
            TraceEvent::Note {
                at: Time(5),
                node: 9,
                text: "t".into(),
            },
            TraceEvent::Diag {
                at: Time(6),
                source: "watchdog",
                text: "frozen".into(),
            },
        ];
        let kinds: Vec<String> = evs
            .iter()
            .map(|e| {
                let line = event_to_jsonl(e);
                assert!(line.starts_with("{\"ev\":\""), "{line}");
                assert!(line.contains("\"at\":"), "{line}");
                line
            })
            .collect();
        assert!(kinds[2].contains("\"reason\":\"r\""));
        assert!(kinds[3].contains("\"ev\":\"timer\""));
        assert!(kinds[3].contains("\"token\":260"));
        assert!(kinds[4].contains("\"desc\":\"d\""));
        assert!(kinds[5].contains("\"node\":9"));
        assert!(kinds[6].contains("\"source\":\"watchdog\""));
        assert!(kinds[6].contains("\"text\":\"frozen\""));
        // simulator events carry provenance; roots omit "parent"
        for line in &kinds[..5] {
            assert!(line.contains("\"pid\":"), "{line}");
            assert!(line.contains("\"cause\":\"bootstrap\""), "{line}");
            assert!(!line.contains("\"parent\":"), "{line}");
            assert!(line.contains("\"depth\":0"), "{line}");
        }
        // annotations carry none
        for line in &kinds[5..] {
            assert!(!line.contains("\"pid\":"), "{line}");
        }
    }
}
