//! Optional execution tracing.
//!
//! The figure binaries (E1–E3) print step-by-step protocol behaviour; the
//! determinism integration test asserts that two runs with the same seed
//! produce byte-identical traces. Tracing is off by default and costs one
//! branch per event when disabled.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::Time;

/// One traced simulator event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A message was handed to the link layer.
    Send {
        /// Send time.
        at: Time,
        /// Sender.
        from: usize,
        /// Receiver (physical neighbor).
        to: usize,
        /// Protocol-reported message kind.
        kind: &'static str,
    },
    /// A message arrived and was delivered to the protocol.
    Deliver {
        /// Delivery time.
        at: Time,
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Protocol-reported message kind.
        kind: &'static str,
    },
    /// A message was lost (link drop, dead endpoint, vanished link).
    Lost {
        /// Time of loss.
        at: Time,
        /// Sender.
        from: usize,
        /// Intended receiver.
        to: usize,
        /// Why it was lost.
        reason: &'static str,
    },
    /// A fault was applied.
    Fault {
        /// Application time.
        at: Time,
        /// Human-readable description.
        desc: String,
    },
    /// A protocol-emitted annotation (via `Ctx::note`).
    Note {
        /// Emission time.
        at: Time,
        /// Emitting node.
        node: usize,
        /// Annotation text.
        text: String,
    },
}

/// Where trace events go.
#[derive(Clone, Default)]
pub struct TraceSink {
    buffer: Option<Arc<Mutex<Vec<TraceEvent>>>>,
}

impl TraceSink {
    /// A sink that discards everything (the default).
    pub fn disabled() -> Self {
        TraceSink { buffer: None }
    }

    /// A sink that records into a shared in-memory buffer.
    pub fn memory() -> Self {
        TraceSink {
            buffer: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// `true` if events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.buffer.is_some()
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if let Some(buf) = &self.buffer {
            buf.lock().push(ev);
        }
    }

    /// Takes a snapshot of all recorded events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.buffer {
            Some(buf) => buf.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.buffer.as_ref().map_or(0, |b| b.lock().len())
    }

    /// `true` when no events have been recorded (or recording is off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_discards() {
        let sink = TraceSink::disabled();
        assert!(!sink.enabled());
        sink.record(TraceEvent::Note {
            at: Time(1),
            node: 0,
            text: "x".into(),
        });
        assert!(sink.is_empty());
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = TraceSink::memory();
        assert!(sink.enabled());
        for i in 0..3 {
            sink.record(TraceEvent::Note {
                at: Time(i),
                node: 0,
                text: format!("{i}"),
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        match &snap[2] {
            TraceEvent::Note { at, text, .. } => {
                assert_eq!(*at, Time(2));
                assert_eq!(text, "2");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::memory();
        let clone = sink.clone();
        clone.record(TraceEvent::Fault {
            at: Time(0),
            desc: "crash".into(),
        });
        assert_eq!(sink.len(), 1);
    }
}
