//! Freeze watchdog: detects livelock / fixpoint-without-convergence.
//!
//! DESIGN.md finding 7 documents VRR runs freezing in a *crossing state*:
//! two non-adjacent mutual virtual edges, every node locally consistent,
//! periodic timers still firing — so the run never goes quiescent and never
//! converges, silently burning the whole tick budget. The watchdog turns
//! that failure mode into a first-class, classified outcome.
//!
//! It is a [probe](crate::Simulator::add_probe) factory, generic over the
//! protocol: the caller supplies a **signature** function (a hash of all
//! ring-relevant protocol state), a **convergence** predicate, and a
//! **local-consistency** predicate. If the signature stops changing for
//! `freeze_window` ticks without convergence, the run is frozen:
//!
//! * every node locally consistent → [`Verdict::FrozenCrossing`] — the
//!   crossing state (globally wrong fixpoint of locally happy nodes);
//! * otherwise → [`Verdict::FrozenStuck`] — a plain stuck state.
//!
//! On the transition to frozen the watchdog increments
//! `probe.watchdog_frozen` and dumps a structured [`TraceEvent::Diag`]
//! into the trace; experiments surface the verdict in their manifests.
//! State is shared through an `Rc<RefCell<_>>` handle so the experiment's
//! stop-condition can fail fast instead of running to the budget.

use std::cell::RefCell;
use std::rc::Rc;

use crate::sim::{ProbeView, Protocol};
use crate::trace::TraceEvent;

/// Classification of the run as seen by the watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// State is still changing (or the watchdog has not fired yet).
    Active,
    /// The convergence predicate holds.
    Converged,
    /// Frozen with every node locally consistent — the VRR crossing state:
    /// a globally inconsistent fixpoint no local rule will ever leave.
    FrozenCrossing,
    /// Frozen with at least one node still locally inconsistent.
    FrozenStuck,
}

impl Verdict {
    /// Stable machine-readable label used in manifests and diagnostics:
    /// `active`, `converged`, `frozen_crossing`, `frozen_stuck`.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Active => "active",
            Verdict::Converged => "converged",
            Verdict::FrozenCrossing => "frozen_crossing",
            Verdict::FrozenStuck => "frozen_stuck",
        }
    }

    /// `true` for either frozen classification.
    pub fn is_frozen(self) -> bool {
        matches!(self, Verdict::FrozenCrossing | Verdict::FrozenStuck)
    }
}

/// Watchdog state, shared between the probe and the experiment loop.
#[derive(Clone, Debug)]
pub struct WatchdogState {
    /// Current classification.
    pub verdict: Verdict,
    /// Tick at which the signature last changed.
    pub last_change: u64,
    /// Most recent signature (None until the first firing).
    pub last_sig: Option<u64>,
    /// Tick at which the run was first classified frozen, if ever.
    pub frozen_at: Option<u64>,
    /// Number of distinct freeze episodes (a fault can thaw a freeze).
    pub freezes: u64,
}

impl WatchdogState {
    fn new() -> Self {
        WatchdogState {
            verdict: Verdict::Active,
            last_change: 0,
            last_sig: None,
            frozen_at: None,
            freezes: 0,
        }
    }

    /// `true` if the current verdict is a freeze.
    pub fn is_frozen(&self) -> bool {
        self.verdict.is_frozen()
    }
}

/// Shared handle to a [`WatchdogState`].
pub type SharedWatchdog = Rc<RefCell<WatchdogState>>;

/// A fresh shared watchdog state (verdict [`Verdict::Active`]).
pub fn shared_watchdog() -> SharedWatchdog {
    Rc::new(RefCell::new(WatchdogState::new()))
}

/// Builds the watchdog probe. Register it with
/// [`Simulator::add_probe`](crate::Simulator::add_probe); pick a probe
/// interval that divides `freeze_window` a few times over (e.g. window 64,
/// interval 8) so freezes are detected promptly.
///
/// * `signature` — hash of all convergence-relevant protocol state; the
///   watchdog only compares it for equality between firings.
/// * `converged` — the experiment's convergence predicate.
/// * `locally_consistent` — `true` when *every* node is locally happy;
///   distinguishes the crossing state from a plain stuck state.
///
/// The O(n) `signature` and `converged` scans are gated on
/// [`ProbeView::state_gen`]: when nothing in the simulation changed since
/// the previous firing (no callback ran, no fault applied), the cached
/// results are exact and are reused, so a watchdog grid crossing a long
/// idle tick range costs O(1) per grid point. The freeze-window clock
/// still advances every firing — caching never delays a freeze verdict.
pub fn watchdog_probe<P, S, C, L>(
    freeze_window: u64,
    state: SharedWatchdog,
    mut signature: S,
    mut converged: C,
    mut locally_consistent: L,
) -> impl FnMut(&mut ProbeView<'_, P>)
where
    P: Protocol,
    S: FnMut(&[P]) -> u64,
    C: FnMut(&[P]) -> bool,
    L: FnMut(&[P]) -> bool,
{
    assert!(freeze_window > 0, "freeze window must be positive");
    // (state_gen, signature, converged) at the most recent full scan.
    let mut scanned: Option<(u64, u64, bool)> = None;
    move |view: &mut ProbeView<'_, P>| {
        let now = view.now.ticks();
        let (sig, is_converged) = match scanned {
            Some((gen, sig, conv)) if gen == view.state_gen => (sig, conv),
            _ => {
                let sig = signature(view.protocols);
                let conv = converged(view.protocols);
                scanned = Some((view.state_gen, sig, conv));
                (sig, conv)
            }
        };
        let mut st = state.borrow_mut();
        if st.last_sig != Some(sig) {
            // state changed: thaw
            st.last_sig = Some(sig);
            st.last_change = now;
            if st.verdict != Verdict::Converged {
                st.verdict = Verdict::Active;
            }
        }
        if is_converged {
            st.verdict = Verdict::Converged;
            return;
        }
        let was_frozen = st.verdict.is_frozen();
        if now.saturating_sub(st.last_change) >= freeze_window {
            if !was_frozen {
                let verdict = if locally_consistent(view.protocols) {
                    Verdict::FrozenCrossing
                } else {
                    Verdict::FrozenStuck
                };
                st.verdict = verdict;
                st.frozen_at = Some(now);
                st.freezes += 1;
                view.metrics.incr("probe.watchdog_frozen");
                if view.trace.enabled() {
                    view.trace.record(TraceEvent::Diag {
                        at: view.now,
                        source: "watchdog",
                        text: format!(
                            "verdict={} unchanged_since={} window={} pending={}",
                            verdict.label(),
                            st.last_change,
                            freeze_window,
                            view.pending_events
                        ),
                    });
                }
            }
        } else if st.verdict != Verdict::Converged {
            st.verdict = Verdict::Active;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::{Ctx, Simulator};
    use crate::trace::TraceSink;
    use ssr_graph::generators;

    /// Beacons forever; `value` never changes after `settle` ticks.
    #[derive(Clone)]
    struct Beacon {
        value: u64,
        settle: u64,
        happy: bool,
    }
    impl Protocol for Beacon {
        type Msg = ();
        fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(1, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: usize, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
            if ctx.now().ticks() < self.settle {
                self.value += 1;
            }
            ctx.set_timer(1, 0);
        }
        fn reset(&mut self) {
            self.value = 0;
        }
    }

    fn beacon_sim(settle: u64, happy: bool, trace: TraceSink) -> Simulator<Beacon> {
        let topo = generators::line(3);
        let protos = vec![
            Beacon {
                value: 0,
                settle,
                happy,
            };
            3
        ];
        Simulator::with_trace(topo, protos, LinkConfig::ideal(), 1, trace)
    }

    fn sig(ps: &[Beacon]) -> u64 {
        ps.iter()
            .fold(0u64, |h, p| h.rotate_left(7) ^ p.value.wrapping_mul(31))
    }

    #[test]
    fn classifies_crossing_state_and_fails_fast() {
        let trace = TraceSink::memory();
        let mut sim = beacon_sim(20, true, trace.clone());
        let state = shared_watchdog();
        let st = Rc::clone(&state);
        sim.add_probe(
            4,
            watchdog_probe(
                32,
                state,
                sig,
                |_| false,
                |ps: &[Beacon]| ps.iter().all(|p| p.happy),
            ),
        );
        let st2 = Rc::clone(&st);
        let outcome = sim.run_until_stable(8, 100_000, move |_, _| st2.borrow().is_frozen());
        // fail-fast: stopped as soon as the freeze was classified, not at
        // the 100k budget
        assert!(outcome.time().ticks() < 200, "{:?}", outcome);
        let st = st.borrow();
        assert_eq!(st.verdict, Verdict::FrozenCrossing);
        assert_eq!(st.freezes, 1);
        assert!(st.frozen_at.unwrap() >= 20 + 32);
        assert_eq!(sim.metrics().counter("probe.watchdog_frozen"), 1);
        // a structured diagnosis landed in the trace
        let diags: Vec<String> = trace
            .take()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Diag { source, text, .. } => Some(format!("{source}: {text}")),
                _ => None,
            })
            .collect();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].contains("watchdog: verdict=frozen_crossing"));
    }

    #[test]
    fn locally_inconsistent_freeze_is_stuck_not_crossing() {
        let mut sim = beacon_sim(10, false, TraceSink::disabled());
        let state = shared_watchdog();
        let st = Rc::clone(&state);
        sim.add_probe(
            4,
            watchdog_probe(
                24,
                state,
                sig,
                |_| false,
                |ps: &[Beacon]| ps.iter().all(|p| p.happy),
            ),
        );
        let st2 = Rc::clone(&st);
        sim.run_until_stable(8, 10_000, move |_, _| st2.borrow().is_frozen());
        assert_eq!(st.borrow().verdict, Verdict::FrozenStuck);
        assert_eq!(sim.metrics().counter("probe.watchdog_frozen"), 1);
    }

    #[test]
    fn convergence_wins_over_freeze() {
        let mut sim = beacon_sim(5, true, TraceSink::disabled());
        let state = shared_watchdog();
        let st = Rc::clone(&state);
        sim.add_probe(
            4,
            watchdog_probe(16, state, sig, |_| true, |_: &[Beacon]| true),
        );
        let st2 = Rc::clone(&st);
        sim.run_until_stable(8, 1_000, move |_, _| {
            st2.borrow().verdict == Verdict::Converged
        });
        assert_eq!(st.borrow().verdict, Verdict::Converged);
        assert_eq!(st.borrow().freezes, 0);
        assert_eq!(sim.metrics().counter("probe.watchdog_frozen"), 0);
    }

    /// Sleeps 1000 ticks between timers; state never changes.
    #[derive(Clone)]
    struct Sleeper;
    impl Protocol for Sleeper {
        type Msg = ();
        fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(1_000, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: usize, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
            ctx.set_timer(1_000, 0);
        }
        fn reset(&mut self) {}
    }

    /// Edge case: the freeze window elapses entirely inside an empty tick
    /// range (the next event is 1000 ticks out). The watchdog grid must
    /// keep walking across the fast-forwarded range — and with nothing
    /// changing, every firing after the first hits the state_gen-cached
    /// scan — so the freeze is classified at tick 64, not at tick 1000.
    #[test]
    fn freeze_window_spans_a_fast_forward() {
        let topo = generators::line(3);
        let mut sim = Simulator::with_trace(
            topo,
            vec![Sleeper; 3],
            LinkConfig::ideal(),
            1,
            TraceSink::disabled(),
        );
        let state = shared_watchdog();
        let st = Rc::clone(&state);
        sim.add_probe(
            8,
            watchdog_probe(64, state, |_: &[Sleeper]| 42, |_| false, |_| true),
        );
        let st2 = Rc::clone(&st);
        let outcome = sim.run_until_stable(8, 10_000, move |_, _| st2.borrow().is_frozen());
        assert_eq!(st.borrow().verdict, Verdict::FrozenCrossing);
        assert_eq!(st.borrow().frozen_at, Some(64));
        assert!(
            outcome.time().ticks() < 1_000,
            "must fail fast inside the empty range, got {:?}",
            outcome
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Verdict::Active.label(), "active");
        assert_eq!(Verdict::Converged.label(), "converged");
        assert_eq!(Verdict::FrozenCrossing.label(), "frozen_crossing");
        assert_eq!(Verdict::FrozenStuck.label(), "frozen_stuck");
        assert!(Verdict::FrozenCrossing.is_frozen());
        assert!(!Verdict::Converged.is_frozen());
    }

    #[test]
    #[should_panic(expected = "freeze window")]
    fn zero_window_panics() {
        let _ = watchdog_probe::<Beacon, _, _, _>(0, shared_watchdog(), sig, |_| false, |_| true);
    }
}
