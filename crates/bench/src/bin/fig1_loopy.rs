//! **E1 — Figure 1: the loopy state.**
//!
//! The paper's Figure 1 shows a virtual ring over the addresses
//! {1, 4, 9, 13, 18, 21, 25, 29} that is *locally* consistent — every node
//! has exactly one successor and one predecessor — yet winds the address
//! space twice: 1 → 9 → 18 → 25 → 4 → 13 → 21 → 29 → 1. Read on the line
//! instead, the inconsistency becomes locally visible: nodes 1 and 4 have
//! two right neighbors, nodes 21 and 25 two left neighbors.
//!
//! This binary reproduces the figure operationally. The physical topology
//! *is* the doubly-wound cycle and the loopy pointers are injected as the
//! initial condition (the self-stabilization setting — each loopy successor
//! is the clockwise-closest physical neighbor, so the state is a genuine
//! flood-free fixpoint):
//!
//! 1. **ISPRP without the flood** — stays loopy forever (local consistency
//!    cannot detect the winding);
//! 2. **ISPRP with the representative flood** — detects and unwinds it;
//! 3. **linearized SSR** — resolves it with *zero* flood messages.
//!
//! This is a *narrative replay* of one fixed 8-node instance, not a sweep:
//! the three mechanism sections run serially in story order, so the
//! orchestrator's `--workers`/`--matrix` flags do not apply here (see
//! docs/SWEEPS.md for the sweep binaries).
//!
//! Run: `cargo run --release -p ssr-bench --bin fig1_loopy [-- --csv out.csv]`
//! Flags: `--trace-jsonl PATH` streams the ISPRP-with-flood run's event
//! trace to PATH as JSONL (one object per line; see `ssr_sim::trace`).

use std::collections::BTreeMap;

use ssr_bench::Args;
use ssr_core::bootstrap::{
    isprp_shape, make_isprp_nodes, run_linearized_bootstrap, BootstrapConfig,
};
use ssr_core::chaos;
use ssr_core::consistency::{classify_succ_map, RingShape};
use ssr_core::isprp::IsprpConfig;
use ssr_graph::{Graph, Labeling};
use ssr_obs::Value;
use ssr_sim::{LinkConfig, Simulator, TraceSink};
use ssr_types::NodeId;
use ssr_workloads::Table;

/// Figure 1's addresses.
const IDS: [u64; 8] = [1, 4, 9, 13, 18, 21, 25, 29];

/// The figure's world: the doubly-wound successor map comes from the chaos
/// scenario library (`wound_ring_succ` with 2 windings reproduces exactly
/// the figure's order 1,9,18,25,4,13,21,29), and the physical cycle *is*
/// that loopy order — each loopy successor is the clockwise-closest
/// physical neighbor, so the state is a fixpoint of flood-free ISPRP.
fn loopy_world() -> (Graph, Labeling, BTreeMap<NodeId, NodeId>) {
    let ids: Vec<NodeId> = IDS.iter().map(|&i| NodeId(i)).collect();
    let succ = chaos::wound_ring_succ(&ids, 2);
    let labels = Labeling::from_ids(ids);
    let mut g = Graph::new(IDS.len());
    for (&a, &b) in &succ {
        g.add_edge(labels.index(a).unwrap(), labels.index(b).unwrap());
    }
    (g, labels, succ)
}

/// Injects the doubly-wound successor pointers.
fn inject_loopy(
    nodes: &mut [ssr_core::isprp::IsprpNode],
    labels: &Labeling,
    succ: &BTreeMap<NodeId, NodeId>,
) {
    for (&a, &b) in succ {
        let ia = labels.index(a).unwrap();
        nodes[ia].inject_succ(ssr_core::route::SourceRoute::direct(a, b));
    }
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let (topo, labels, loopy_succ) = loopy_world();
    assert_eq!(
        classify_succ_map(&loopy_succ),
        RingShape::Loopy(2),
        "scenario library must reproduce the figure's double winding"
    );
    let mut man = ssr_bench::manifest(&args, "fig1_loopy");
    man.seed(1);

    println!("Figure 1 reproduction — the loopy state");
    println!("addresses: {IDS:?}");
    println!("physical cycle (= initial virtual ring): 1–9–18–25–4–13–21–29–1\n");

    let mut table = Table::new(
        "E1: resolving the loopy state",
        &[
            "mechanism",
            "converged",
            "final shape",
            "ticks",
            "flood msgs",
            "total msgs",
        ],
    );

    // -- ISPRP without flood ---------------------------------------------------
    // The loopy state is *injected* as the starting condition (the
    // self-stabilization setting: it may arise from a network merge or
    // stale state). Injection must precede the first protocol action —
    // otherwise transient hello-phase claims can leak cross-winding
    // knowledge through redirects and dissolve the loop by accident.
    {
        let cfg = IsprpConfig {
            enable_flood: false,
            ..IsprpConfig::default()
        };
        let mut nodes = make_isprp_nodes(&labels, cfg);
        inject_loopy(&mut nodes, &labels, &loopy_succ);
        let mut sim = Simulator::new(topo.clone(), nodes, LinkConfig::ideal(), 1);
        sim.run_until(ssr_sim::Time(5_000));
        let shape = isprp_shape(sim.protocols());
        let succ: std::collections::BTreeMap<NodeId, NodeId> = sim
            .protocols()
            .iter()
            .filter_map(|p| p.succ().map(|s| (p.id(), s)))
            .collect();
        println!("ISPRP (no flood) successor pointers after 5000 ticks:");
        for (a, b) in &succ {
            println!("  {a} → {b}");
        }
        println!(
            "  shape: {:?}  (locally consistent, globally loopy)\n",
            shape
        );
        assert_eq!(
            classify_succ_map(&succ),
            RingShape::Loopy(2),
            "expected the doubly-wound ring to persist"
        );
        table.row(&[
            "ISPRP, no flood".into(),
            "no".into(),
            format!("{shape:?}"),
            "5000+".into(),
            sim.metrics().counter("msg.flood").to_string(),
            sim.metrics().counter("tx.total").to_string(),
        ]);
        man.extra(
            "isprp_no_flood_tx",
            sim.metrics().counter("tx.total").into(),
        );
        man.extra("isprp_no_flood_shape", Value::Str(shape.label()));
    }

    // -- ISPRP with flood (same injected loopy start) ----------------------------
    {
        let cfg = IsprpConfig::default();
        let mut nodes = make_isprp_nodes(&labels, cfg);
        inject_loopy(&mut nodes, &labels, &loopy_succ);
        let sink = match args.opt("trace-jsonl") {
            Some(path) => {
                man.config("trace-jsonl", path);
                TraceSink::jsonl_file(path).expect("open trace file")
            }
            None => TraceSink::disabled(),
        };
        let mut sim =
            Simulator::with_trace(topo.clone(), nodes, LinkConfig::ideal(), 1, sink.clone());
        let outcome = sim.run_until_stable(8, 20_000, |nodes, _| {
            isprp_shape(nodes) == RingShape::ConsistentRing
        });
        let shape = isprp_shape(sim.protocols());
        println!(
            "ISPRP (with flood): {shape:?} at t={} (flood msgs: {})",
            outcome.time().ticks(),
            sim.metrics().counter("msg.flood")
        );
        assert_eq!(shape, RingShape::ConsistentRing);
        table.row(&[
            "ISPRP + flood".into(),
            "yes".into(),
            format!("{shape:?}"),
            outcome.time().ticks().to_string(),
            sim.metrics().counter("msg.flood").to_string(),
            sim.metrics().counter("tx.total").to_string(),
        ]);
        man.extra("isprp_flood_tx", sim.metrics().counter("tx.total").into());
        man.extra(
            "isprp_flood_msgs",
            sim.metrics().counter("msg.flood").into(),
        );
        man.extra("isprp_flood_ticks", outcome.time().ticks().into());
        sink.flush().expect("flush trace");
        if let Some(path) = args.opt("trace-jsonl") {
            println!("({} trace events streamed to {path})", sink.len());
        }
    }

    // -- linearized SSR -----------------------------------------------------------
    {
        let cfg = BootstrapConfig {
            max_ticks: 20_000,
            ..Default::default()
        };
        let (report, sim) = run_linearized_bootstrap(&topo, &labels, &cfg);
        println!(
            "linearized SSR: converged={} at t={} with zero floods",
            report.converged, report.ticks
        );
        println!("final ring (successor walk from node 1):");
        let mut cur = NodeId(1);
        for _ in 0..8 {
            let node = sim.protocols().iter().find(|p| p.id() == cur).unwrap();
            let next = node.ring_succ().unwrap();
            println!("  {cur} → {next}");
            cur = next;
        }
        assert!(report.converged);
        assert_eq!(
            report.messages.iter().find(|(k, _)| k == "msg.flood"),
            None,
            "the linearized bootstrap must not flood"
        );
        table.row(&[
            "linearized SSR".into(),
            "yes".into(),
            format!("{:?}", report.consistency.shape),
            report.ticks.to_string(),
            "0".into(),
            report.total_messages.to_string(),
        ]);
        // the manifest's full metrics + timeline come from the paper's
        // mechanism (the linearized run); the baselines are extras above
        man.record_metrics(sim.metrics());
        ssr_bench::record_bootstrap_timeline(&mut man, &report.timeline);
        man.extra("linearized_tx", report.total_messages.into());
        man.extra("linearized_ticks", report.ticks.into());
    }

    println!();
    table.print();
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }
    ssr_bench::emit_manifest(&mut man, started);
}
