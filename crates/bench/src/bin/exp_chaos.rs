//! **E11 — chaos matrix: self-stabilization under an adversarial network.**
//!
//! The paper's central robustness claim is that linearization is
//! *self-stabilizing*: from any initial state, over any connected topology,
//! the protocol converges to the sorted virtual ring — without flooding.
//! This experiment attacks that claim from every direction at once: lossy
//! asymmetric links, message duplication, bounded-delay reordering,
//! scheduled partitions with heals, churn bursts, and corrupted starting
//! states (wound rings, split rings, random successors, truncated
//! handshakes with stale cache routes). Every run carries the freeze
//! watchdog and the invariant checker (union-graph connectedness, zero
//! floods, linearization-potential audit); verdicts and recovery costs go
//! into the `chaos` section of the run manifest, and every SSR scenario
//! runs with the causal ledger on, so the manifest also carries the
//! merged `provenance` section (schema `ssr-obs/3`) that `obs flame` and
//! `obs top` profile — see docs/PROFILING.md.
//!
//! A final block runs the *watched* VRR bootstrap on seeds known to hit
//! DESIGN.md finding 7, demonstrating that the crossing-state freeze is
//! classified `frozen_crossing` in the manifest instead of silently
//! burning the tick budget.
//!
//! The whole scenario × n × seed cross product runs as one flat job list
//! on the sweep orchestrator (`ssr_workloads::run_matrix`): `--workers N`
//! sets the fan-out, `--matrix scenario=loss,dup;n=100;seeds=5` reshapes
//! the matrix, and the merged manifest is byte-identical for any worker
//! count (docs/SWEEPS.md).
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_chaos`
//! Flags: `--seeds K` (default 3), `--quick` (n=50 only), `--smoke`
//! (n=16, 2 seeds — the CI determinism check), `--only NAME` (one
//! scenario; sugar for `--matrix scenario=NAME`), `--freeze-window T`,
//! `--workers N`, `--matrix SPEC`, `--csv PATH`.

use std::rc::Rc;

use ssr_bench::{fmt_count, Args};
use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::{chaos, consistency};
use ssr_graph::{generators, Labeling};
use ssr_sim::faults::{partition_groups, poisson_crash_rejoin_trace, Fault};
use ssr_sim::{
    shared_watchdog, watchdog_probe, LinkConfig, Metrics, ProvenanceSummary, QueueBackend,
    Simulator, Time, TraceSink, Verdict,
};
use ssr_types::Rng;
use ssr_vrr::{run_vrr_bootstrap_watched, VrrMode};
use ssr_workloads::{parallel_map, run_matrix, summarize_counts, Matrix, Table, Topology};

/// How a scenario corrupts the initial virtual-ring state.
#[derive(Clone, Copy)]
enum Corrupt {
    None,
    /// Wound ring with w windings (generalized Figure 1).
    Wound(usize),
    /// k disjoint sub-rings (generalized Figure 2).
    Split(usize),
    /// Uniformly random successor per node, mutually adopted.
    Random,
    /// One-sided successor edges (mid-handshake truncation) plus stale
    /// unpinned cache routes.
    Handshake,
}

/// One cell of the chaos matrix: which adversary knobs are on.
#[derive(Clone, Copy)]
struct Spec {
    name: &'static str,
    corrupt: Corrupt,
    dup: f64,
    reorder: f64,
    /// Asymmetric per-link loss overrides during the fault window.
    loss_links: bool,
    /// Partition into k components for the fault window, then heal.
    partition: Option<usize>,
    /// Poisson crash/rejoin burst during the fault window.
    churn: bool,
}

impl Spec {
    const fn clean(name: &'static str, corrupt: Corrupt) -> Spec {
        Spec {
            name,
            corrupt,
            dup: 0.0,
            reorder: 0.0,
            loss_links: false,
            partition: None,
            churn: false,
        }
    }

    fn has_fault_window(&self) -> bool {
        self.loss_links || self.partition.is_some() || self.churn
    }
}

fn scenarios() -> Vec<Spec> {
    vec![
        Spec::clean("baseline", Corrupt::None),
        Spec {
            loss_links: true,
            ..Spec::clean("loss", Corrupt::None)
        },
        Spec {
            dup: 0.15,
            ..Spec::clean("dup", Corrupt::None)
        },
        Spec {
            reorder: 0.2,
            ..Spec::clean("reorder", Corrupt::None)
        },
        Spec {
            partition: Some(3),
            ..Spec::clean("partition", Corrupt::None)
        },
        Spec {
            churn: true,
            ..Spec::clean("churn", Corrupt::None)
        },
        Spec::clean("corrupt-wound", Corrupt::Wound(3)),
        Spec::clean("corrupt-split", Corrupt::Split(3)),
        Spec::clean("corrupt-random", Corrupt::Random),
        Spec::clean("corrupt-handshake", Corrupt::Handshake),
        Spec {
            dup: 0.1,
            reorder: 0.15,
            loss_links: true,
            partition: Some(2),
            churn: true,
            ..Spec::clean("all-on", Corrupt::Random)
        },
    ]
}

struct Outcome {
    converged: bool,
    verdict: &'static str,
    recovery_ticks: u64,
    recovery_msgs: u64,
    floods: u64,
    union_disconnected: u64,
    potential_rises: u64,
    metrics: Metrics,
    provenance: ProvenanceSummary,
}

/// Fault window length in ticks: adversary knobs are active over
/// `[2, 2 + WINDOW]`, recovery is measured from `2 + WINDOW + 50`.
const WINDOW: u64 = 400;
const BUDGET: u64 = 300_000;
const FREEZE_WINDOW: u64 = 3_000;

fn run_scenario(spec: &Spec, n: usize, seed: u64, freeze_window: u64) -> Outcome {
    let topo = Topology::UnitDisk { n, scale: 1.4 };
    let (g, labels) = topo.instance(seed.wrapping_mul(577) ^ n as u64);
    let cfg = BootstrapConfig::default();
    let nodes = make_ssr_nodes(&labels, cfg.ssr);
    let mut link = LinkConfig::ideal();
    if spec.dup > 0.0 {
        link = link.with_dup(spec.dup);
    }
    if spec.reorder > 0.0 {
        link = link.with_reorder(spec.reorder, 6);
    }
    // the causal ledger is on for every chaos run: it never touches the
    // RNG, so verdicts and recovery costs are identical to an
    // uninstrumented run, and the merged summary feeds `obs flame`/`obs top`
    let mut sim = Simulator::instrumented(
        g.clone(),
        nodes,
        link,
        seed,
        TraceSink::disabled(),
        QueueBackend::default(),
    );
    let mut frng = Rng::new(seed ^ 0x00C4_A05C);

    match spec.corrupt {
        Corrupt::None => {}
        Corrupt::Wound(w) => {
            let succ = chaos::wound_ring_succ(labels.ids(), w.min(n));
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Corrupt::Split(k) => {
            let succ = chaos::split_rings_succ(labels.ids(), k.min(n));
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Corrupt::Random => {
            let succ = chaos::random_succ(labels.ids(), &mut frng);
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Corrupt::Handshake => {
            let pairs = chaos::half_handshake_pairs(labels.ids(), n / 3, &mut frng);
            chaos::apply_succ_corruption(&mut sim, &labels, &pairs, false);
            chaos::inject_stale_cache_routes(&mut sim, &labels, 2, &mut frng);
        }
    }

    let wd = shared_watchdog();
    sim.add_probe(
        8,
        watchdog_probe(
            freeze_window,
            Rc::clone(&wd),
            chaos::ssr_signature,
            |nodes| consistency::check_ring(nodes).consistent(),
            chaos::ssr_all_locally_consistent,
        ),
    );

    // Partition and churn measure *re*-convergence (the E8 shape):
    // converge first, then open the fault window. Loss stresses the
    // bootstrap itself (a quiescent converged ring sends nothing to drop),
    // and corrupted starts — alone or combined with faults (all-on) —
    // measure convergence from the bad state, adversary active from the
    // beginning.
    let preconverge =
        matches!(spec.corrupt, Corrupt::None) && (spec.partition.is_some() || spec.churn);
    if preconverge {
        let outcome = sim.run_until_stable(8, BUDGET, |nodes, _| {
            consistency::check_ring(nodes).consistent()
        });
        assert!(outcome.is_quiescent(), "initial bootstrap failed");
    }
    let fault_start = if preconverge {
        sim.now().ticks() + 1
    } else {
        2
    };
    let fault_end = fault_start + WINDOW;
    // the invariant checker arms once the adversary is done (a partition
    // legitimately disconnects the union graph while it lasts)
    let armed_after = if spec.has_fault_window() {
        fault_end + 50
    } else {
        0
    };
    let inv = chaos::shared_invariants(armed_after);
    sim.add_probe(16, chaos::invariant_probe(labels.clone(), Rc::clone(&inv)));

    // Recovery is measured from fault onset (tick 0 for corrupted starts):
    // the time and messages from "the adversary begins" to stable global
    // consistency. Windowed scenarios therefore carry the window length as
    // a floor — the fight happens inside it.
    let recover_from = if spec.has_fault_window() {
        Time(fault_start)
    } else {
        Time(0)
    };
    let msgs_before = sim.metrics().counter("tx.total");

    if spec.has_fault_window() {
        if let Some(k) = spec.partition {
            let groups = partition_groups(n, k.min(n), &mut frng);
            sim.schedule_fault(Time(fault_start), Fault::Partition { groups });
            sim.schedule_fault(Time(fault_end), Fault::Heal);
        }
        if spec.churn {
            let trace = poisson_crash_rejoin_trace(
                n,
                Time(fault_start),
                Time(fault_end),
                0.01,
                40,
                |u| g.neighbors(u).collect(),
                &mut frng,
            );
            for f in trace {
                sim.schedule_fault(f.at, f.fault);
            }
        }
        if spec.loss_links {
            // installed only after the one-shot hello exchange at tick 0/1:
            // a hello permanently lost on a dead-on-arrival link is a
            // different experiment (bootstrap over a sparser graph)
            sim.run_until(Time(fault_start));
            for (u, v) in g.edges().collect::<Vec<_>>() {
                if frng.chance(0.25) {
                    // one direction only — asymmetric loss
                    sim.set_link_override(u, v, LinkConfig::ideal().with_drop(0.3));
                }
            }
            sim.run_until(Time(fault_end));
            sim.clear_link_overrides();
        }
        sim.run_until(Time(fault_end + 50));
    }

    let stop = Rc::clone(&wd);
    let outcome = sim.run_until_stable(8, BUDGET, move |nodes, _| {
        consistency::check_ring(nodes).consistent() || stop.borrow().is_frozen()
    });
    let converged = consistency::check_ring(sim.protocols()).consistent();
    let verdict = if converged {
        Verdict::Converged.label()
    } else {
        wd.borrow().verdict.label()
    };
    let inv = inv.borrow();
    let provenance = sim.causal_summary().expect("chaos sims are instrumented");
    let mut metrics = sim.metrics().clone();
    provenance.record_metrics(&mut metrics);
    Outcome {
        converged,
        verdict,
        recovery_ticks: outcome.time() - recover_from,
        recovery_msgs: sim.metrics().counter("tx.total") - msgs_before,
        floods: sim.metrics().counter("msg.flood"),
        union_disconnected: inv.union_disconnected,
        potential_rises: inv.potential_rises,
        metrics,
        provenance,
    }
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let seeds: u64 = if smoke { 2 } else { args.get("seeds", 3) };
    let freeze_window: u64 = args.get("freeze-window", FREEZE_WINDOW);
    let sizes: Vec<usize> = if smoke {
        vec![16]
    } else if args.quick() {
        vec![50]
    } else {
        vec![50, 100]
    };

    let specs = scenarios();
    let mut matrix = Matrix::new(specs.iter().map(|s| s.name), sizes, seeds);
    if let Some(only) = args.opt("only") {
        // sugar for --matrix scenario=NAME
        if let Err(e) = matrix.override_with(&format!("scenario={only}")) {
            panic!("--only {only}: {e}");
        }
    }

    let mut table = Table::new(
        "E11: chaos matrix (adversarial links, partitions, churn, corrupted starts)".to_string(),
        &[
            "scenario",
            "n",
            "converged",
            "recovery ticks (mean)",
            "recovery msgs (mean)",
            "floods",
            "frozen",
            "union disc",
            "phi rises",
        ],
    );
    let mut man = ssr_bench::manifest(&args, "exp_chaos");
    let matrix = ssr_bench::resolve_matrix(&args, &mut man, matrix);
    man.seed(0)
        .config("smoke", smoke)
        .config("window", WINDOW)
        .config("freeze_window", freeze_window);

    // The full scenario × n × seed cross product as one flat job list on
    // the orchestrator pool. Results come back in canonical job order, so
    // the merged registries and the manifest below are byte-identical for
    // any --workers value.
    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let spec = specs
            .iter()
            .find(|s| s.name == matrix.name(job))
            .expect("matrix scenarios come from the spec library");
        run_scenario(spec, job.n, job.seed, freeze_window)
    });

    let mut agg = Metrics::new();
    let mut agg_prov = ProvenanceSummary::default();
    // CI gate: every SSR scenario must self-stabilize (converge without
    // freezing or flooding, union graph connected). Violations are
    // collected so the table and manifest still come out, then fail the
    // process.
    let mut failures: Vec<String> = Vec::new();
    let seeds = matrix.seeds.len() as u64;

    for (name, n, outcomes) in sweep.cells() {
        for (o, &seed) in outcomes.iter().zip(&matrix.seeds) {
            man.chaos_scenario(ssr_obs::ChaosScenario {
                name: name.to_string(),
                n: n as u64,
                seed,
                verdict: o.verdict.to_string(),
                recovery_ticks: o.recovery_ticks,
                recovery_msgs: o.recovery_msgs,
                floods: o.floods,
                union_disconnected: o.union_disconnected,
                potential_rises: o.potential_rises,
            });
            agg.merge(&o.metrics);
            agg_prov.merge(&o.provenance);
            if o.converged {
                agg.observe_hist("chaos.recovery_ticks", o.recovery_ticks);
                agg.observe_hist("chaos.recovery_msgs", o.recovery_msgs);
            }
        }
        let ok = outcomes.iter().filter(|o| o.converged).count();
        let frozen = outcomes
            .iter()
            .filter(|o| o.verdict.starts_with("frozen"))
            .count();
        let ticks = summarize_counts(
            outcomes
                .iter()
                .filter(|o| o.converged)
                .map(|o| o.recovery_ticks),
        );
        let msgs = summarize_counts(
            outcomes
                .iter()
                .filter(|o| o.converged)
                .map(|o| o.recovery_msgs),
        );
        let floods: u64 = outcomes.iter().map(|o| o.floods).sum();
        let union_disc: u64 = outcomes.iter().map(|o| o.union_disconnected).sum();
        let rises: u64 = outcomes.iter().map(|o| o.potential_rises).sum();
        if ok as u64 != seeds || floods != 0 || union_disc != 0 {
            failures.push(format!(
                "{name} n={n}: converged {ok}/{seeds}, floods {floods}, union disc {union_disc}"
            ));
        }
        table.row(&[
            name.to_string(),
            n.to_string(),
            format!("{ok}/{seeds}"),
            format!("{:.0}", ticks.mean),
            fmt_count(msgs.mean as u64),
            floods.to_string(),
            frozen.to_string(),
            union_disc.to_string(),
            rises.to_string(),
        ]);
    }

    table.print();
    println!("\npaper claim: linearization self-stabilizes — every SSR scenario must");
    println!("end converged (frozen = 0) with floods = 0 and the union graph never");
    println!("disconnected after the fault window; transient phi rises during");
    println!("discovery are expected (DESIGN.md finding 1) and only counted.");

    // VRR crossing-state rows (DESIGN.md finding 7): seeds pinned to runs
    // known to freeze, plus one healthy control. The watchdog verdict —
    // not a burned tick budget — is the recorded outcome. Pinned (n, seed)
    // pairs are not a cross product, so they ride the pool via
    // parallel_map; reports come back in pin order.
    let vrr_runs: Vec<(usize, u64)> = if smoke {
        vec![(28, 9), (20, 0)]
    } else {
        vec![(28, 9), (28, 12), (30, 2), (20, 0)]
    };
    let vrr_reports = parallel_map(vrr_runs, args.workers(), |&(n, seed)| {
        let mut rng = Rng::new(seed);
        let (g, _) = generators::unit_disk_connected(n, 1.3, &mut rng);
        let labels = Labeling::random(n, &mut rng);
        let (report, _) = run_vrr_bootstrap_watched(
            &g,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            seed,
            200_000,
            2_000,
        );
        (n, seed, report)
    });
    println!("\nVRR crossing-state classification (watched bootstrap):");
    for (n, seed, report) in &vrr_reports {
        println!(
            "  n={n:<4} seed={seed:<4} verdict={:<16} ticks={} msgs={}",
            report.verdict,
            report.ticks,
            fmt_count(report.total_messages)
        );
        man.chaos_scenario(ssr_obs::ChaosScenario {
            name: "vrr-bootstrap".to_string(),
            n: *n as u64,
            seed: *seed,
            verdict: report.verdict.to_string(),
            recovery_ticks: report.ticks,
            recovery_msgs: report.total_messages,
            floods: 0,
            union_disconnected: 0,
            potential_rises: 0,
        });
    }

    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }
    man.record_metrics(&agg);
    man.record_provenance(&agg_prov);
    ssr_bench::emit_manifest(&mut man, started);
    if !failures.is_empty() {
        eprintln!("\nFAIL: self-stabilization violated:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
