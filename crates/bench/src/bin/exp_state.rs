//! **E9 — router state: the LSN memory bound.**
//!
//! "Keeping all edges may require significant memory at the nodes.
//! Therefore, Onus et al. propose linearization with shortcut neighbors" —
//! at most one remembered edge per exponentially growing interval, so state
//! stays `O(log n)` per side while convergence stays polylogarithmic. This
//! experiment measures per-node state versus `n`:
//!
//! * abstract engine: peak degree under memory vs LSN retention;
//! * SSR protocol: cache entries at the end of the bootstrap (the cache
//!   *is* the LSN structure), with the interval base as ablation
//!   (`--base 4`).
//!
//! Both sweeps run through the deterministic orchestrator (docs/SWEEPS.md):
//! output bytes never depend on `--workers`. `--matrix` governs the SSR
//! cache sweep (the protocol-level measurement); the engine comparison
//! keeps its fixed size ladder, recorded as `matrix_engine`.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_state`
//! Flags: `--seeds K` (default 5), `--quick`, `--base B` (default 2),
//! `--workers N`, `--matrix SPEC` (e.g. `n=100,200;seeds=3`), `--csv PATH`.

use ssr_bench::Args;
use ssr_core::bootstrap::{run_linearized_bootstrap, BootstrapConfig};
use ssr_linearize::{run, Semantics, Variant};
use ssr_sim::Metrics;
use ssr_types::IntervalPartition;
use ssr_workloads::{run_matrix, stats::percentile, Matrix, Summary, Table, Topology};

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 5);
    let base: u64 = args.get("base", 2);
    let engine_sizes: Vec<usize> = if args.quick() {
        vec![64, 256]
    } else {
        vec![64, 256, 1024, 4096]
    };
    let ssr_sizes: Vec<usize> = if args.quick() {
        vec![50, 100]
    } else {
        vec![50, 100, 200, 400]
    };

    let mut man = ssr_bench::manifest(&args, "exp_state");
    man.seed(0).config("base", base);
    let ssr_matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        Matrix::new(["ssr-cache"], ssr_sizes, seeds),
    );
    let engine_matrix = Matrix::new(["engine/memory", "engine/lsn"], engine_sizes, seeds);
    man.config("matrix_engine", engine_matrix.describe());
    let rep_seed = ssr_matrix.seeds[0];

    let mut table = Table::new(
        format!("E9: per-node state (LSN interval base {base})"),
        &["n", "system", "peak degree / max cache", "mean", "p99"],
    );

    let mut merged = Metrics::new();
    let mut rep_timeline: Option<(usize, Vec<ssr_core::ConvergencePoint>)> = None;

    // abstract engine: memory vs LSN peak degree
    let engine = run_matrix(&engine_matrix, args.workers(), |job| {
        let variant = if engine_matrix.name(job) == "engine/memory" {
            Variant::Memory
        } else {
            Variant::Lsn(IntervalPartition::new(base))
        };
        let topo = Topology::Gnp { n: job.n, c: 2.0 };
        let (g, labels) = topo.instance(job.seed.wrapping_mul(3));
        let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
        let r = run(&rg, variant, Semantics::Star, 4000);
        r.peak_degree() as f64
    });
    for (scenario, n, peaks) in engine.cells() {
        let s = Summary::of(peaks);
        for &p in peaks {
            merged.observe_hist("state.peak_degree", p as u64);
        }
        let variant = scenario.strip_prefix("engine/").unwrap_or(scenario);
        table.row(&[
            n.to_string(),
            format!("engine/{variant}"),
            format!("{:.0}", s.max),
            format!("{:.1}", s.mean),
            "-".into(),
        ]);
    }

    // SSR protocol: cache entries at the end of the bootstrap
    let sweep = run_matrix(&ssr_matrix, args.workers(), |job| {
        let (n, seed) = (job.n, job.seed);
        let topo = Topology::UnitDisk { n, scale: 1.3 };
        let (g, labels) = topo.instance(seed.wrapping_mul(11) ^ n as u64);
        let mut cfg = BootstrapConfig {
            seed,
            max_ticks: 300_000,
            ..Default::default()
        };
        cfg.ssr.partition_base = base;
        let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
        assert!(report.converged, "n={n} seed={seed}");
        let entries: Vec<f64> = sim
            .protocols()
            .iter()
            .map(|p| p.cache().len() as f64)
            .collect();
        // the bootstrap runner already observed state.entries into the
        // sim's registry; carry it (and the timeline, on the
        // representative seed) out
        let timeline = (seed == rep_seed).then(|| report.timeline.clone());
        (entries, sim.metrics().clone(), timeline)
    });
    for (_, n, all) in sweep.cells() {
        for (_, m, tl) in all {
            merged.merge(m);
            if let Some(tl) = tl {
                rep_timeline = Some((n, tl.clone()));
            }
        }
        let mut flat: Vec<f64> = all.iter().flat_map(|(e, _, _)| e.iter().copied()).collect();
        let s = Summary::of(&flat);
        let p99 = percentile(&mut flat, 99.0);
        table.row(&[
            n.to_string(),
            "ssr cache".into(),
            format!("{:.0}", s.max),
            format!("{:.1}", s.mean),
            format!("{p99:.0}"),
        ]);
    }

    table.print();
    println!("\npaper claim: with-memory state grows with n; LSN state stays O(log n) per");
    println!("side — the SSR route cache realizes the same bound (compare rows across n).");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: state.entries / state.peak_degree histograms merged across
    // every seed and size; timeline from the representative-seed run at the
    // largest n.
    man.record_metrics(&merged);
    if let Some((n, tl)) = &rep_timeline {
        man.config("timeline_n", n);
        ssr_bench::record_bootstrap_timeline(&mut man, tl);
    }
    ssr_bench::emit_manifest(&mut man, started);
}
