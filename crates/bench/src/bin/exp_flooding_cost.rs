//! **E6 — the headline: consistency without flooding.**
//!
//! ISPRP "achieves global consistency by having one node flood the network
//! with its identifier"; the paper's contribution is that linearization
//! "does not require any flooding at all". This experiment bootstraps both
//! mechanisms on connected unit-disk networks (the MANET substrate SSR
//! targets) and meters every link-layer transmission by kind, plus
//! convergence time and end-state router state.
//!
//! The mechanism × n × seed sweep runs through the deterministic
//! orchestrator (docs/SWEEPS.md): output bytes never depend on `--workers`.
//!
//! Ablations: `--no-ccw` disables the redundant counter-clockwise probes;
//! `--keep-edges` disables tear-downs (the with-memory variant: fewer
//! messages per step, more state).
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_flooding_cost`
//! Flags: `--seeds K` (default 5), `--quick`, `--no-ccw`, `--keep-edges`,
//! `--workers N`, `--matrix SPEC` (e.g. `scenario=linearized;n=200`),
//! `--csv PATH`.

use ssr_bench::{fmt_count, Args};
use ssr_core::bootstrap::{run_isprp_bootstrap, run_linearized_bootstrap, BootstrapConfig};
use ssr_obs::Value;
use ssr_workloads::{run_matrix, summarize_counts, Table, Topology};

struct Row {
    converged: bool,
    ticks: u64,
    total: u64,
    flood: u64,
    notify: u64,
    max_state: usize,
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 5);
    let sizes: Vec<usize> = if args.quick() {
        vec![50, 100]
    } else {
        vec![50, 100, 200, 400, 800]
    };
    let mut cfg = BootstrapConfig {
        max_ticks: 300_000,
        ..Default::default()
    };
    cfg.ssr.ccw_redundancy = !args.flag("no-ccw");
    cfg.ssr.teardown = !args.flag("keep-edges");

    let mut man = ssr_bench::manifest(&args, "exp_flooding_cost");
    man.seed(0)
        .config("no-ccw", args.flag("no-ccw"))
        .config("keep-edges", args.flag("keep-edges"));
    let matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        ssr_workloads::Matrix::new(["linearized", "isprp"], sizes, seeds),
    );

    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let (n, seed) = (job.n, job.seed);
        let topo = Topology::UnitDisk { n, scale: 1.3 };
        let (g, labels) = topo.instance(seed.wrapping_mul(101) ^ n as u64);
        let mut cfg = cfg;
        cfg.seed = seed;
        let report = if matrix.name(job) == "linearized" {
            run_linearized_bootstrap(&g, &labels, &cfg).0
        } else {
            run_isprp_bootstrap(&g, &labels, &cfg).0
        };
        let kind = |k: &str| {
            report
                .messages
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        Row {
            converged: report.converged,
            ticks: report.ticks,
            total: report.total_messages,
            flood: kind("msg.flood"),
            notify: kind("msg.notify") + kind("msg.succ"),
            max_state: report.max_state,
        }
    });

    let mut table = Table::new(
        "E6: bootstrap cost — ISPRP + flood vs linearized SSR (unit-disk)",
        &[
            "n",
            "mechanism",
            "conv",
            "ticks (mean)",
            "msgs total (mean)",
            "flood msgs",
            "notify msgs",
            "max state",
        ],
    );
    let mut sweep_means: Vec<(String, Value)> = Vec::new();

    for (mech, n, rows) in sweep.cells() {
        let runs = rows.len() as u64;
        let conv = rows.iter().filter(|r| r.converged).count();
        let ticks = summarize_counts(rows.iter().map(|r| r.ticks));
        let total = summarize_counts(rows.iter().map(|r| r.total));
        let flood: u64 = rows.iter().map(|r| r.flood).sum::<u64>() / runs.max(1);
        let notify: u64 = rows.iter().map(|r| r.notify).sum::<u64>() / runs.max(1);
        let max_state = rows.iter().map(|r| r.max_state).max().unwrap_or(0);
        sweep_means.push((
            format!("{mech}/n={n}"),
            Value::Obj(vec![
                ("msgs_mean".into(), total.mean.into()),
                ("ticks_mean".into(), ticks.mean.into()),
                ("flood_mean".into(), flood.into()),
                ("converged".into(), (conv as u64).into()),
            ]),
        ));
        table.row(&[
            n.to_string(),
            mech.into(),
            format!("{conv}/{runs}"),
            format!("{:.0}", ticks.mean),
            fmt_count(total.mean as u64),
            fmt_count(flood),
            fmt_count(notify),
            max_state.to_string(),
        ]);
    }

    table.print();
    println!("\npaper claim: the linearized bootstrap reaches the same globally consistent");
    println!("ring with zero flood messages; ISPRP's flood costs ≈ 2·|E_p| transmissions");
    println!("plus the claim/update cascade it triggers.");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: one representative linearized run (first matrix seed,
    // largest n) for the full metric/timeline dump; the sweep means ride
    // along as extras.
    let rep_n = *matrix.sizes.last().unwrap();
    let rep_seed = matrix.seeds[0];
    man.config("timeline_n", rep_n);
    let (g, labels) = Topology::UnitDisk {
        n: rep_n,
        scale: 1.3,
    }
    .instance(rep_seed.wrapping_mul(101) ^ rep_n as u64);
    let mut rep_cfg = cfg;
    rep_cfg.seed = rep_seed;
    let (report, sim) = run_linearized_bootstrap(&g, &labels, &rep_cfg);
    man.record_metrics(sim.metrics());
    ssr_bench::record_bootstrap_timeline(&mut man, &report.timeline);
    man.extra("rep_converged", Value::Bool(report.converged));
    man.extra("rep_ticks", report.ticks.into());
    man.extra("rep_msgs_total", report.total_messages.into());
    man.extra("sweep", Value::Obj(sweep_means));
    ssr_bench::emit_manifest(&mut man, started);
}
