//! **exp_perf — the permanent performance baseline.**
//!
//! Where the criterion suites (`benches/micro.rs`, `benches/bench_core.rs`)
//! answer "how fast is this routine right now, on this machine", this
//! binary produces a *comparable artifact*: `BENCH_perf.json` at the repo
//! root, carrying per-scenario wall time **and** the machine-independent
//! work ledger the event-driven simulator exposes — messages delivered,
//! protocol activations, peak pending-event depth. Two of these files from
//! different commits feed `obs diff old.json new.json --threshold PCT`,
//! which flags regressions; the counter fields are deterministic for a
//! given seed, so any drift there is a behavior change, not noise.
//!
//! Since schema `ssr-bench-perf/2`, simulation scenarios also carry a
//! message breakdown (`messages_by_cause`, `messages_by_kind`, `wasted`,
//! `wasted_per_mille`) measured by one extra *untimed* run with the
//! causal ledger on (docs/PROFILING.md) — the timing repeats stay
//! uninstrumented so `ns_per_op` is never perturbed by the profiler.
//!
//! Scenarios (see docs/BENCHMARKS.md for the schema field by field):
//!
//! * `convergence_n{100,500,1000}` — linearized SSR bootstrap to global
//!   ring consistency on a connected unit-disk graph; one op = one full
//!   convergence run.
//! * `routing_n500` — greedy routing over the converged ring from a state
//!   snapshot; one op = one routed packet (no simulator events: the
//!   counter fields are legitimately zero).
//! * `chaos_wound_n200` — recovery from a wound-ring corrupted start
//!   (generalized Figure 1); one op = one full recovery run.
//! * `idle_watchdog_n500` — a converged, quiescent ring watched across a
//!   long empty tick range; one op = one probe-grid point. This is the
//!   scenario the event-wheel fast-forward and the `state_gen` probe cache
//!   exist for: its ns/op must stay O(1) in n.
//!
//! The timing repeats always run **serially** on one thread — fanning them
//! out would contend for cores and shift `ns_per_op` against the PR 4/5
//! baselines. Only the extra *untimed* breakdown runs go through the sweep
//! orchestrator (`--workers N`, docs/SWEEPS.md); their counters are
//! deterministic per seed, so the artifact's non-timing bytes don't depend
//! on the worker count.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_perf`
//! Flags: `--smoke` (tiny sizes, 1 repeat — the CI gate), `--repeats K`
//! (default 3), `--seed S` (default 1), `--workers N` (breakdown phase
//! only), `--matrix scenario=A,B` (restrict to the named scenarios),
//! `--out PATH` (default `BENCH_perf.json` in the current directory).

use std::rc::Rc;
use std::time::Instant;

use ssr_bench::{fmt_count, Args};
use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::routing::RoutingView;
use ssr_core::{chaos, consistency};
use ssr_obs::Value;
use ssr_sim::faults::Fault;
use ssr_sim::{
    shared_watchdog, watchdog_probe, LinkConfig, ProvenanceSummary, QueueBackend, Simulator, Time,
    TraceSink,
};
use ssr_types::Rng;
use ssr_workloads::scenario::traffic_pairs;
use ssr_workloads::Topology;

/// Tick budget for every convergence/recovery run.
const BUDGET: u64 = 300_000;

/// One `scenarios[]` entry of `BENCH_perf.json`. Counter fields are summed
/// across repeats (they are deterministic per seed); `wall_ns` is the total
/// measured wall time, `ns_per_op = wall_ns / ops`.
struct Row {
    name: String,
    repeats: u64,
    ops: u64,
    wall_ns: u64,
    ticks: u64,
    messages_delivered: u64,
    node_activations: u64,
    peak_queue_depth: u64,
    /// Causal-ledger snapshot from one extra untimed instrumented run
    /// (`ssr-bench-perf/2`); `None` for scenarios without simulator
    /// messages (routing, idle).
    breakdown: Option<ProvenanceSummary>,
}

impl Row {
    fn new(name: impl Into<String>) -> Row {
        Row {
            name: name.into(),
            repeats: 0,
            ops: 0,
            wall_ns: 0,
            ticks: 0,
            messages_delivered: 0,
            node_activations: 0,
            peak_queue_depth: 0,
            breakdown: None,
        }
    }

    fn absorb(&mut self, sim: &Simulator<ssr_core::node::SsrNode>) {
        self.ticks += sim.now().ticks();
        self.messages_delivered += sim.messages_delivered();
        self.node_activations += sim.node_activations();
        self.peak_queue_depth = self.peak_queue_depth.max(sim.peak_pending_events() as u64);
    }

    fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops.max(1) as f64
    }

    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("repeats".into(), Value::Num(self.repeats as f64)),
            ("ops".into(), Value::Num(self.ops as f64)),
            ("wall_ns".into(), Value::Num(self.wall_ns as f64)),
            ("ns_per_op".into(), Value::Num(self.ns_per_op())),
            ("ticks".into(), Value::Num(self.ticks as f64)),
            (
                "messages_delivered".into(),
                Value::Num(self.messages_delivered as f64),
            ),
            (
                "node_activations".into(),
                Value::Num(self.node_activations as f64),
            ),
            (
                "peak_queue_depth".into(),
                Value::Num(self.peak_queue_depth as f64),
            ),
        ];
        if let Some(s) = &self.breakdown {
            let fold = |pick: fn(&(&'static str, &'static str)) -> &'static str| -> Value {
                let mut totals: Vec<(String, f64)> = Vec::new();
                for (key, stats) in &s.messages {
                    let name = pick(key);
                    match totals.iter_mut().find(|(n, _)| n == name) {
                        Some((_, v)) => *v += stats.delivered as f64,
                        None => totals.push((name.to_string(), stats.delivered as f64)),
                    }
                }
                Value::Obj(
                    totals
                        .into_iter()
                        .map(|(k, v)| (k, Value::Num(v)))
                        .collect(),
                )
            };
            let delivered = s.delivered();
            let wasted = s.wasted();
            fields.push(("messages_by_cause".into(), fold(|&(cause, _)| cause)));
            fields.push(("messages_by_kind".into(), fold(|&(_, kind)| kind)));
            fields.push(("wasted".into(), Value::Num(wasted as f64)));
            // integer ratio: a float here would tie the artifact's
            // byte-determinism to float formatting
            fields.push((
                "wasted_per_mille".into(),
                Value::Num((wasted * 1000 / delivered.max(1)) as f64),
            ));
        }
        Value::Obj(fields)
    }
}

/// A converged linearized-SSR simulator on a connected unit-disk graph.
fn converged_sim(
    n: usize,
    seed: u64,
    config: ssr_core::node::SsrConfig,
) -> (Simulator<ssr_core::node::SsrNode>, ssr_graph::Labeling) {
    let (g, labels) = Topology::UnitDisk { n, scale: 1.3 }.instance(seed);
    let nodes = make_ssr_nodes(&labels, config);
    let mut sim = Simulator::new(g, nodes, LinkConfig::ideal(), seed);
    let outcome = sim.run_until_stable(8, BUDGET, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    assert!(
        outcome.is_quiescent(),
        "bootstrap failed (n={n} seed={seed})"
    );
    (sim, labels)
}

/// Full bootstrap to global consistency; one op per run.
fn bench_convergence(n: usize, seed: u64, repeats: u64) -> Row {
    let mut row = Row::new(format!("convergence_n{n}"));
    for r in 0..repeats {
        let seed = seed + r;
        let (g, labels) = Topology::UnitDisk { n, scale: 1.3 }.instance(seed);
        let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
        let mut sim = Simulator::new(g, nodes, LinkConfig::ideal(), seed);
        let start = Instant::now();
        let outcome = sim.run_until_stable(8, BUDGET, |nodes, _| {
            consistency::check_ring(nodes).consistent()
        });
        row.wall_ns += start.elapsed().as_nanos() as u64;
        assert!(
            outcome.is_quiescent(),
            "bootstrap failed (n={n} seed={seed})"
        );
        row.repeats += 1;
        row.ops += 1;
        row.absorb(&sim);
    }
    row
}

/// One extra *untimed* instrumented run of a scenario — ledger on, same
/// seed as the first timing repeat — for the `ssr-bench-perf/2` message
/// breakdown. `corrupt` mutates the initial state (no-op for plain
/// bootstrap).
fn breakdown_run(
    n: usize,
    seed: u64,
    corrupt: impl Fn(&mut Simulator<ssr_core::node::SsrNode>, &ssr_graph::Labeling),
) -> ProvenanceSummary {
    let (g, labels) = Topology::UnitDisk { n, scale: 1.3 }.instance(seed);
    let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
    let mut sim = Simulator::instrumented(
        g,
        nodes,
        LinkConfig::ideal(),
        seed,
        TraceSink::disabled(),
        QueueBackend::default(),
    );
    corrupt(&mut sim, &labels);
    let outcome = sim.run_until_stable(8, BUDGET, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    assert!(
        outcome.is_quiescent(),
        "breakdown run failed (n={n} seed={seed})"
    );
    sim.causal_summary()
        .expect("breakdown runs are instrumented")
}

/// Greedy routing over the converged ring; one op per routed packet. The
/// walk is over a state snapshot — no simulator events fire, so the
/// counter fields stay zero by construction.
fn bench_routing(n: usize, pairs: usize, seed: u64, repeats: u64) -> Row {
    let mut row = Row::new(format!("routing_n{n}"));
    for r in 0..repeats {
        let seed = seed + r;
        let (sim, labels) = converged_sim(n, seed, BootstrapConfig::default().ssr);
        let view = RoutingView::new(sim.protocols());
        let mut rng = Rng::new(seed ^ 0x9E37);
        let traffic = traffic_pairs(n, pairs, &mut rng);
        let max_hops = n as u32 + 16;
        let start = Instant::now();
        let mut delivered = 0u64;
        for &(s, d) in &traffic {
            if view
                .route(labels.ids()[s], labels.ids()[d], max_hops)
                .delivered()
            {
                delivered += 1;
            }
        }
        row.wall_ns += start.elapsed().as_nanos() as u64;
        assert_eq!(
            delivered,
            traffic.len() as u64,
            "consistent-ring routing must deliver every packet"
        );
        row.repeats += 1;
        row.ops += traffic.len() as u64;
    }
    row
}

/// Recovery from a wound-ring corrupted start; one op per recovery run.
fn bench_chaos_wound(n: usize, seed: u64, repeats: u64) -> Row {
    let mut row = Row::new(format!("chaos_wound_n{n}"));
    for r in 0..repeats {
        let seed = seed + r;
        let (g, labels) = Topology::UnitDisk { n, scale: 1.3 }.instance(seed);
        let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
        let mut sim = Simulator::new(g, nodes, LinkConfig::ideal(), seed);
        let succ = chaos::wound_ring_succ(labels.ids(), 3.min(n));
        chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        let start = Instant::now();
        let outcome = sim.run_until_stable(8, BUDGET, |nodes, _| {
            consistency::check_ring(nodes).consistent()
        });
        row.wall_ns += start.elapsed().as_nanos() as u64;
        assert!(
            outcome.is_quiescent(),
            "recovery failed (n={n} seed={seed})"
        );
        row.repeats += 1;
        row.ops += 1;
        row.absorb(&sim);
    }
    row
}

/// Which untimed instrumented run a scenario needs for its message
/// breakdown (`ssr-bench-perf/2`); scenarios without simulator messages
/// (routing, idle) need none.
enum BreakdownJob {
    /// Plain bootstrap to consistency (`convergence_n*`).
    Plain(usize),
    /// Wound-ring corrupted start (`chaos_wound_n*`).
    Wound(usize),
}

impl BreakdownJob {
    fn run(&self, seed: u64) -> ProvenanceSummary {
        match *self {
            BreakdownJob::Plain(n) => breakdown_run(n, seed, |_sim, _labels| {}),
            BreakdownJob::Wound(n) => breakdown_run(n, seed, |sim, labels| {
                let succ = chaos::wound_ring_succ(labels.ids(), 3.min(n));
                chaos::apply_succ_corruption(sim, labels, &succ, true);
            }),
        }
    }

    fn scenario(&self) -> String {
        match *self {
            BreakdownJob::Plain(n) => format!("convergence_n{n}"),
            BreakdownJob::Wound(n) => format!("chaos_wound_n{n}"),
        }
    }
}

/// A converged, quiescent ring watched across `idle_ticks` empty ticks:
/// the watchdog grid walks the whole range, but with `state_gen` frozen
/// every firing after the first reuses the cached O(n) scan. One op per
/// probe-grid point; ns/op here must not grow with n.
fn bench_idle_watchdog(n: usize, idle_ticks: u64, seed: u64) -> Row {
    let mut row = Row::new(format!("idle_watchdog_n{n}"));
    // Self-quiescing configuration: the default audit heartbeat runs
    // forever (churn insurance), but this scenario needs a genuinely
    // empty event wheel.
    let config = ssr_core::node::SsrConfig {
        audit_quiet: 4,
        ..Default::default()
    };
    let (mut sim, _labels) = converged_sim(n, seed, config);
    // Ring consistency precedes full quiescence: audits and in-flight acks
    // keep trickling for a while. Drain them so the watched range is
    // genuinely empty.
    assert!(
        sim.run_to_quiescence(BUDGET).is_quiescent(),
        "converged ring failed to drain (n={n} seed={seed})"
    );
    let wd = shared_watchdog();
    let grid = 8u64;
    sim.add_probe(
        grid,
        watchdog_probe(
            u64::MAX / 2, // never freeze: this scenario measures the grid walk
            Rc::clone(&wd),
            chaos::ssr_signature,
            |nodes| consistency::check_ring(nodes).consistent(),
            chaos::ssr_all_locally_consistent,
        ),
    );
    // Keep exactly one far-future event pending so the run loop walks the
    // probe grid instead of going quiescent (a heal with nothing cut is a
    // no-op).
    let deadline = Time(sim.now().ticks() + idle_ticks);
    sim.schedule_fault(deadline, Fault::Heal);
    let before_acts = sim.node_activations();
    let start = Instant::now();
    sim.run_until(deadline);
    row.wall_ns += start.elapsed().as_nanos() as u64;
    assert_eq!(
        sim.node_activations(),
        before_acts,
        "idle range must not activate any protocol"
    );
    row.repeats = 1;
    row.ops = idle_ticks / grid;
    row.ticks = idle_ticks;
    row.peak_queue_depth = sim.peak_pending_events() as u64;
    row
}

fn emit(rows: &[Row], seed: u64, smoke: bool, out_path: &str) {
    let git = match ssr_obs::git_describe() {
        Some(d) => Value::Str(d),
        None => Value::Null,
    };
    let doc = Value::Obj(vec![
        ("schema".into(), Value::Str("ssr-bench-perf/2".into())),
        ("git".into(), git),
        ("seed".into(), Value::Num(seed as f64)),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "scenarios".into(),
            Value::Arr(rows.iter().map(Row::to_value).collect()),
        ),
    ]);
    match std::fs::write(out_path, doc.to_json_pretty() + "\n") {
        Ok(()) => println!("\n(perf baseline written to {out_path})"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let seed: u64 = args.get("seed", 1);
    let repeats: u64 = if smoke { 1 } else { args.get("repeats", 3) };
    let out_path = args.opt("out").unwrap_or("BENCH_perf.json").to_string();

    let convergence_sizes: &[usize] = if smoke { &[50] } else { &[100, 500, 1000] };
    let (routing_n, routing_pairs) = if smoke { (50, 64) } else { (500, 2_000) };
    let chaos_n = if smoke { 50 } else { 200 };
    let (idle_n, idle_ticks) = if smoke { (50, 10_000) } else { (500, 200_000) };

    // `--matrix scenario=A,B` restricts the scenario set (validated against
    // the full list, like every sweep binary — see docs/SWEEPS.md). The
    // other matrix dimensions don't apply here: sizes are baked into the
    // scenario names so two artifacts stay field-for-field comparable.
    let mut names = ssr_workloads::Matrix::new(
        convergence_sizes
            .iter()
            .map(|n| format!("convergence_n{n}"))
            .chain([
                format!("routing_n{routing_n}"),
                format!("chaos_wound_n{chaos_n}"),
                format!("idle_watchdog_n{idle_n}"),
            ]),
        vec![0],
        1,
    );
    if let Some(spec) = args.opt("matrix") {
        if let Err(e) = names.override_with(spec) {
            panic!("--matrix {spec}: {e}");
        }
    }
    let want = |name: &str| names.scenarios.iter().any(|s| s == name);

    // phase 1: the timing repeats — strictly serial, uninstrumented
    let mut rows: Vec<Row> = Vec::new();
    for &n in convergence_sizes {
        if want(&format!("convergence_n{n}")) {
            rows.push(bench_convergence(n, seed, repeats));
        }
    }
    if want(&format!("routing_n{routing_n}")) {
        rows.push(bench_routing(routing_n, routing_pairs, seed, repeats));
    }
    if want(&format!("chaos_wound_n{chaos_n}")) {
        rows.push(bench_chaos_wound(chaos_n, seed, repeats));
    }
    if want(&format!("idle_watchdog_n{idle_n}")) {
        rows.push(bench_idle_watchdog(idle_n, idle_ticks, seed));
    }

    // phase 2: the untimed instrumented breakdown runs, fanned out through
    // the orchestrator (results attach by scenario name, in input order)
    let jobs: Vec<BreakdownJob> = convergence_sizes
        .iter()
        .map(|&n| BreakdownJob::Plain(n))
        .chain([BreakdownJob::Wound(chaos_n)])
        .filter(|j| want(&j.scenario()))
        .collect();
    let summaries =
        ssr_workloads::parallel_map(jobs, args.workers(), |job| (job.scenario(), job.run(seed)));
    for (name, summary) in summaries {
        if let Some(row) = rows.iter_mut().find(|r| r.name == name) {
            row.breakdown = Some(summary);
        }
    }

    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "scenario", "ns/op", "ops", "delivered", "activations", "peak q"
    );
    for r in &rows {
        println!(
            "{:<22} {:>12} {:>10} {:>12} {:>12} {:>10}",
            r.name,
            fmt_count(r.ns_per_op() as u64),
            fmt_count(r.ops),
            fmt_count(r.messages_delivered),
            fmt_count(r.node_activations),
            r.peak_queue_depth
        );
    }

    emit(&rows, seed, smoke, &out_path);
}
