//! **E10 — the VRR transfer: "the proposed mechanism also applies to other
//! routing mechanisms such as Virtual Ring Routing".**
//!
//! Runs the *same* linearized bootstrap over both protocols on the same
//! topologies and compares: convergence, message cost, and — the structural
//! contrast — per-node router state, which for VRR includes path state at
//! every *intermediate* node, not just the endpoints. Also runs VRR's
//! baseline (hello beacons carrying the representative) to show the
//! standing dissemination cost linearization removes.
//!
//! The system × n × seed sweep runs through the deterministic orchestrator
//! (docs/SWEEPS.md): output bytes never depend on `--workers`.
//!
//! Known limitation (see DESIGN.md): VRR's hop-by-hop path state is more
//! fragile than SSR's source routes; a small fraction of runs at larger n
//! freeze in a crossing state, reported honestly in the `conv` column.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_vrr_compare`
//! Flags: `--seeds K` (default 5), `--quick`, `--workers N`,
//! `--matrix SPEC` (e.g. `scenario=ssr,vrr-linearized;n=30`), `--csv PATH`.

use ssr_bench::{fmt_count, Args};
use ssr_core::bootstrap::{run_linearized_bootstrap, BootstrapConfig};
use ssr_obs::Value;
use ssr_sim::LinkConfig;
use ssr_vrr::bootstrap::run_vrr_bootstrap;
use ssr_vrr::node::VrrMode;
use ssr_workloads::{run_matrix, summarize_counts, Table, Topology};

struct Row {
    converged: bool,
    ticks: u64,
    msgs: u64,
    hello: u64,
    max_state: usize,
    mean_state: f64,
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 5);
    let sizes: Vec<usize> = if args.quick() {
        vec![16, 30]
    } else {
        vec![16, 30, 50]
    };

    let mut man = ssr_bench::manifest(&args, "exp_vrr_compare");
    man.seed(0);
    let matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        ssr_workloads::Matrix::new(["ssr", "vrr-linearized", "vrr-baseline"], sizes, seeds),
    );

    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let (n, seed) = (job.n, job.seed);
        let topo = Topology::UnitDisk { n, scale: 1.3 };
        let (g, labels) = topo.instance(seed.wrapping_mul(53) ^ n as u64);
        match matrix.name(job) {
            "ssr" => {
                let cfg = BootstrapConfig {
                    seed,
                    max_ticks: 200_000,
                    ..Default::default()
                };
                let (r, _) = run_linearized_bootstrap(&g, &labels, &cfg);
                Row {
                    converged: r.converged,
                    ticks: r.ticks,
                    msgs: r.total_messages,
                    hello: r
                        .messages
                        .iter()
                        .find(|(k, _)| k == "msg.hello")
                        .map(|(_, v)| *v)
                        .unwrap_or(0),
                    max_state: r.max_state,
                    mean_state: r.mean_state,
                }
            }
            mode => {
                let vmode = if mode == "vrr-linearized" {
                    VrrMode::Linearized
                } else {
                    VrrMode::Baseline
                };
                // non-convergent VRR runs burn their whole budget at
                // high message rates; cap it so the sweep stays
                // tractable (convergent runs finish far earlier)
                let budget = if vmode == VrrMode::Baseline {
                    30_000
                } else {
                    60_000
                };
                let (r, _) =
                    run_vrr_bootstrap(&g, &labels, vmode, LinkConfig::ideal(), seed, budget);
                Row {
                    converged: r.converged,
                    ticks: r.ticks,
                    msgs: r.total_messages,
                    hello: r
                        .messages
                        .iter()
                        .find(|(k, _)| k == "msg.hello")
                        .map(|(_, v)| *v)
                        .unwrap_or(0),
                    max_state: r.max_state,
                    mean_state: r.mean_state,
                }
            }
        }
    });

    let mut table = Table::new(
        "E10: linearized SSR vs linearized/baseline VRR (unit-disk)",
        &[
            "n",
            "system",
            "conv",
            "ticks (mean)",
            "msgs (mean)",
            "hello msgs",
            "state max",
            "state mean",
        ],
    );
    let mut sweep_means: Vec<(String, Value)> = Vec::new();

    for (system, n, rows) in sweep.cells() {
        let runs = rows.len();
        let conv = rows.iter().filter(|r| r.converged).count();
        let ticks = summarize_counts(rows.iter().filter(|r| r.converged).map(|r| r.ticks));
        let msgs = summarize_counts(rows.iter().map(|r| r.msgs));
        let hello = summarize_counts(rows.iter().map(|r| r.hello));
        let max_state = rows.iter().map(|r| r.max_state).max().unwrap_or(0);
        let mean_state: f64 =
            rows.iter().map(|r| r.mean_state).sum::<f64>() / rows.len().max(1) as f64;
        sweep_means.push((
            format!("{system}/n={n}"),
            Value::Obj(vec![
                ("converged".into(), (conv as u64).into()),
                ("ticks_mean".into(), ticks.mean.into()),
                ("msgs_mean".into(), msgs.mean.into()),
                ("hello_mean".into(), hello.mean.into()),
                ("state_max".into(), (max_state as u64).into()),
                ("state_mean".into(), mean_state.into()),
            ]),
        ));
        table.row(&[
            n.to_string(),
            system.into(),
            format!("{conv}/{runs}"),
            format!("{:.0}", ticks.mean),
            fmt_count(msgs.mean as u64),
            fmt_count(hello.mean as u64),
            max_state.to_string(),
            format!("{mean_state:.1}"),
        ]);
    }

    table.print();
    println!("\nexpected shape: both linearized systems converge without flooding; the VRR");
    println!("baseline's hello volume dwarfs the others (beacons never stop); VRR's state");
    println!("exceeds SSR's because intermediate nodes hold path entries.");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: one representative SSR run (first matrix seed, largest n)
    // for the full metric/timeline dump; the three-system sweep means ride
    // as extras.
    let rep_n = *matrix.sizes.last().unwrap();
    let rep_seed = matrix.seeds[0];
    man.config("timeline_n", rep_n);
    let (g, labels) = Topology::UnitDisk {
        n: rep_n,
        scale: 1.3,
    }
    .instance(rep_seed.wrapping_mul(53) ^ rep_n as u64);
    let cfg = BootstrapConfig {
        seed: rep_seed,
        max_ticks: 200_000,
        ..Default::default()
    };
    let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
    man.record_metrics(sim.metrics());
    ssr_bench::record_bootstrap_timeline(&mut man, &report.timeline);
    man.extra("sweep", Value::Obj(sweep_means));
    ssr_bench::emit_manifest(&mut man, started);
}
