//! **E2 — Figure 2: separate rings.**
//!
//! The paper's Figure 2 shows nodes {1, 9, 18} and {4, 13, 21} forming two
//! *disjoint* virtual rings — a second class of global inconsistency that
//! local ring maintenance cannot detect: every node has exactly one
//! successor and one predecessor, all claims are locally consistent, yet
//! the virtual graph is partitioned even though the physical network is
//! connected.
//!
//! Construction: two physical triangles bridged by the single link 18–4
//! (chosen so that *neither* bridge endpoint sees a better successor across
//! the bridge — the disjoint rings are then a genuine fixpoint of
//! flood-free ISPRP). The two-ring state is injected, then:
//!
//! 1. **ISPRP without flood** — the two rings persist forever;
//! 2. **ISPRP with flood** — the representative (21) floods, ring A's
//!    members claim toward it, and the rings merge;
//! 3. **linearized SSR** — merges them with zero floods: linearization
//!    "preserves the connectedness of the input graph", so a connected
//!    physical network can never stay partitioned.
//!
//! This is a *narrative replay* of one fixed 6-node instance, not a sweep:
//! the three mechanism sections run serially in story order, so the
//! orchestrator's `--workers`/`--matrix` flags do not apply here (see
//! docs/SWEEPS.md for the sweep binaries).
//!
//! Run: `cargo run --release -p ssr-bench --bin fig2_rings [-- --csv out.csv]`

use std::collections::BTreeMap;

use ssr_bench::Args;
use ssr_core::bootstrap::{
    isprp_shape, make_isprp_nodes, run_linearized_bootstrap, BootstrapConfig,
};
use ssr_core::chaos;
use ssr_core::consistency::{classify_succ_map, RingShape};
use ssr_core::isprp::IsprpConfig;
use ssr_core::route::SourceRoute;
use ssr_graph::{Graph, Labeling};
use ssr_obs::Value;
use ssr_sim::{LinkConfig, Simulator};
use ssr_types::NodeId;
use ssr_workloads::Table;

/// Figure 2's addresses: ring A = {1, 9, 18}, ring B = {4, 13, 21}.
const IDS: [u64; 6] = [1, 9, 18, 4, 13, 21];

/// The figure's world. The two-ring successor map comes from the chaos
/// scenario library: `split_rings_succ` with 2 parts closes each
/// interleaved residue class of the sorted addresses on itself, which is
/// exactly the figure's rings 1→9→18→1 and 4→13→21→4. The physical
/// topology mirrors them as two triangles plus the single bridge 18–4
/// (chosen so neither bridge endpoint sees a better successor across it —
/// the disjoint rings are a genuine fixpoint of flood-free ISPRP).
fn world() -> (Graph, Labeling, BTreeMap<NodeId, NodeId>) {
    let ids: Vec<NodeId> = IDS.iter().map(|&i| NodeId(i)).collect();
    let succ = chaos::split_rings_succ(&ids, 2);
    let labels = Labeling::from_ids(ids);
    let mut g = Graph::new(IDS.len());
    // each ring's edges are physical triangle links
    for (&a, &b) in &succ {
        g.add_edge(labels.index(a).unwrap(), labels.index(b).unwrap());
    }
    // the bridge 18–4 (see above for why this pair)
    g.add_edge(
        labels.index(NodeId(18)).unwrap(),
        labels.index(NodeId(4)).unwrap(),
    );
    (g, labels, succ)
}

/// Injects the two disjoint virtual rings into freshly initialized ISPRP
/// nodes (routes are the triangle links).
fn inject_two_rings(
    sim: &mut Simulator<ssr_core::isprp::IsprpNode>,
    labels: &Labeling,
    succ: &BTreeMap<NodeId, NodeId>,
) {
    for (&a, &b) in succ {
        let ia = labels.index(a).unwrap();
        sim.protocol_mut(ia).inject_succ(SourceRoute::direct(a, b));
    }
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let (topo, labels, ring_succ) = world();
    assert_eq!(
        classify_succ_map(&ring_succ),
        RingShape::Partitioned(2),
        "scenario library must reproduce the figure's two rings"
    );
    let mut man = ssr_bench::manifest(&args, "fig2_rings");
    man.seed(1);

    println!("Figure 2 reproduction — separate rings over a connected physical network");
    println!("ring A: 1→9→18→1   ring B: 4→13→21→4   bridge: 18–4\n");

    let mut table = Table::new(
        "E2: merging separate rings",
        &[
            "mechanism",
            "converged",
            "final shape",
            "ticks",
            "flood msgs",
            "total msgs",
        ],
    );

    // -- ISPRP without flood -------------------------------------------------------
    {
        let cfg = IsprpConfig {
            enable_flood: false,
            ..IsprpConfig::default()
        };
        let nodes = make_isprp_nodes(&labels, cfg);
        let mut sim = Simulator::new(topo.clone(), nodes, LinkConfig::ideal(), 1);
        inject_two_rings(&mut sim, &labels, &ring_succ);
        sim.run_until(ssr_sim::Time(5_000));
        let shape = isprp_shape(sim.protocols());
        println!("ISPRP (no flood) after 5000 ticks: {shape:?}");
        for p in sim.protocols() {
            println!("  {} → {:?}", p.id(), p.succ());
        }
        println!();
        assert_eq!(
            shape,
            RingShape::Partitioned(2),
            "expected the two rings to persist"
        );
        man.extra(
            "isprp_no_flood_tx",
            sim.metrics().counter("tx.total").into(),
        );
        man.extra("isprp_no_flood_shape", Value::Str(shape.label()));
        table.row(&[
            "ISPRP, no flood".into(),
            "no".into(),
            format!("{shape:?}"),
            "5000+".into(),
            sim.metrics().counter("msg.flood").to_string(),
            sim.metrics().counter("tx.total").to_string(),
        ]);
    }

    // -- ISPRP with flood --------------------------------------------------------------
    {
        let cfg = IsprpConfig::default();
        let nodes = make_isprp_nodes(&labels, cfg);
        let mut sim = Simulator::new(topo.clone(), nodes, LinkConfig::ideal(), 1);
        inject_two_rings(&mut sim, &labels, &ring_succ);
        let outcome = sim.run_until_stable(8, 20_000, |nodes, _| {
            isprp_shape(nodes) == RingShape::ConsistentRing
        });
        let shape = isprp_shape(sim.protocols());
        println!(
            "ISPRP (with flood): {shape:?} at t={} (flood msgs: {})",
            outcome.time().ticks(),
            sim.metrics().counter("msg.flood")
        );
        assert_eq!(shape, RingShape::ConsistentRing);
        man.extra("isprp_flood_tx", sim.metrics().counter("tx.total").into());
        man.extra(
            "isprp_flood_msgs",
            sim.metrics().counter("msg.flood").into(),
        );
        man.extra("isprp_flood_ticks", outcome.time().ticks().into());
        table.row(&[
            "ISPRP + flood".into(),
            "yes".into(),
            format!("{shape:?}"),
            outcome.time().ticks().to_string(),
            sim.metrics().counter("msg.flood").to_string(),
            sim.metrics().counter("tx.total").to_string(),
        ]);
    }

    // -- linearized SSR -------------------------------------------------------------------
    {
        let cfg = BootstrapConfig {
            max_ticks: 20_000,
            ..Default::default()
        };
        let (report, sim) = run_linearized_bootstrap(&topo, &labels, &cfg);
        println!(
            "linearized SSR: converged={} at t={} with zero floods",
            report.converged, report.ticks
        );
        println!("final ring (successor walk from node 1):");
        let mut cur = NodeId(1);
        for _ in 0..6 {
            let node = sim.protocols().iter().find(|p| p.id() == cur).unwrap();
            let next = node.ring_succ().unwrap();
            println!("  {cur} → {next}");
            cur = next;
        }
        assert!(report.converged);
        assert_eq!(report.messages.iter().find(|(k, _)| k == "msg.flood"), None);
        man.record_metrics(sim.metrics());
        ssr_bench::record_bootstrap_timeline(&mut man, &report.timeline);
        man.extra("linearized_tx", report.total_messages.into());
        man.extra("linearized_ticks", report.ticks.into());
        table.row(&[
            "linearized SSR".into(),
            "yes".into(),
            format!("{:?}", report.consistency.shape),
            report.ticks.to_string(),
            "0".into(),
            report.total_messages.to_string(),
        ]);
    }

    println!();
    table.print();
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }
    ssr_bench::emit_manifest(&mut man, started);
}
