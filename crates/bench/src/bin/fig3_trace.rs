//! **E3 — Figure 3: the linearization algorithm at work.**
//!
//! The paper's Figure 3 walks the running example through linearization
//! rounds until the sorted line emerges. This binary replays that process
//! with the abstract round engine on the Figure-1 example (the doubly-wound
//! ring over eight addresses), printing the full virtual edge set and each
//! node's left/right neighbor sets per round, for all three variants.
//!
//! This is a pure narrative replay of one fixed 8-node instance — it runs
//! serially and the orchestrator's `--workers`/`--matrix` flags do not
//! apply (see docs/SWEEPS.md for the sweep binaries).
//!
//! Run: `cargo run --release -p ssr-bench --bin fig3_trace [-- --variant pure|memory|lsn]`

use ssr_bench::Args;
use ssr_graph::Graph;
use ssr_linearize::{chain_edges_present, is_exact_chain, run, step_round, Semantics, Variant};
use ssr_obs::Value;

/// The Figure-1 example in rank space: ranks 0..8 stand for addresses
/// 1, 4, 9, 13, 18, 21, 25, 29; the initial virtual graph is the doubly
/// wound ring 0–2–4–6–1–3–5–7–0.
fn example() -> (Graph, [u64; 8]) {
    let order = [0usize, 2, 4, 6, 1, 3, 5, 7];
    let mut g = Graph::new(8);
    for i in 0..8 {
        g.add_edge(order[i], order[(i + 1) % 8]);
    }
    (g, [1, 4, 9, 13, 18, 21, 25, 29])
}

fn show(g: &Graph, ids: &[u64; 8]) {
    let edges: Vec<String> = g
        .edges()
        .map(|(u, v)| format!("{}–{}", ids[u], ids[v]))
        .collect();
    println!("  edges: {}", edges.join(", "));
    for v in 0..8 {
        let left: Vec<u64> = g.neighbors(v).filter(|&u| u < v).map(|u| ids[u]).collect();
        let right: Vec<u64> = g.neighbors(v).filter(|&u| u > v).map(|u| ids[u]).collect();
        println!("    node {:>2}: left {:?} right {:?}", ids[v], left, right);
    }
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let variant = match args.opt("variant").unwrap_or("pure") {
        "pure" => Variant::Pure,
        "memory" => Variant::Memory,
        "lsn" => Variant::lsn(),
        other => panic!("unknown variant {other}"),
    };
    let (g0, ids) = example();

    println!(
        "Figure 3 reproduction — linearization at work ({})",
        variant.name()
    );
    println!("initial virtual graph (the loopy state, drawn as edges):");
    show(&g0, &ids);

    let mut g = g0.clone();
    let mut round = 0;
    while !chain_edges_present(&g) || (matches!(variant, Variant::Pure) && !is_exact_chain(&g)) {
        round += 1;
        g = step_round(&g, variant, Semantics::Star);
        println!("\nafter round {round}:");
        show(&g, &ids);
        if round > 100 {
            println!("(stopping at 100 rounds)");
            break;
        }
    }
    println!(
        "\nline formed after {round} round(s); exact chain: {}",
        is_exact_chain(&g)
    );

    // summary across variants for the same example
    let mut man = ssr_bench::manifest(&args, "fig3_trace");
    man.config("variant", variant.name());
    println!("\nrounds to the line, by variant (star semantics):");
    let mut by_variant: Vec<(String, Value)> = Vec::new();
    for v in [Variant::Pure, Variant::Memory, Variant::lsn()] {
        let r = run(&g0, v, Semantics::Star, 1000);
        println!(
            "  {:<6}: line at round {:?}, exact chain at {:?}, peak degree {}",
            v.name(),
            r.line_at,
            r.exact_at,
            r.peak_degree()
        );
        by_variant.push((
            v.name().to_string(),
            Value::Obj(vec![
                (
                    "line_at".into(),
                    r.line_at
                        .map(|x| Value::from(x as u64))
                        .unwrap_or(Value::Null),
                ),
                (
                    "exact_at".into(),
                    r.exact_at
                        .map(|x| Value::from(x as u64))
                        .unwrap_or(Value::Null),
                ),
                ("peak_degree".into(), (r.peak_degree() as u64).into()),
            ]),
        ));
    }

    // Manifest: the traced variant's per-round timeline plus the summary.
    let traced = run(&g0, variant, Semantics::Star, 1000);
    for rs in &traced.rounds {
        let formed = traced.line_at.is_some_and(|at| rs.round >= at);
        man.timeline_point(ssr_obs::TimelinePoint {
            tick: rs.round as u64,
            shape: if formed { "line" } else { "line-forming" }.to_string(),
            locally_consistent: (8usize.saturating_sub(rs.missing_chain)) as u64,
            nodes: 8,
            churn: (rs.added + rs.removed) as u64,
        });
    }
    man.extra("by_variant", Value::Obj(by_variant));
    ssr_bench::emit_manifest(&mut man, started);
}
