//! **E5 — the power-law datapoint: "α = 2 converges in less than 39
//! rounds".**
//!
//! The paper quotes Onus et al.: LSN linearization on "a power law graph
//! with [100 000] nodes and α = 2 converges in less than 39 rounds". This
//! sweep runs LSN (and the with-memory variant for reference) on erased
//! configuration-model power-law graphs with α = 2 for n up to 100 000 and
//! checks (a) the absolute bound at the largest n and (b) the polylog
//! shape of the growth.
//!
//! The variant × n × seed sweep runs through the deterministic
//! orchestrator (docs/SWEEPS.md): output bytes never depend on `--workers`.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_powerlaw`
//! Flags: `--seeds K` (default 5), `--quick` (up to n = 10⁴), `--alpha A`,
//! `--workers N`, `--matrix SPEC` (e.g. `scenario=lsn;n=1000,10000`),
//! `--csv PATH`.

use ssr_bench::Args;
use ssr_linearize::{run, Semantics, Variant};
use ssr_sim::Metrics;
use ssr_workloads::{run_matrix, stats, Summary, Table, Topology};

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 5);
    let alpha: f64 = args.get("alpha", 2.0);
    let sizes: Vec<usize> = if args.quick() {
        vec![1_000, 3_000, 10_000]
    } else {
        vec![1_000, 3_000, 10_000, 30_000, 100_000]
    };

    let mut man = ssr_bench::manifest(&args, "exp_powerlaw");
    man.config("alpha", alpha);
    let matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        ssr_workloads::Matrix::new(["lsn", "memory"], sizes, seeds),
    );

    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let variant = if matrix.name(job) == "lsn" {
            Variant::lsn()
        } else {
            Variant::Memory
        };
        let topo = Topology::PowerLaw { n: job.n, alpha };
        let (g, labels) = topo.instance(job.seed.wrapping_mul(31) ^ job.n as u64);
        let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
        let r = run(&rg, variant, Semantics::Star, 2000);
        (
            r.line_at.map(|x| x as f64).unwrap_or(f64::NAN),
            r.peak_degree(),
        )
    });

    let mut table = Table::new(
        format!("E5: LSN on power-law graphs (alpha = {alpha})"),
        &["variant", "n", "rounds (mean ± ci)", "max", "peak degree"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut largest_max = 0f64;
    let mut metrics = Metrics::new();

    for (variant, n, results) in sweep.cells() {
        let rounds: Vec<f64> = results
            .iter()
            .map(|&(r, _)| r)
            .filter(|r| r.is_finite())
            .collect();
        let peak = results.iter().map(|&(_, p)| p).max().unwrap_or(0);
        for &(r, p) in results {
            metrics.incr("runs.total");
            if r.is_finite() {
                metrics.incr("runs.converged");
                metrics.observe_hist("rounds.to_line", r as u64);
            }
            metrics.observe_hist("state.peak_degree", p as u64);
        }
        let s = Summary::of(&rounds);
        table.row(&[
            variant.to_string(),
            n.to_string(),
            s.fmt(1),
            format!("{:.0}", s.max),
            peak.to_string(),
        ]);
        if variant == "lsn" {
            xs.push((n as f64).log2());
            ys.push(s.mean.log2());
            if n == *matrix.sizes.last().unwrap() {
                largest_max = s.max;
            }
        }
    }

    table.print();
    println!(
        "\nLSN growth exponent (log2 rounds vs log2 n): {:.2} — polylog expected (≪ 1)",
        stats::slope(&xs, &ys)
    );
    println!(
        "paper datapoint: < 39 rounds at the largest size; measured max at n = {}: {:.0} rounds — {}",
        matrix.sizes.last().unwrap(),
        largest_max,
        if largest_max < 39.0 { "HOLDS" } else { "EXCEEDED" }
    );
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: merged round/degree histograms plus one representative LSN
    // run's round-by-round timeline (first matrix seed, smallest n).
    let rep_n = matrix.sizes[0];
    let rep_seed = matrix.seeds[0];
    man.seed(rep_seed).config("timeline_n", rep_n);
    let (g, labels) =
        Topology::PowerLaw { n: rep_n, alpha }.instance(rep_seed.wrapping_mul(31) ^ rep_n as u64);
    let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
    let rep = run(&rg, Variant::lsn(), Semantics::Star, 2000);
    for rs in &rep.rounds {
        let formed = rep.line_at.is_some_and(|at| rs.round >= at);
        man.timeline_point(ssr_obs::TimelinePoint {
            tick: rs.round as u64,
            shape: if formed { "line" } else { "line-forming" }.to_string(),
            locally_consistent: (rep_n.saturating_sub(rs.missing_chain)) as u64,
            nodes: rep_n as u64,
            churn: (rs.added + rs.removed) as u64,
        });
    }
    man.record_metrics(&metrics)
        .extra("lsn_growth_exponent", stats::slope(&xs, &ys).into())
        .extra("largest_max_rounds", largest_max.into());
    ssr_bench::emit_manifest(&mut man, started);
}
