//! **E4 — convergence class of the linearization variants.**
//!
//! Onus et al. (as summarized in the paper's Section 2): *pure*
//! linearization "may require many iterations for some graphs" (average
//! runtime linear), while *linearization with memory* and *LSN* converge in
//! polylogarithmically many rounds on average for random graphs. This sweep
//! measures rounds-to-line versus `n` for all three variants over four
//! topology families, and reports the fitted growth exponent
//! `slope(log₂ rounds / log₂ n)` — ≈ 1 means linear, ≪ 1 (with rounds ~
//! polylog) means the memory/LSN class.
//!
//! The sweep matrix is `family/variant` scenarios × n × seed, dispatched
//! through the deterministic orchestrator (docs/SWEEPS.md): output bytes
//! never depend on `--workers`.
//!
//! Ablation: `--semantics pairwise` runs Onus et al.'s original one-pair
//! actions (pure variant only) instead of the paper's star rule.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_convergence`
//! Flags: `--seeds K` (default 10), `--quick`, `--semantics star|pairwise`,
//! `--workers N`, `--matrix SPEC` (e.g. `scenario=ring/pure;n=256;seeds=3`),
//! `--csv PATH`.

use ssr_bench::Args;
use ssr_linearize::{run, Semantics, Variant};
use ssr_obs::Value;
use ssr_sim::Metrics;
use ssr_workloads::{run_matrix, stats, Summary, Table, Topology};

/// Topology families swept (the scrambled ring — random labels over a
/// cycle — is where pure linearization's ≈ linear behaviour shows; random
/// graphs are "nice" for every variant).
const FAMILIES: [&str; 4] = ["ring", "regular", "gnp", "small-world"];

fn topo_for(family: &str, n: usize) -> Topology {
    match family {
        "ring" => Topology::Ring { n },
        "regular" => Topology::Regular { n, d: 4 },
        "gnp" => Topology::Gnp { n, c: 2.0 },
        "small-world" => Topology::SmallWorld { n, k: 4, beta: 0.2 },
        other => panic!("unknown family {other}"),
    }
}

fn variant_for(name: &str) -> Variant {
    match name {
        "pure" => Variant::Pure,
        "memory" => Variant::Memory,
        "lsn" => Variant::lsn(),
        other => panic!("unknown variant {other}"),
    }
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 10);
    let semantics = match args.opt("semantics").unwrap_or("star") {
        "star" => Semantics::Star,
        "pairwise" => Semantics::Pairwise,
        other => panic!("unknown semantics {other}"),
    };
    let sizes: Vec<usize> = if args.quick() {
        vec![64, 128, 256]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    };
    let variants: &[&str] = if semantics == Semantics::Pairwise {
        &["pure"]
    } else {
        &["pure", "memory", "lsn"]
    };

    let mut man = ssr_bench::manifest(&args, "exp_convergence");
    man.seed(0).config("semantics", semantics.name());
    let scenarios: Vec<String> = FAMILIES
        .iter()
        .flat_map(|f| variants.iter().map(move |v| format!("{f}/{v}")))
        .collect();
    let matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        ssr_workloads::Matrix::new(scenarios, sizes, seeds),
    );

    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let (family, vname) = matrix.name(job).split_once('/').expect("family/variant");
        let topo = topo_for(family, job.n);
        let variant = variant_for(vname);
        let (g, labels) = topo.instance(job.seed.wrapping_mul(0x9E37) ^ job.n as u64);
        // rank-relabel so index order = identifier order
        let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
        let budget = if matches!(variant, Variant::Pure) {
            80 * job.n
        } else {
            4000
        };
        let r = run(&rg, variant, semantics, budget);
        (
            r.line_at.map(|x| x as f64).unwrap_or(f64::NAN),
            r.peak_degree(),
        )
    });

    let mut table = Table::new(
        format!(
            "E4: rounds to the sorted line ({} semantics)",
            semantics.name()
        ),
        &[
            "family",
            "variant",
            "n",
            "rounds (mean ± ci)",
            "max",
            "peak degree",
        ],
    );
    // per (family, variant): (log2 n, log2 mean rounds) series for the fit
    let mut fits: std::collections::BTreeMap<(String, String), (Vec<f64>, Vec<f64>)> =
        std::collections::BTreeMap::new();
    let mut metrics = Metrics::new();

    for (scenario, n, results) in sweep.cells() {
        let (family, vname) = scenario.split_once('/').expect("family/variant");
        let rounds: Vec<f64> = results
            .iter()
            .map(|&(r, _)| r)
            .filter(|r| r.is_finite())
            .collect();
        let peak = results.iter().map(|&(_, p)| p).max().unwrap_or(0);
        for &(r, p) in results {
            metrics.incr("runs.total");
            if r.is_finite() {
                metrics.incr("runs.converged");
                metrics.observe_hist("rounds.to_line", r as u64);
            }
            metrics.observe_hist("state.peak_degree", p as u64);
        }
        let s = Summary::of(&rounds);
        table.row(&[
            family.to_string(),
            vname.to_string(),
            n.to_string(),
            s.fmt(1),
            format!("{:.0}", s.max),
            peak.to_string(),
        ]);
        let key = (family.to_string(), vname.to_string());
        let entry = fits.entry(key).or_default();
        if s.mean > 0.0 {
            entry.0.push((n as f64).log2());
            entry.1.push(s.mean.log2());
        }
    }

    table.print();
    println!("\nfitted growth exponents (slope of log2 rounds vs log2 n; 1 ≈ linear):");
    let mut fit_values: Vec<(String, Value)> = Vec::new();
    for ((family, variant), (xs, ys)) in &fits {
        let slope = stats::slope(xs, ys);
        println!("  {family:<12} {variant:<7}: {slope:.2}");
        fit_values.push((format!("{family}/{variant}"), slope.into()));
    }
    println!("\npaper claim: pure ≈ linear; memory/LSN polylogarithmic (exponent ≪ 1).");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: the sweep's merged histograms plus one representative run's
    // round-by-round convergence timeline (first matrix seed, smallest
    // scrambled ring, last variant in the sweep).
    let rep_n = matrix.sizes[0];
    let rep_seed = matrix.seeds[0];
    let rep_variant = variant_for(
        matrix
            .scenarios
            .last()
            .and_then(|s| s.split_once('/'))
            .map(|(_, v)| v)
            .unwrap_or("lsn"),
    );
    let (g, labels) =
        Topology::Ring { n: rep_n }.instance(rep_seed.wrapping_mul(0x9E37) ^ rep_n as u64);
    let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
    let budget = if matches!(rep_variant, Variant::Pure) {
        80 * rep_n
    } else {
        4000
    };
    let rep = run(&rg, rep_variant, semantics, budget);
    for rs in &rep.rounds {
        let formed = rep.line_at.is_some_and(|at| rs.round >= at);
        man.timeline_point(ssr_obs::TimelinePoint {
            tick: rs.round as u64,
            shape: if formed { "line" } else { "line-forming" }.to_string(),
            locally_consistent: (rep_n.saturating_sub(rs.missing_chain)) as u64,
            nodes: rep_n as u64,
            churn: (rs.added + rs.removed) as u64,
        });
    }
    man.config("timeline_variant", rep_variant.name())
        .config("timeline_n", rep_n)
        .record_metrics(&metrics)
        .extra("fit_exponent", Value::Obj(fit_values));
    if let Some(at) = rep.line_at {
        man.extra("timeline_line_at", (at as u64).into());
    }
    ssr_bench::emit_manifest(&mut man, started);
}
