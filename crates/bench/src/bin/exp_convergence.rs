//! **E4 — convergence class of the linearization variants.**
//!
//! Onus et al. (as summarized in the paper's Section 2): *pure*
//! linearization "may require many iterations for some graphs" (average
//! runtime linear), while *linearization with memory* and *LSN* converge in
//! polylogarithmically many rounds on average for random graphs. This sweep
//! measures rounds-to-line versus `n` for all three variants over three
//! topology families, and reports the fitted growth exponent
//! `slope(log₂ rounds / log₂ n)` — ≈ 1 means linear, ≪ 1 (with rounds ~
//! polylog) means the memory/LSN class.
//!
//! Ablation: `--semantics pairwise` runs Onus et al.'s original one-pair
//! actions (pure variant only) instead of the paper's star rule.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_convergence`
//! Flags: `--seeds K` (default 10), `--quick`, `--semantics star|pairwise`,
//! `--csv PATH`.

use ssr_bench::Args;
use ssr_linearize::{run, Semantics, Variant};
use ssr_obs::Value;
use ssr_sim::Metrics;
use ssr_workloads::{parallel_map, stats, Summary, Table, Topology};

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 10);
    let semantics = match args.opt("semantics").unwrap_or("star") {
        "star" => Semantics::Star,
        "pairwise" => Semantics::Pairwise,
        other => panic!("unknown semantics {other}"),
    };
    let sizes: Vec<usize> = if args.quick() {
        vec![64, 128, 256]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    };
    let variants: Vec<Variant> = if semantics == Semantics::Pairwise {
        vec![Variant::Pure]
    } else {
        vec![Variant::Pure, Variant::Memory, Variant::lsn()]
    };
    // the scrambled ring (random labels over a cycle) is the family where
    // pure linearization's slow (≈ linear) behaviour shows; random graphs
    // are "nice" for every variant
    let families = |n: usize| {
        vec![
            Topology::Ring { n },
            Topology::Regular { n, d: 4 },
            Topology::Gnp { n, c: 2.0 },
            Topology::SmallWorld { n, k: 4, beta: 0.2 },
        ]
    };

    let mut table = Table::new(
        format!(
            "E4: rounds to the sorted line ({} semantics)",
            semantics.name()
        ),
        &[
            "family",
            "variant",
            "n",
            "rounds (mean ± ci)",
            "max",
            "peak degree",
        ],
    );
    // per (family, variant): (log2 n, log2 mean rounds) series for the fit
    let mut fits: std::collections::BTreeMap<(String, String), (Vec<f64>, Vec<f64>)> =
        std::collections::BTreeMap::new();
    let mut metrics = Metrics::new();

    for &n in &sizes {
        for topo in families(n) {
            for &variant in &variants {
                let inputs: Vec<u64> = (0..seeds).collect();
                let results =
                    parallel_map(inputs, ssr_workloads::sweep::default_workers(), |&seed| {
                        let (g, labels) = topo.instance(seed.wrapping_mul(0x9E37) ^ n as u64);
                        // rank-relabel so index order = identifier order
                        let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
                        let budget = if matches!(variant, Variant::Pure) {
                            80 * n
                        } else {
                            4000
                        };
                        let r = run(&rg, variant, semantics, budget);
                        (
                            r.line_at.map(|x| x as f64).unwrap_or(f64::NAN),
                            r.peak_degree(),
                        )
                    });
                let rounds: Vec<f64> = results
                    .iter()
                    .map(|&(r, _)| r)
                    .filter(|r| r.is_finite())
                    .collect();
                let peak = results.iter().map(|&(_, p)| p).max().unwrap_or(0);
                for &(r, p) in &results {
                    metrics.incr("runs.total");
                    if r.is_finite() {
                        metrics.incr("runs.converged");
                        metrics.observe_hist("rounds.to_line", r as u64);
                    }
                    metrics.observe_hist("state.peak_degree", p as u64);
                }
                let s = Summary::of(&rounds);
                table.row(&[
                    topo.family().to_string(),
                    variant.name().to_string(),
                    n.to_string(),
                    s.fmt(1),
                    format!("{:.0}", s.max),
                    peak.to_string(),
                ]);
                let key = (topo.family().to_string(), variant.name().to_string());
                let entry = fits.entry(key).or_default();
                if s.mean > 0.0 {
                    entry.0.push((n as f64).log2());
                    entry.1.push(s.mean.log2());
                }
            }
        }
    }

    table.print();
    println!("\nfitted growth exponents (slope of log2 rounds vs log2 n; 1 ≈ linear):");
    let mut fit_values: Vec<(String, Value)> = Vec::new();
    for ((family, variant), (xs, ys)) in &fits {
        let slope = stats::slope(xs, ys);
        println!("  {family:<12} {variant:<7}: {slope:.2}");
        fit_values.push((format!("{family}/{variant}"), slope.into()));
    }
    println!("\npaper claim: pure ≈ linear; memory/LSN polylogarithmic (exponent ≪ 1).");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: the sweep's merged histograms plus one representative run's
    // round-by-round convergence timeline (seed 0, smallest scrambled ring,
    // last variant in the sweep).
    let mut man = ssr_bench::manifest(&args, "exp_convergence");
    man.seed(0).config("semantics", semantics.name());
    let rep_n = sizes[0];
    let rep_variant = *variants.last().unwrap();
    let (g, labels) = Topology::Ring { n: rep_n }.instance(rep_n as u64);
    let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
    let budget = if matches!(rep_variant, Variant::Pure) {
        80 * rep_n
    } else {
        4000
    };
    let rep = run(&rg, rep_variant, semantics, budget);
    for rs in &rep.rounds {
        let formed = rep.line_at.is_some_and(|at| rs.round >= at);
        man.timeline_point(ssr_obs::TimelinePoint {
            tick: rs.round as u64,
            shape: if formed { "line" } else { "line-forming" }.to_string(),
            locally_consistent: (rep_n.saturating_sub(rs.missing_chain)) as u64,
            nodes: rep_n as u64,
            churn: (rs.added + rs.removed) as u64,
        });
    }
    man.config("timeline_variant", rep_variant.name())
        .config("timeline_n", rep_n)
        .record_metrics(&metrics)
        .extra("fit_exponent", Value::Obj(fit_values));
    if let Some(at) = rep.line_at {
        man.extra("timeline_line_at", (at as u64).into());
    }
    ssr_bench::emit_manifest(&mut man, started);
}
