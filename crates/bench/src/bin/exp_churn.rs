//! **E8 — self-stabilization under churn, without flooding.**
//!
//! Linearization is self-stabilizing: it converges from *any* state, which
//! in a live network means after node crashes, rejoins, and link flaps.
//! This experiment converges a linearized-SSR network, injects a churn
//! burst (Poisson crash/rejoin plus link flaps), and measures the time and
//! messages to **re**-converge — still with zero flood messages.
//!
//! The n × seed sweep runs through the deterministic orchestrator
//! (docs/SWEEPS.md): output bytes never depend on `--workers`.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_churn`
//! Flags: `--seeds K` (default 5), `--quick`, `--rate R` (crash rate per
//! tick, default 0.02), `--workers N`, `--matrix SPEC` (e.g.
//! `n=100;seeds=3`), `--csv PATH`.

use ssr_bench::{fmt_count, Args};
use ssr_core::bootstrap::{make_ssr_nodes, ssr_timeline_probe, BootstrapConfig};
use ssr_core::consistency;
use ssr_sim::faults::{poisson_crash_rejoin_trace, poisson_link_flap_trace};
use ssr_sim::{LinkConfig, Metrics, Simulator, Time};
use ssr_types::Rng;
use ssr_workloads::{run_matrix, summarize_counts, Table, Topology};

struct Outcome {
    reconverged: bool,
    recovery_ticks: u64,
    recovery_msgs: u64,
    floods: u64,
    // representative-seed observability capture: the full converge → churn
    // → re-converge timeline plus the final metrics registry
    observed: Option<(Vec<ssr_core::ConvergencePoint>, Metrics)>,
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 5);
    let rate: f64 = args.get("rate", 0.02);
    let sizes: Vec<usize> = if args.quick() {
        vec![50]
    } else {
        vec![50, 100, 200]
    };
    let churn_window = 400u64;

    let mut man = ssr_bench::manifest(&args, "exp_churn");
    man.seed(0)
        .config("rate", rate)
        .config("churn_window", churn_window);
    let matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        ssr_workloads::Matrix::new(["churn-burst"], sizes, seeds),
    );
    let rep_seed = matrix.seeds[0];

    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let (n, seed) = (job.n, job.seed);
        let topo = Topology::UnitDisk { n, scale: 1.4 };
        let (g, labels) = topo.instance(seed.wrapping_mul(577) ^ n as u64);
        let cfg = BootstrapConfig::default();
        let nodes = make_ssr_nodes(&labels, cfg.ssr);
        let mut sim = Simulator::new(g.clone(), nodes, LinkConfig::ideal(), seed);
        let timeline = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        if seed == rep_seed {
            sim.add_probe(8, ssr_timeline_probe(std::rc::Rc::clone(&timeline)));
        }
        // phase 1: converge
        let outcome = sim.run_until_stable(8, 300_000, |nodes, _| {
            consistency::check_ring(nodes).consistent()
        });
        assert!(outcome.is_quiescent(), "initial bootstrap failed");
        let t0 = sim.now();
        // phase 2: churn burst
        let mut frng = Rng::new(seed ^ 0xC0FFEE);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let crash_trace = poisson_crash_rejoin_trace(
            n,
            t0 + 1,
            Time(t0.ticks() + churn_window),
            rate,
            40,
            |u| g.neighbors(u).collect(),
            &mut frng,
        );
        let flap_trace = poisson_link_flap_trace(
            &edges,
            t0 + 1,
            Time(t0.ticks() + churn_window),
            rate / 2.0,
            30,
            &mut frng,
        );
        for f in crash_trace.into_iter().chain(flap_trace) {
            sim.schedule_fault(f.at, f.fault);
        }
        let msgs_before = sim.metrics().counter("tx.total");
        // phase 3: let the churn play out, then measure recovery
        sim.run_until(Time(t0.ticks() + churn_window + 50));
        let recover_from = sim.now();
        let outcome = sim.run_until_stable(8, 300_000, |nodes, _| {
            consistency::check_ring(nodes).consistent()
        });
        Outcome {
            reconverged: consistency::check_ring(sim.protocols()).consistent(),
            recovery_ticks: outcome.time() - recover_from,
            recovery_msgs: sim.metrics().counter("tx.total") - msgs_before,
            floods: sim.metrics().counter("msg.flood"),
            observed: (seed == rep_seed)
                .then(|| (timeline.borrow().clone(), sim.metrics().clone())),
        }
    });

    let mut table = Table::new(
        format!("E8: churn recovery (crash rate {rate}/tick over {churn_window} ticks)"),
        &[
            "n",
            "reconverged",
            "recovery ticks (mean)",
            "recovery msgs (mean)",
            "flood msgs",
        ],
    );
    let mut rep_observed: Option<(usize, Vec<ssr_core::ConvergencePoint>, Metrics)> = None;

    for (_, n, outcomes) in sweep.cells() {
        if let Some((tl, m)) = outcomes.iter().find_map(|o| o.observed.clone()) {
            rep_observed = Some((n, tl, m));
        }
        let runs = outcomes.len();
        let ok = outcomes.iter().filter(|o| o.reconverged).count();
        let ticks = summarize_counts(
            outcomes
                .iter()
                .filter(|o| o.reconverged)
                .map(|o| o.recovery_ticks),
        );
        let msgs = summarize_counts(outcomes.iter().map(|o| o.recovery_msgs));
        let floods: u64 = outcomes.iter().map(|o| o.floods).sum();
        table.row(&[
            n.to_string(),
            format!("{ok}/{runs}"),
            format!("{:.0}", ticks.mean),
            fmt_count(msgs.mean as u64),
            floods.to_string(),
        ]);
    }

    table.print();
    println!("\npaper claim: self-stabilization means churn recovery needs no flooding —");
    println!("the flood column must be zero; recovery is local repair plus re-discovery.");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: the representative-seed run at the largest n, whose timeline
    // shows the full dip — converged ring, churn burst, re-convergence.
    if let Some((n, tl, m)) = &rep_observed {
        man.config("timeline_n", n).record_metrics(m);
        ssr_bench::record_bootstrap_timeline(&mut man, tl);
    }
    ssr_bench::emit_manifest(&mut man, started);
}
