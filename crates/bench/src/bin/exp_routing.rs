//! **E7 — routing over the converged ring.**
//!
//! "If the virtual ring has been formed consistently, this routing
//! algorithm is guaranteed to succeed for any source and destination
//! pair." This experiment bootstraps linearized SSR on unit-disk networks,
//! then routes `10·n` random pairs over the converged state: success rate
//! (must be 100%), mean virtual hops (polylog thanks to the cached LSN
//! shortcuts), and physical path stretch versus BFS shortest paths. It
//! also measures mid-convergence success (stopping the bootstrap early) to
//! show the guarantee is really about *consistency*, not luck.
//!
//! The n × seed sweep runs through the deterministic orchestrator
//! (docs/SWEEPS.md): output bytes never depend on `--workers`.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_routing`
//! Flags: `--seeds K` (default 5), `--quick`, `--workers N`,
//! `--matrix SPEC` (e.g. `n=100,200;seeds=3`), `--csv PATH`.

use ssr_bench::Args;
use ssr_core::bootstrap::{make_ssr_nodes, run_linearized_bootstrap, BootstrapConfig};
use ssr_core::routing::{RoutingStats, RoutingView};
use ssr_graph::algo;
use ssr_sim::{LinkConfig, Metrics, Simulator, Time};
use ssr_types::Rng;
use ssr_workloads::{run_matrix, scenario::traffic_pairs, Summary, Table, Topology};

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse();
    let seeds: u64 = args.get("seeds", 5);
    let sizes: Vec<usize> = if args.quick() {
        vec![50, 100]
    } else {
        vec![50, 100, 200, 400]
    };

    let mut man = ssr_bench::manifest(&args, "exp_routing");
    man.seed(0);
    let matrix = ssr_bench::resolve_matrix(
        &args,
        &mut man,
        ssr_workloads::Matrix::new(["unit-disk"], sizes, seeds),
    );
    let rep_seed = matrix.seeds[0];

    let sweep = run_matrix(&matrix, args.workers(), |job| {
        let (n, seed) = (job.n, job.seed);
        let topo = Topology::UnitDisk { n, scale: 1.3 };
        let (g, labels) = topo.instance(seed.wrapping_mul(7919) ^ n as u64);
        let cfg = BootstrapConfig {
            seed,
            max_ticks: 300_000,
            ..Default::default()
        };
        // mid-convergence snapshot: run the same system for only a few
        // ticks and measure routability
        let mut early_sim = Simulator::new(
            g.clone(),
            make_ssr_nodes(&labels, cfg.ssr),
            LinkConfig::ideal(),
            seed,
        );
        early_sim.run_until(Time(6));
        let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
        assert!(report.converged, "bootstrap failed for n={n} seed={seed}");
        let mut rng = Rng::new(seed ^ 0xABCD);
        let pairs = traffic_pairs(n, 10 * n, &mut rng);
        let mut full = RoutingStats::default();
        let mut early = RoutingStats::default();
        // converged-phase routes feed the route.len / route.stretch_milli
        // histograms; registries merge across seeds after the sweep
        let mut metrics = Metrics::new();
        let view = RoutingView::new(sim.protocols());
        let early_view = RoutingView::new(early_sim.protocols());
        for &(a, b) in &pairs {
            let (src, dst) = (labels.id(a), labels.id(b));
            let shortest = algo::bfs_distances(&g, a)[b];
            full.record_observed(view.route(src, dst, 4 * n as u32), shortest, &mut metrics);
            early.record(early_view.route(src, dst, 4 * n as u32), shortest);
        }
        let timeline = (seed == rep_seed).then(|| report.timeline.clone());
        (full, early, metrics, timeline)
    });

    let mut table = Table::new(
        "E7: greedy routing after the linearized bootstrap (unit-disk)",
        &[
            "n",
            "phase",
            "success rate",
            "virt hops (mean)",
            "stretch (mean)",
        ],
    );
    let merged = sweep.merge_metrics(|r| &r.2);
    let mut rep_timeline: Option<(usize, Vec<ssr_core::ConvergencePoint>)> = None;

    type SeedResult = (
        RoutingStats,
        RoutingStats,
        Metrics,
        Option<Vec<ssr_core::ConvergencePoint>>,
    );
    for (_, n, results) in sweep.cells() {
        if let Some(tl) = results.iter().find_map(|r| r.3.as_ref()) {
            rep_timeline = Some((n, tl.clone()));
        }
        let agg = |get: &dyn Fn(&SeedResult) -> RoutingStats, phase: &str, table: &mut Table| {
            let srs: Vec<f64> = results
                .iter()
                .map(|r| get(r).success_rate() * 100.0)
                .collect();
            let hops: Vec<f64> = results.iter().map(|r| get(r).mean_virtual_hops()).collect();
            let stretch: Vec<f64> = results.iter().map(|r| get(r).stretch()).collect();
            table.row(&[
                n.to_string(),
                phase.into(),
                format!("{:.1}%", Summary::of(&srs).mean),
                format!("{:.2}", Summary::of(&hops).mean),
                format!("{:.2}", Summary::of(&stretch).mean),
            ]);
        };
        agg(&|r| r.0, "converged", &mut table);
        agg(&|r| r.1, "t = 6 (mid-bootstrap)", &mut table);
    }

    table.print();
    println!("\npaper claim: 100% delivery once the ring is globally consistent; the");
    println!("mid-bootstrap row shows the guarantee comes from consistency, not chance.");
    if let Some(path) = args.csv() {
        table.to_csv(path).expect("csv");
        println!("(csv written to {path})");
    }

    // Manifest: route.len / route.stretch_milli histograms merged across
    // every seed and size; timeline from the representative-seed run at the
    // largest n.
    man.record_metrics(&merged);
    if let Some((n, tl)) = &rep_timeline {
        man.config("timeline_n", n);
        ssr_bench::record_bootstrap_timeline(&mut man, tl);
    }
    ssr_bench::emit_manifest(&mut man, started);
}
