//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! reproduction (see DESIGN.md's experiment index). They share a minimal
//! command-line convention:
//!
//! * `--seeds K` — repetitions per sweep point (default per experiment),
//! * `--workers N` — sweep fan-out width (`0` = every hardware thread;
//!   default: cores minus one). Output bytes never depend on this — see
//!   docs/SWEEPS.md,
//! * `--matrix SPEC` — override the scenario × n × seed sweep dimensions
//!   (`scenario=a,b;n=50,100;seeds=4`; see
//!   [`ssr_workloads::Matrix::override_with`]),
//! * `--csv PATH` — additionally write the table as CSV,
//! * `--quick` — smaller sweep for smoke-testing,
//! * experiment-specific flags documented in each binary's header.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parsed command-line arguments (flag / key-value convention).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from(raw: &[&str]) -> Args {
        Args {
            raw: raw.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// `true` if `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        let want = format!("--{name}");
        self.raw.iter().any(|a| a == &want)
    }

    /// The value following `--name`, if present.
    pub fn opt(&self, name: &str) -> Option<&str> {
        let want = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &want)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    /// Parses the value following `--name`.
    ///
    /// # Panics
    /// Panics with a readable message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.opt(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|e| panic!("--{name} {v}: {e:?}")),
        }
    }

    /// CSV output path, if requested.
    pub fn csv(&self) -> Option<&str> {
        self.opt("csv")
    }

    /// Quick (smoke-test) mode.
    pub fn quick(&self) -> bool {
        self.flag("quick")
    }

    /// Sweep fan-out width: `--workers N`, where `0` means every hardware
    /// thread; defaults to cores minus one. Worker count affects wall
    /// time only — never output bytes (docs/SWEEPS.md).
    pub fn workers(&self) -> usize {
        match self.get("workers", ssr_workloads::default_workers()) {
            0 => ssr_workloads::orchestrator::max_workers(),
            k => k,
        }
    }
}

/// Resolves a binary's sweep matrix: the experiment's defaults overridden
/// by `--matrix SPEC`, with the *resolved* dimensions recorded in the
/// manifest config. The worker count is deliberately **not** recorded —
/// the manifest must stay byte-identical across `--workers`, and the
/// matrix (not the pool size) is what determines the bytes.
///
/// # Panics
/// Panics with a readable message when the spec does not parse or names an
/// unknown scenario.
pub fn resolve_matrix(
    args: &Args,
    man: &mut ssr_obs::Manifest,
    mut matrix: ssr_workloads::Matrix,
) -> ssr_workloads::Matrix {
    if let Some(spec) = args.opt("matrix") {
        if let Err(e) = matrix.override_with(spec) {
            panic!("--matrix {spec}: {e}");
        }
    }
    man.config("matrix", matrix.describe());
    matrix
}

/// Starts a run manifest for `exp`, pre-filled with the shared CLI
/// configuration (`--quick`, `--seeds`, `--csv`) so every binary records
/// the flags that shaped its sweep the same way.
pub fn manifest(args: &Args, exp: &str) -> ssr_obs::Manifest {
    let mut man = ssr_obs::Manifest::new(exp);
    man.config("quick", args.quick());
    if let Some(seeds) = args.opt("seeds") {
        man.config("seeds", seeds);
    }
    if let Some(csv) = args.csv() {
        man.config("csv", csv);
    }
    man
}

/// Copies a bootstrap convergence timeline (as recorded by the probe
/// subsystem) into a manifest, translating ring shapes to their stable
/// labels.
pub fn record_bootstrap_timeline(
    man: &mut ssr_obs::Manifest,
    timeline: &[ssr_core::ConvergencePoint],
) {
    for p in timeline {
        man.timeline_point(ssr_obs::TimelinePoint {
            tick: p.tick,
            shape: p.shape.label(),
            locally_consistent: p.locally_consistent as u64,
            nodes: p.nodes as u64,
            churn: p.succ_churn as u64,
        });
    }
}

/// Stamps the wall time and writes the manifest to its conventional
/// location (`results/<exp>.manifest.json`). A write failure is reported
/// but never aborts the experiment — manifests are provenance, not results.
pub fn emit_manifest(man: &mut ssr_obs::Manifest, started: std::time::Instant) {
    man.wall_ms(started.elapsed().as_millis() as u64);
    match man.write_default() {
        Ok(path) => println!("(manifest written to {})", path.display()),
        Err(e) => eprintln!("warning: manifest not written: {e}"),
    }
}

/// Formats a large count with thousands separators for readability.
pub fn fmt_count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_and_options() {
        let a = Args::from(&["--quick", "--seeds", "5", "--csv", "/tmp/x.csv"]);
        assert!(a.quick());
        assert!(!a.flag("missing"));
        assert_eq!(a.get("seeds", 10usize), 5);
        assert_eq!(a.get("other", 7u64), 7);
        assert_eq!(a.csv(), Some("/tmp/x.csv"));
    }

    #[test]
    fn manifest_prefills_shared_config() {
        let a = Args::from(&["--quick", "--seeds", "5"]);
        let mut man = manifest(&a, "exp_x");
        record_bootstrap_timeline(
            &mut man,
            &[ssr_core::ConvergencePoint {
                tick: 4,
                shape: ssr_core::consistency::RingShape::Loopy(2),
                locally_consistent: 3,
                nodes: 8,
                succ_churn: 1,
            }],
        );
        let v = ssr_obs::parse(&man.to_json()).unwrap();
        let config = v.get("config").unwrap();
        assert_eq!(config.get("quick").unwrap().as_str(), Some("true"));
        assert_eq!(config.get("seeds").unwrap().as_str(), Some("5"));
        let tl = v.get("timeline").unwrap().as_arr().unwrap();
        assert_eq!(tl[0].get("shape").unwrap().as_str(), Some("loopy(2)"));
        assert_eq!(tl[0].get("churn").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn workers_flag() {
        assert_eq!(Args::from(&["--workers", "4"]).workers(), 4);
        assert!(Args::from(&[]).workers() >= 1);
        // 0 = every hardware thread
        assert!(Args::from(&["--workers", "0"]).workers() >= 1);
    }

    #[test]
    fn resolve_matrix_records_dimensions_but_never_workers() {
        let a = Args::from(&["--matrix", "n=64;seeds=2", "--workers", "8"]);
        let mut man = manifest(&a, "exp_x");
        let m = resolve_matrix(&a, &mut man, ssr_workloads::Matrix::new(["s"], vec![16], 3));
        assert_eq!(m.sizes, vec![64]);
        assert_eq!(m.seeds, vec![0, 1]);
        let json = man.to_json();
        let v = ssr_obs::parse(&json).unwrap();
        let config = v.get("config").unwrap();
        assert_eq!(
            config.get("matrix").unwrap().as_str(),
            Some("scenario=s;n=64;seed=0,1")
        );
        // byte-identity across --workers: the pool size must not leak in
        assert!(!json.contains("workers"));
    }

    #[test]
    fn fmt_count_groups() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(1234), "1_234");
        assert_eq!(fmt_count(1234567), "1_234_567");
    }
}
