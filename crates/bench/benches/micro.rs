//! Criterion micro-benchmarks (B1–B6): the hot paths of the reproduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ssr_core::cache::RouteCache;
use ssr_core::message::{self, ForwardEnvelope, Payload, SsrMsg};
use ssr_core::route::SourceRoute;
use ssr_linearize::{step_round, Semantics, Variant};
use ssr_types::{NodeId, Rng, SeqNo};
use ssr_workloads::Topology;

/// B1: one synchronous linearization round on a 1024-node random graph.
fn bench_linearize_round(c: &mut Criterion) {
    let topo = Topology::Gnp { n: 1024, c: 2.0 };
    let (g, labels) = topo.instance(1);
    let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
    let mut group = c.benchmark_group("linearize_round_n1024");
    for (name, variant) in [
        ("pure", Variant::Pure),
        ("memory", Variant::Memory),
        ("lsn", Variant::lsn()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| step_round(std::hint::black_box(&rg), variant, Semantics::Star))
        });
    }
    group.finish();
}

/// B2: greedy cache lookup (`best_toward`) over a populated cache.
fn bench_cache_lookup(c: &mut Criterion) {
    let mut rng = Rng::new(7);
    let me = rng.node_id();
    let mut cache = RouteCache::new(me);
    for _ in 0..500 {
        let d = rng.node_id();
        if d != me {
            cache.insert(SourceRoute::direct(me, d), false);
        }
    }
    let targets: Vec<NodeId> = (0..64).map(|_| rng.node_id()).collect();
    let mut i = 0;
    c.bench_function("cache_best_toward", |b| {
        b.iter(|| {
            i = (i + 1) % targets.len();
            std::hint::black_box(cache.best_toward(targets[i]))
        })
    });
}

/// B3: cache insert with interval retention (the LSN eviction path).
fn bench_cache_insert(c: &mut Criterion) {
    let mut rng = Rng::new(9);
    let me = rng.node_id();
    c.bench_function("cache_insert_evict", |b| {
        b.iter_batched(
            || RouteCache::new(me),
            |mut cache| {
                for _ in 0..128 {
                    let d = rng.node_id();
                    if d != me {
                        cache.insert(SourceRoute::direct(me, d), false);
                    }
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

/// B4: source-route concatenation with cycle pruning (the notification
/// construction hot path).
fn bench_route_concat(c: &mut Criterion) {
    let mut rng = Rng::new(11);
    let mk = |rng: &mut Rng, len: usize| SourceRoute::from_hops(rng.distinct_node_ids(len));
    let a = mk(&mut rng, 12);
    let b = {
        let mut hops = vec![a.dst()];
        hops.extend(rng.distinct_node_ids(11));
        SourceRoute::from_hops(hops)
    };
    c.bench_function("route_concat_prune", |b_| {
        b_.iter(|| std::hint::black_box(&a).concat(std::hint::black_box(&b)))
    });
}

/// B5: unit-disk topology generation (the per-sweep-point setup cost).
fn bench_topology(c: &mut Criterion) {
    c.bench_function("unit_disk_n400", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Topology::UnitDisk { n: 400, scale: 1.3 }.instance(seed)
        })
    });
}

/// B6: wire encode/decode of a notification with realistic route lengths —
/// header cost of the protocol.
fn bench_codec(c: &mut Criterion) {
    let mut rng = Rng::new(13);
    let route = rng.distinct_node_ids(12);
    let msg = SsrMsg::Forward(ForwardEnvelope {
        route: route.clone(),
        pos: 3,
        trace: vec![],
        payload: Payload::Notify {
            initiator: NodeId(1),
            target_route: rng.distinct_node_ids(10),
            reply_route: rng.distinct_node_ids(8),
            seq: SeqNo(9),
        },
    });
    c.bench_function("msg_encode", |b| {
        b.iter(|| message::encode_to_bytes(std::hint::black_box(&msg)))
    });
    let bytes = message::encode_to_bytes(&msg);
    c.bench_function("msg_decode", |b| {
        b.iter(|| {
            let mut buf = bytes.clone();
            message::decode(std::hint::black_box(&mut buf)).unwrap()
        })
    });
}

/// B7: a full small bootstrap — end-to-end cost of one experiment point.
fn bench_bootstrap(c: &mut Criterion) {
    let topo = Topology::UnitDisk { n: 60, scale: 1.3 };
    let mut group = c.benchmark_group("bootstrap_n60");
    group.sample_size(10);
    group.bench_function("linearized", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (g, labels) = topo.instance(seed);
            let cfg = ssr_core::bootstrap::BootstrapConfig {
                seed,
                ..Default::default()
            };
            ssr_core::bootstrap::run_linearized_bootstrap(&g, &labels, &cfg).0
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_linearize_round,
    bench_cache_lookup,
    bench_cache_insert,
    bench_route_concat,
    bench_topology,
    bench_codec,
    bench_bootstrap
);
criterion_main!(benches);
