//! Criterion core suite: the three paper-level hot paths, end to end.
//!
//! Where `benches/micro.rs` times individual routines (cache lookup, codec,
//! one linearization round), this suite times the *algorithms* the paper is
//! about, at paper scales:
//!
//! * synchronous linearization to convergence at n ∈ {100, 500, 1000};
//! * greedy routing over a converged ring;
//! * chaos recovery from a wound-ring corrupted start in the full
//!   event-driven simulator.
//!
//! These are the same shapes `exp_perf` freezes into `BENCH_perf.json`;
//! run this suite when iterating locally, run `exp_perf` to produce the
//! comparable artifact.
//!
//! Run: `cargo bench -p ssr-bench --bench bench_core` (or `just bench`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::routing::RoutingView;
use ssr_core::{chaos, consistency};
use ssr_linearize::{Semantics, Variant};
use ssr_sim::{LinkConfig, Simulator};
use ssr_types::Rng;
use ssr_workloads::scenario::traffic_pairs;
use ssr_workloads::Topology;

/// Synchronous linearization (LSN variant) from a random connected graph
/// to the fully formed line, per size.
fn bench_linearize_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearize_convergence");
    group.sample_size(10);
    for n in [100usize, 500, 1000] {
        let topo = Topology::Gnp { n, c: 2.0 };
        let (g, labels) = topo.instance(3);
        let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
        group.bench_function(&format!("n{n}"), |b| {
            b.iter(|| {
                let run = ssr_linearize::run(
                    std::hint::black_box(&rg),
                    Variant::lsn(),
                    Semantics::Star,
                    4 * n,
                );
                assert!(run.line_at.is_some(), "linearization did not converge");
                run.rounds.len()
            })
        });
    }
    group.finish();
}

/// Greedy routing over a converged ring: the cost of one routed packet
/// once the bootstrap is done.
fn bench_greedy_routing(c: &mut Criterion) {
    let n = 200;
    let (g, labels) = Topology::UnitDisk { n, scale: 1.3 }.instance(3);
    let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
    let mut sim = Simulator::new(g, nodes, LinkConfig::ideal(), 3);
    let outcome = sim.run_until_stable(8, 300_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    assert!(outcome.is_quiescent(), "bootstrap failed");
    let view = RoutingView::new(sim.protocols());
    let mut rng = Rng::new(11);
    let traffic = traffic_pairs(n, 256, &mut rng);
    let ids = labels.ids();
    let mut i = 0;
    c.bench_function("greedy_route_n200", |b| {
        b.iter(|| {
            i = (i + 1) % traffic.len();
            let (s, d) = traffic[i];
            let out = view.route(ids[s], ids[d], n as u32 + 16);
            assert!(out.delivered());
            out
        })
    });
}

/// Full event-driven recovery from a wound ring (generalized Figure 1) —
/// the simulator hot path under a protocol-heavy workload.
fn bench_chaos_wound_recovery(c: &mut Criterion) {
    let n = 64;
    let mut group = c.benchmark_group("chaos_wound_recovery");
    group.sample_size(10);
    group.bench_function(&format!("n{n}"), |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                let (g, labels) = Topology::UnitDisk { n, scale: 1.3 }.instance(seed);
                let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
                let mut sim = Simulator::new(g, nodes, LinkConfig::ideal(), seed);
                let succ = chaos::wound_ring_succ(labels.ids(), 3);
                chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
                sim
            },
            |mut sim| {
                let outcome = sim.run_until_stable(8, 300_000, |nodes, _| {
                    consistency::check_ring(nodes).consistent()
                });
                assert!(outcome.is_quiescent(), "recovery failed");
                sim.now()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_linearize_convergence,
    bench_greedy_routing,
    bench_chaos_wound_recovery
);
criterion_main!(benches);
