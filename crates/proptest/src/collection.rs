//! Collection strategies.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` with between `size.start` and `size.end - 1` elements drawn
/// from `element`. If the element space is too small to reach the target
/// size, the set is as large as `10 × target` draws allow.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.generate(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(10).max(16) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
