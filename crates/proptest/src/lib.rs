//! In-repo stand-in for the `proptest` crate.
//!
//! The build environment cannot reach the crates.io registry, so this crate
//! vendors the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_shuffle`, `any::<T>()`, integer
//! and float range strategies, tuple strategies, [`collection::vec`] and
//! [`collection::btree_set`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports the case index and the seed
//!   derivation (test path), which is deterministic, so failures replay by
//!   re-running the test.
//! * **`prop_assume!` passes instead of resampling.** Assumption failures
//!   count as successful cases rather than being retried.
//! * Case generation is seeded from the test's module path and name, so
//!   runs are fully deterministic (override the case count with the
//!   `PROPTEST_CASES` environment variable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Just, Strategy};
pub use test_runner::TestRng;

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration accepted via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// The customary glob import for test files.
pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the rest of the current case when `cond` does not hold.
///
/// Unlike real proptest this counts the case as passed instead of
/// resampling — good enough for the low rejection rates these tests have.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests. See the crate docs for supported syntax:
/// each `fn` parameter is either `name: Type` (an `any::<Type>()` value) or
/// `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $crate::__proptest_one!(($cfg) [$(#[$meta])*] $name [] ($($params)*) $body);
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    // Munch one `pattern in strategy` parameter.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] ($p:pat in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_one!(($cfg) [$($meta)*] $name [$($acc)* {$p} {$s}] ($($rest)*) $body);
    };
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] ($p:pat in $s:expr) $body:block) => {
        $crate::__proptest_one!(($cfg) [$($meta)*] $name [$($acc)* {$p} {$s}] () $body);
    };
    // Munch one `name: Type` parameter (sugar for `name in any::<Type>()`).
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] ($p:ident : $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_one!(($cfg) [$($meta)*] $name [$($acc)* {$p} {$crate::any::<$t>()}] ($($rest)*) $body);
    };
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] ($p:ident : $t:ty) $body:block) => {
        $crate::__proptest_one!(($cfg) [$($meta)*] $name [$($acc)* {$p} {$crate::any::<$t>()}] () $body);
    };
    // All parameters munched: emit the test.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$({$p:pat} {$s:expr})*] () $body:block) => {
        $($meta)*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $p = $crate::Strategy::generate(&($s), &mut rng);)*
                let result: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 2usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn typed_params_and_tuples(a: u64, b: u8, (lo, hi) in (0u32..5, 10u32..15)) {
            let _ = (a, b);
            prop_assert!(lo < hi);
        }

        #[test]
        fn vec_and_map_and_shuffle(v in crate::collection::vec(0u64..100, 3..8).prop_shuffle()) {
            prop_assert!(v.len() >= 3 && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(any::<u8>(), n..n + 1)))) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_short_circuits(x in 0u64..10) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn btree_set_sizes() {
        let mut rng = crate::TestRng::deterministic("sets");
        let s = crate::collection::btree_set(crate::any::<u64>(), 1..50);
        for _ in 0..32 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(!v.is_empty() && v.len() < 50);
        }
    }
}
