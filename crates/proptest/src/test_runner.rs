//! Deterministic random number generation for test cases.

/// A small, fast, deterministic RNG (splitmix64 core).
///
/// Each `proptest!` test derives its stream from the test's module path and
/// name, so the sequence of generated cases is stable across runs and
/// machines.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a hash of the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Seeds directly from a number.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Lemire-style widening multiply, debias skipped: the tiny modulo
        // bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for bound in [1u64, 2, 3, 17, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..256 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = TestRng::from_seed(3);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}
