//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates random values of an associated type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// stand-in generates plain values. All combinators used by the workspace
/// are provided.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `f` (resamples, up to an attempt cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Randomly permutes generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes the collection in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        rng.shuffle(self);
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite uniform [0,1) — the workspace only uses floats as
        // probabilities/weights
        rng.unit_f64()
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*
    };
}

range_strategy_int!(u8, u16, u32, usize, i32, i64);

// u64 needs its own impl: `end - start` can be the full span.
impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(span + 1)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}
