//! Scalable Source Routing (SSR) with linearization-based global
//! consistency — the primary contribution of the reproduced paper.
//!
//! SSR is a network-layer routing protocol that organizes all nodes into a
//! **virtual ring** ordered by address, independent of the physical
//! topology. Virtual-ring edges are *source routes* (explicit physical
//! paths); each node additionally caches routes to other destinations, and
//! greedy routing over the cached routes delivers any packet once the ring
//! is globally consistent.
//!
//! This crate implements:
//!
//! * [`route`] — source routes: concatenation through a common node,
//!   reversal, and cycle pruning;
//! * [`cache`] — the route cache, whose exponential-interval retention is
//!   exactly the *shortcut neighbor* structure of LSN;
//! * [`message`] — the protocol messages and their wire codec;
//! * [`node`] — the **linearized bootstrap** (Section 4 of the paper):
//!   neighbor notifications / acknowledgments / tear-downs plus clockwise
//!   and counter-clockwise discovery messages that close the ring, with no
//!   flooding anywhere;
//! * [`isprp`] — the baseline: the iterative successor pointer rewiring
//!   protocol, which needs a representative *flood* for global consistency;
//! * [`routing`] — greedy source routing over converged (or converging)
//!   node state;
//! * [`consistency`] — global-observer checkers: local consistency, loopy
//!   states, partitioned rings, the formed line, and the closed ring;
//! * [`bootstrap`] — one-call experiment drivers returning convergence
//!   reports (rounds, message counts by kind, per-node state);
//! * [`chaos`] — adversarial state injection (wound rings, split rings,
//!   random successor corruption, truncated handshakes, stale cache
//!   routes) and the self-stabilization invariant checker (union-graph
//!   connectedness, zero floods, linearization potential).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod cache;
pub mod chaos;
pub mod consistency;
pub mod isprp;
pub mod message;
pub mod node;
pub mod node_util;
pub mod route;
pub mod routing;

pub use bootstrap::{
    run_isprp_bootstrap, run_linearized_bootstrap, BootstrapConfig, BootstrapReport,
    ConvergencePoint,
};
pub use cache::RouteCache;
pub use consistency::{check_line, check_ring, ConsistencyReport};
pub use node::SsrNode;
pub use route::SourceRoute;
