//! One-call experiment drivers: build a simulator over a labeled topology,
//! run a bootstrap protocol to convergence, and report what it cost.

use ssr_graph::{Graph, Labeling};
use ssr_sim::{LinkConfig, Simulator};
use ssr_types::NodeId;

use crate::consistency::{self, ConsistencyReport, RingShape};
use crate::isprp::{IsprpConfig, IsprpNode};
use crate::node::{SsrConfig, SsrNode};

/// Common experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapConfig {
    /// Link model.
    pub link: LinkConfig,
    /// Simulation seed.
    pub seed: u64,
    /// Give up after this many ticks.
    pub max_ticks: u64,
    /// Consistency-check cadence.
    pub check_every: u64,
    /// SSR protocol tuning (linearized runs).
    pub ssr: SsrConfig,
    /// ISPRP protocol tuning (baseline runs).
    pub isprp: IsprpConfig,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            link: LinkConfig::ideal(),
            seed: 0,
            max_ticks: 100_000,
            check_every: 8,
            ssr: SsrConfig::default(),
            isprp: IsprpConfig::default(),
        }
    }
}

/// One probe sample of the convergence trajectory, taken every
/// `check_every` ticks during a bootstrap run.
#[derive(Clone, Debug)]
pub struct ConvergencePoint {
    /// Sample time.
    pub tick: u64,
    /// Successor-structure classification at that time.
    pub shape: RingShape,
    /// Nodes that were locally consistent.
    pub locally_consistent: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Nodes whose ring successor changed since the previous sample
    /// (0 at the first sample).
    pub succ_churn: usize,
}

/// What a bootstrap run cost and achieved.
#[derive(Clone, Debug)]
pub struct BootstrapReport {
    /// `true` iff global consistency was reached within the budget.
    pub converged: bool,
    /// Ticks until convergence (or the budget).
    pub ticks: u64,
    /// Per-kind message counts (`msg.*` keys from the simulator).
    pub messages: Vec<(String, u64)>,
    /// Total link-layer transmissions.
    pub total_messages: u64,
    /// Largest route cache (entries) across nodes at the end.
    pub max_state: usize,
    /// Mean route-cache entries per node at the end.
    pub mean_state: f64,
    /// Final consistency classification (linearized runs; for ISPRP only
    /// `shape` is meaningful).
    pub consistency: ConsistencyReport,
    /// Convergence trajectory sampled every `check_every` ticks.
    pub timeline: Vec<ConvergencePoint>,
}

impl BootstrapReport {
    /// First sample time at which every node was locally consistent
    /// (stayed so or not — this is the *first* crossing, matching how the
    /// paper reports "local consistency is quickly restored").
    pub fn time_to_local_consistency(&self) -> Option<u64> {
        self.timeline
            .iter()
            .find(|p| p.nodes > 0 && p.locally_consistent == p.nodes)
            .map(|p| p.tick)
    }

    /// First sample time at which the successor structure classified as the
    /// globally consistent ring.
    pub fn time_to_global_consistency(&self) -> Option<u64> {
        self.timeline
            .iter()
            .find(|p| p.shape == RingShape::ConsistentRing)
            .map(|p| p.tick)
    }

    fn from_metrics(
        converged: bool,
        ticks: u64,
        metrics: &ssr_sim::Metrics,
        states: impl Iterator<Item = usize>,
        consistency: ConsistencyReport,
        timeline: Vec<ConvergencePoint>,
    ) -> Self {
        let messages: Vec<(String, u64)> = metrics
            .counters()
            .filter(|(k, _)| k.starts_with("msg."))
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let total_messages = metrics.counter("tx.total");
        let mut max_state = 0usize;
        let mut sum = 0usize;
        let mut count = 0usize;
        for s in states {
            max_state = max_state.max(s);
            sum += s;
            count += 1;
        }
        BootstrapReport {
            converged,
            ticks,
            messages,
            total_messages,
            max_state,
            mean_state: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            consistency,
            timeline,
        }
    }
}

/// Shared timeline recorder: a probe closure samples the successor map via
/// `succ_of`, classifies it with `shape_of`, and appends one
/// [`ConvergencePoint`] per firing. The recorder also feeds the canonical
/// `probe.*` metrics (`probe.samples` counter, `probe.locally_consistent`
/// gauge) so the series sampler picks convergence up too.
fn timeline_probe<P, FS, FH, FL>(
    out: std::rc::Rc<std::cell::RefCell<Vec<ConvergencePoint>>>,
    succ_of: FS,
    shape_of: FH,
    locally_consistent: FL,
) -> impl FnMut(&mut ssr_sim::ProbeView<'_, P>) + 'static
where
    P: ssr_sim::Protocol,
    FS: Fn(&P) -> Option<(NodeId, NodeId)> + 'static,
    FH: Fn(&[P]) -> RingShape + 'static,
    FL: Fn(&P) -> bool + 'static,
{
    let mut prev: Option<std::collections::BTreeMap<NodeId, NodeId>> = None;
    move |view| {
        let succ: std::collections::BTreeMap<NodeId, NodeId> =
            view.protocols.iter().filter_map(&succ_of).collect();
        let succ_churn = match &prev {
            None => 0,
            Some(old) => {
                let changed = succ.iter().filter(|(k, v)| old.get(*k) != Some(*v)).count();
                let vanished = old.keys().filter(|k| !succ.contains_key(*k)).count();
                changed + vanished
            }
        };
        let local = view
            .protocols
            .iter()
            .filter(|p| locally_consistent(p))
            .count();
        view.metrics.incr("probe.samples");
        view.metrics
            .observe("probe.locally_consistent", local as f64);
        out.borrow_mut().push(ConvergencePoint {
            tick: view.now.ticks(),
            shape: shape_of(view.protocols),
            locally_consistent: local,
            nodes: view.protocols.len(),
            succ_churn,
        });
        prev = Some(succ);
    }
}

/// A ready-made convergence recorder for linearized-SSR simulators built
/// outside the one-call runners (the churn experiment drives its own
/// three-phase simulation): install with [`ssr_sim::Simulator::add_probe`]
/// and every firing appends one [`ConvergencePoint`] to `out`.
pub fn ssr_timeline_probe(
    out: std::rc::Rc<std::cell::RefCell<Vec<ConvergencePoint>>>,
) -> impl FnMut(&mut ssr_sim::ProbeView<'_, SsrNode>) + 'static {
    timeline_probe(
        out,
        |n: &SsrNode| n.ring_succ().map(|s| (n.id(), s)),
        |nodes| consistency::check_ring(nodes).shape,
        |n| n.locally_consistent(),
    )
}

/// Builds the linearized-SSR node set for a labeled topology.
pub fn make_ssr_nodes(labels: &Labeling, config: SsrConfig) -> Vec<SsrNode> {
    labels
        .ids()
        .iter()
        .map(|&id| SsrNode::with_config(id, config))
        .collect()
}

/// Builds the ISPRP node set for a labeled topology.
pub fn make_isprp_nodes(labels: &Labeling, config: IsprpConfig) -> Vec<IsprpNode> {
    labels
        .ids()
        .iter()
        .map(|&id| IsprpNode::with_config(id, config))
        .collect()
}

/// Runs the **linearized** bootstrap (the paper's contribution) to global
/// ring consistency. Returns the report and the simulator (for follow-up
/// routing experiments over the converged state).
pub fn run_linearized_bootstrap(
    topo: &Graph,
    labels: &Labeling,
    cfg: &BootstrapConfig,
) -> (BootstrapReport, Simulator<SsrNode>) {
    assert_eq!(topo.node_count(), labels.len());
    let nodes = make_ssr_nodes(labels, cfg.ssr);
    let mut sim = Simulator::new(topo.clone(), nodes, cfg.link, cfg.seed);
    let timeline = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    sim.add_probe(
        cfg.check_every.max(1),
        timeline_probe(
            std::rc::Rc::clone(&timeline),
            |n: &SsrNode| n.ring_succ().map(|s| (n.id(), s)),
            |nodes| consistency::check_ring(nodes).shape,
            |n| n.locally_consistent(),
        ),
    );
    let outcome = sim.run_until_stable(cfg.check_every, cfg.max_ticks, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    let report = consistency::check_ring(sim.protocols());
    let converged = report.consistent();
    let ticks = outcome.time().ticks();
    let states: Vec<usize> = sim.protocols().iter().map(|n| n.cache().len()).collect();
    for &s in &states {
        sim.metrics_mut().observe_hist("state.entries", s as u64);
    }
    let report = BootstrapReport::from_metrics(
        converged,
        ticks,
        sim.metrics(),
        states.into_iter(),
        report,
        timeline.borrow().clone(),
    );
    (report, sim)
}

/// Runs the **ISPRP + representative flood** baseline to global ring
/// consistency (single all-node successor cycle).
pub fn run_isprp_bootstrap(
    topo: &Graph,
    labels: &Labeling,
    cfg: &BootstrapConfig,
) -> (BootstrapReport, Simulator<IsprpNode>) {
    assert_eq!(topo.node_count(), labels.len());
    let nodes = make_isprp_nodes(labels, cfg.isprp);
    let mut sim = Simulator::new(topo.clone(), nodes, cfg.link, cfg.seed);
    let timeline = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    sim.add_probe(
        cfg.check_every.max(1),
        timeline_probe(
            std::rc::Rc::clone(&timeline),
            |n: &IsprpNode| n.succ().map(|s| (n.id(), s)),
            isprp_shape,
            |n| n.locally_consistent(),
        ),
    );
    let outcome = sim.run_until_stable(cfg.check_every, cfg.max_ticks, |nodes, _| {
        isprp_consistent(nodes)
    });
    let shape = isprp_shape(sim.protocols());
    let converged = shape == RingShape::ConsistentRing;
    let n = sim.protocols().len();
    let consistency = ConsistencyReport {
        locally_consistent_nodes: sim
            .protocols()
            .iter()
            .filter(|p| p.locally_consistent())
            .count(),
        nodes: n,
        line_formed: false,
        ring_closed: converged,
        shape,
    };
    let ticks = outcome.time().ticks();
    let states: Vec<usize> = sim.protocols().iter().map(|p| p.cache().len()).collect();
    for &s in &states {
        sim.metrics_mut().observe_hist("state.entries", s as u64);
    }
    let report = BootstrapReport::from_metrics(
        converged,
        ticks,
        sim.metrics(),
        states.into_iter(),
        consistency,
        timeline.borrow().clone(),
    );
    (report, sim)
}

/// The ISPRP convergence predicate: successor pointers form one
/// address-ordered cycle over all nodes.
pub fn isprp_consistent(nodes: &[IsprpNode]) -> bool {
    isprp_shape(nodes) == RingShape::ConsistentRing
}

/// Classifies the ISPRP successor structure.
pub fn isprp_shape(nodes: &[IsprpNode]) -> RingShape {
    if nodes.len() <= 1 {
        return RingShape::ConsistentRing;
    }
    let succ: std::collections::BTreeMap<NodeId, NodeId> = nodes
        .iter()
        .filter_map(|p| p.succ().map(|s| (p.id(), s)))
        .collect();
    if succ.len() < nodes.len() {
        return RingShape::Incomplete;
    }
    consistency::classify_succ_map(&succ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_types::Rng;

    fn topo_and_labels(n: usize, seed: u64) -> (Graph, Labeling) {
        let mut rng = Rng::new(seed);
        let (g, _) = generators::unit_disk_connected(n, 1.3, &mut rng);
        let labels = Labeling::random(n, &mut rng);
        (g, labels)
    }

    #[test]
    fn linearized_bootstrap_converges_on_a_line_topology() {
        let topo = generators::line(6);
        let labels = Labeling::sequential(6, 10);
        let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged, "{report:?}");
        assert_eq!(report.consistency.shape, RingShape::ConsistentRing);
        assert_eq!(report.messages.iter().find(|(k, _)| k == "msg.flood"), None);
    }

    #[test]
    fn linearized_bootstrap_converges_on_unit_disk() {
        for seed in 0..3 {
            let (topo, labels) = topo_and_labels(40, seed);
            let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
            assert!(report.converged, "seed {seed}: {report:?}");
            assert!(report.total_messages > 0);
            assert!(report.max_state >= 2);
        }
    }

    #[test]
    fn linearized_bootstrap_never_floods() {
        let (topo, labels) = topo_and_labels(30, 7);
        let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged);
        assert!(!report.messages.iter().any(|(k, _)| k == "msg.flood"));
    }

    #[test]
    fn isprp_bootstrap_converges_with_flood() {
        for seed in 0..3 {
            let (topo, labels) = topo_and_labels(30, 100 + seed);
            let (report, _) = run_isprp_bootstrap(&topo, &labels, &BootstrapConfig::default());
            assert!(report.converged, "seed {seed}: {report:?}");
            // the flood must have happened
            assert!(
                report
                    .messages
                    .iter()
                    .any(|(k, v)| k == "msg.flood" && *v > 0),
                "no flood messages: {:?}",
                report.messages
            );
        }
    }

    #[test]
    fn two_node_network_closes_its_ring() {
        let topo = generators::line(2);
        let labels = Labeling::sequential(2, 5);
        let (report, sim) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged, "{report:?}");
        let a = &sim.protocols()[0];
        let b = &sim.protocols()[1];
        assert_eq!(a.ring_succ(), Some(b.id()));
        assert_eq!(b.ring_succ(), Some(a.id()));
    }

    #[test]
    fn timeline_tracks_convergence() {
        let (topo, labels) = topo_and_labels(30, 3);
        let (report, sim) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged);
        assert!(!report.timeline.is_empty());
        // the first sample (t=0) is pre-convergence, the last is consistent
        let first = &report.timeline[0];
        assert_eq!(first.tick, 0);
        assert_ne!(first.shape, RingShape::ConsistentRing);
        assert_eq!(first.succ_churn, 0);
        let last = report.timeline.last().unwrap();
        assert_eq!(last.shape, RingShape::ConsistentRing);
        // local consistency also requires settled handshakes, so it can
        // trail the ring shape — but most nodes must have it by the end
        assert!(last.locally_consistent * 2 > last.nodes, "{last:?}");
        // pointers moved at some point
        assert!(report.timeline.iter().any(|p| p.succ_churn > 0));
        let t_global = report.time_to_global_consistency().expect("global");
        assert!(t_global <= report.ticks);
        if let Some(t_local) = report.time_to_local_consistency() {
            assert!(t_local <= report.ticks);
        }
        // probe metrics fed alongside
        assert_eq!(
            sim.metrics().counter("probe.samples"),
            report.timeline.len() as u64
        );
        assert!(sim.metrics().hist("state.entries").is_some());
        assert!(sim.metrics().hist("latency.ticks").is_some());
    }

    #[test]
    fn isprp_timeline_also_records() {
        let (topo, labels) = topo_and_labels(20, 42);
        let (report, _) = run_isprp_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged);
        assert!(!report.timeline.is_empty());
        assert_eq!(
            report.timeline.last().unwrap().shape,
            RingShape::ConsistentRing
        );
    }

    #[test]
    fn single_node_is_trivially_consistent() {
        let topo = Graph::new(1);
        let labels = Labeling::sequential(1, 1);
        let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged);
        assert_eq!(report.ticks, 0);
    }
}
