//! One-call experiment drivers: build a simulator over a labeled topology,
//! run a bootstrap protocol to convergence, and report what it cost.

use ssr_graph::{Graph, Labeling};
use ssr_sim::{LinkConfig, Simulator};
use ssr_types::NodeId;

use crate::consistency::{self, ConsistencyReport, RingShape};
use crate::isprp::{IsprpConfig, IsprpNode};
use crate::node::{SsrConfig, SsrNode};

/// Common experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapConfig {
    /// Link model.
    pub link: LinkConfig,
    /// Simulation seed.
    pub seed: u64,
    /// Give up after this many ticks.
    pub max_ticks: u64,
    /// Consistency-check cadence.
    pub check_every: u64,
    /// SSR protocol tuning (linearized runs).
    pub ssr: SsrConfig,
    /// ISPRP protocol tuning (baseline runs).
    pub isprp: IsprpConfig,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            link: LinkConfig::ideal(),
            seed: 0,
            max_ticks: 100_000,
            check_every: 8,
            ssr: SsrConfig::default(),
            isprp: IsprpConfig::default(),
        }
    }
}

/// What a bootstrap run cost and achieved.
#[derive(Clone, Debug)]
pub struct BootstrapReport {
    /// `true` iff global consistency was reached within the budget.
    pub converged: bool,
    /// Ticks until convergence (or the budget).
    pub ticks: u64,
    /// Per-kind message counts (`msg.*` keys from the simulator).
    pub messages: Vec<(String, u64)>,
    /// Total link-layer transmissions.
    pub total_messages: u64,
    /// Largest route cache (entries) across nodes at the end.
    pub max_state: usize,
    /// Mean route-cache entries per node at the end.
    pub mean_state: f64,
    /// Final consistency classification (linearized runs; for ISPRP only
    /// `shape` is meaningful).
    pub consistency: ConsistencyReport,
}

impl BootstrapReport {
    fn from_metrics(
        converged: bool,
        ticks: u64,
        metrics: &ssr_sim::Metrics,
        states: impl Iterator<Item = usize>,
        consistency: ConsistencyReport,
    ) -> Self {
        let messages: Vec<(String, u64)> = metrics
            .counters()
            .filter(|(k, _)| k.starts_with("msg."))
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let total_messages = metrics.counter("tx.total");
        let mut max_state = 0usize;
        let mut sum = 0usize;
        let mut count = 0usize;
        for s in states {
            max_state = max_state.max(s);
            sum += s;
            count += 1;
        }
        BootstrapReport {
            converged,
            ticks,
            messages,
            total_messages,
            max_state,
            mean_state: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            consistency,
        }
    }
}

/// Builds the linearized-SSR node set for a labeled topology.
pub fn make_ssr_nodes(labels: &Labeling, config: SsrConfig) -> Vec<SsrNode> {
    labels
        .ids()
        .iter()
        .map(|&id| SsrNode::with_config(id, config))
        .collect()
}

/// Builds the ISPRP node set for a labeled topology.
pub fn make_isprp_nodes(labels: &Labeling, config: IsprpConfig) -> Vec<IsprpNode> {
    labels
        .ids()
        .iter()
        .map(|&id| IsprpNode::with_config(id, config))
        .collect()
}

/// Runs the **linearized** bootstrap (the paper's contribution) to global
/// ring consistency. Returns the report and the simulator (for follow-up
/// routing experiments over the converged state).
pub fn run_linearized_bootstrap(
    topo: &Graph,
    labels: &Labeling,
    cfg: &BootstrapConfig,
) -> (BootstrapReport, Simulator<SsrNode>) {
    assert_eq!(topo.node_count(), labels.len());
    let nodes = make_ssr_nodes(labels, cfg.ssr);
    let mut sim = Simulator::new(topo.clone(), nodes, cfg.link, cfg.seed);
    let outcome = sim.run_until_stable(cfg.check_every, cfg.max_ticks, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    let report = consistency::check_ring(sim.protocols());
    let converged = report.consistent();
    let ticks = outcome.time().ticks();
    let report = BootstrapReport::from_metrics(
        converged,
        ticks,
        sim.metrics(),
        sim.protocols().iter().map(|n| n.cache().len()),
        report,
    );
    (report, sim)
}

/// Runs the **ISPRP + representative flood** baseline to global ring
/// consistency (single all-node successor cycle).
pub fn run_isprp_bootstrap(
    topo: &Graph,
    labels: &Labeling,
    cfg: &BootstrapConfig,
) -> (BootstrapReport, Simulator<IsprpNode>) {
    assert_eq!(topo.node_count(), labels.len());
    let nodes = make_isprp_nodes(labels, cfg.isprp);
    let mut sim = Simulator::new(topo.clone(), nodes, cfg.link, cfg.seed);
    let outcome = sim.run_until_stable(cfg.check_every, cfg.max_ticks, |nodes, _| {
        isprp_consistent(nodes)
    });
    let shape = isprp_shape(sim.protocols());
    let converged = shape == RingShape::ConsistentRing;
    let n = sim.protocols().len();
    let consistency = ConsistencyReport {
        locally_consistent_nodes: sim
            .protocols()
            .iter()
            .filter(|p| p.locally_consistent())
            .count(),
        nodes: n,
        line_formed: false,
        ring_closed: converged,
        shape,
    };
    let ticks = outcome.time().ticks();
    let report = BootstrapReport::from_metrics(
        converged,
        ticks,
        sim.metrics(),
        sim.protocols().iter().map(|p| p.cache().len()),
        consistency,
    );
    (report, sim)
}

/// The ISPRP convergence predicate: successor pointers form one
/// address-ordered cycle over all nodes.
pub fn isprp_consistent(nodes: &[IsprpNode]) -> bool {
    isprp_shape(nodes) == RingShape::ConsistentRing
}

/// Classifies the ISPRP successor structure.
pub fn isprp_shape(nodes: &[IsprpNode]) -> RingShape {
    if nodes.len() <= 1 {
        return RingShape::ConsistentRing;
    }
    let succ: std::collections::BTreeMap<NodeId, NodeId> = nodes
        .iter()
        .filter_map(|p| p.succ().map(|s| (p.id(), s)))
        .collect();
    if succ.len() < nodes.len() {
        return RingShape::Incomplete;
    }
    consistency::classify_succ_map(&succ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_types::Rng;

    fn topo_and_labels(n: usize, seed: u64) -> (Graph, Labeling) {
        let mut rng = Rng::new(seed);
        let (g, _) = generators::unit_disk_connected(n, 1.3, &mut rng);
        let labels = Labeling::random(n, &mut rng);
        (g, labels)
    }

    #[test]
    fn linearized_bootstrap_converges_on_a_line_topology() {
        let topo = generators::line(6);
        let labels = Labeling::sequential(6, 10);
        let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged, "{report:?}");
        assert_eq!(report.consistency.shape, RingShape::ConsistentRing);
        assert_eq!(report.messages.iter().find(|(k, _)| k == "msg.flood"), None);
    }

    #[test]
    fn linearized_bootstrap_converges_on_unit_disk() {
        for seed in 0..3 {
            let (topo, labels) = topo_and_labels(40, seed);
            let (report, _) =
                run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
            assert!(report.converged, "seed {seed}: {report:?}");
            assert!(report.total_messages > 0);
            assert!(report.max_state >= 2);
        }
    }

    #[test]
    fn linearized_bootstrap_never_floods() {
        let (topo, labels) = topo_and_labels(30, 7);
        let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged);
        assert!(!report.messages.iter().any(|(k, _)| k == "msg.flood"));
    }

    #[test]
    fn isprp_bootstrap_converges_with_flood() {
        for seed in 0..3 {
            let (topo, labels) = topo_and_labels(30, 100 + seed);
            let (report, _) = run_isprp_bootstrap(&topo, &labels, &BootstrapConfig::default());
            assert!(report.converged, "seed {seed}: {report:?}");
            // the flood must have happened
            assert!(
                report.messages.iter().any(|(k, v)| k == "msg.flood" && *v > 0),
                "no flood messages: {:?}",
                report.messages
            );
        }
    }

    #[test]
    fn two_node_network_closes_its_ring() {
        let topo = generators::line(2);
        let labels = Labeling::sequential(2, 5);
        let (report, sim) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged, "{report:?}");
        let a = &sim.protocols()[0];
        let b = &sim.protocols()[1];
        assert_eq!(a.ring_succ(), Some(b.id()));
        assert_eq!(b.ring_succ(), Some(a.id()));
    }

    #[test]
    fn single_node_is_trivially_consistent() {
        let topo = Graph::new(1);
        let labels = Labeling::sequential(1, 1);
        let (report, _) = run_linearized_bootstrap(&topo, &labels, &BootstrapConfig::default());
        assert!(report.converged);
        assert_eq!(report.ticks, 0);
    }
}
