//! Protocol messages shared by the linearized SSR bootstrap and the ISPRP
//! baseline, plus a binary wire codec (bench B6 measures realistic header
//! cost — source routes travel in packet headers).
//!
//! Transport model: [`SsrMsg::Hello`] is a link-local broadcast;
//! [`SsrMsg::Flood`] is the (baseline-only) network flood;
//! [`SsrMsg::Forward`] is the source-routed envelope that carries every
//! end-to-end [`Payload`] hop by hop along an explicit route.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ssr_types::wire::{self, DecodeError};
use ssr_types::{NodeId, SeqNo};

/// Which way a discovery probe travels around the address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Clockwise: launched by a node with an empty *left* set, seeking the
    /// ring's maximum.
    Cw,
    /// Counter-clockwise: launched by a node with an empty *right* set,
    /// seeking the ring's minimum (the paper's redundancy suggestion).
    Ccw,
}

/// End-to-end payloads delivered at the final node of a [`ForwardEnvelope`].
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// "Consider `target_route.last()` your virtual neighbor; here is a
    /// source route to it." The linearization workhorse (Section 4).
    Notify {
        /// The node performing the linearization step (v1).
        initiator: NodeId,
        /// Route from the *receiver* to the introduced node.
        target_route: Vec<NodeId>,
        /// Route from the receiver back to the initiator (for the ACK).
        reply_route: Vec<NodeId>,
        /// Handshake correlation.
        seq: SeqNo,
    },
    /// Acknowledgment of a [`Payload::Notify`], back to the initiator.
    NotifyAck {
        /// The node the receiver was pointed to.
        about: NodeId,
        /// Echoed handshake correlation.
        seq: SeqNo,
    },
    /// "I removed my virtual edge to you — drop yours too" (the tear-down
    /// acknowledgment of Section 4).
    Teardown {
        /// The node that dropped the edge.
        from: NodeId,
    },
    /// Ring-closure probe, greedily routed along the virtual line.
    Discover {
        /// The node with the empty neighbor set that launched the probe.
        origin: NodeId,
        /// Travel direction.
        dir: Direction,
    },
    /// Ring-closure acceptance, source-routed back to the probe's origin
    /// along the reversed accumulated trace.
    CloseRing {
        /// The accepting extreme (believed max for CW, believed min for
        /// CCW).
        acceptor: NodeId,
        /// Probe direction being answered.
        dir: Direction,
        /// The full physical route `origin → acceptor` (pruned trace).
        route: Vec<NodeId>,
    },
    /// ISPRP: "you are my successor" (baseline protocol).
    SuccNotify {
        /// The claimant.
        from: NodeId,
        /// Route from the receiver back to the claimant.
        reply_route: Vec<NodeId>,
    },
    /// ISPRP: "your successor is `better`, not me" — carries a complete
    /// source route from the receiver to `better` (the paper's
    /// `B→A ++ A→C` construction, precomputed by the sender).
    SuccUpdate {
        /// The better successor.
        better: NodeId,
        /// Route from the receiver to `better`.
        route_to_better: Vec<NodeId>,
    },
    /// An application probe used by the routing experiments: carried
    /// greedily toward `target`.
    DataProbe {
        /// Final virtual destination.
        target: NodeId,
        /// Physical hops traveled so far.
        hops: u32,
    },
}

impl Payload {
    /// Whether envelopes carrying this payload record their physical trace
    /// (needed by discovery so the closing edge has a source route).
    pub fn wants_trace(&self) -> bool {
        matches!(self, Payload::Discover { .. })
    }

    /// Message kind for metrics (`ssr_sim::Protocol::kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Notify { .. } => "notify",
            Payload::NotifyAck { .. } => "ack",
            Payload::Teardown { .. } => "teardown",
            Payload::Discover { .. } | Payload::CloseRing { .. } => "discover",
            Payload::SuccNotify { .. } => "succ",
            Payload::SuccUpdate { .. } => "update",
            Payload::DataProbe { .. } => "data",
        }
    }
}

/// The source-routed transport envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct ForwardEnvelope {
    /// The explicit route, first entry = originating virtual node, last =
    /// destination virtual node.
    pub route: Vec<NodeId>,
    /// Index of the current holder within `route`.
    pub pos: usize,
    /// Accumulated physical trace since the original initiator (only
    /// maintained when `payload.wants_trace()`).
    pub trace: Vec<NodeId>,
    /// The end-to-end content.
    pub payload: Payload,
}

/// All messages exchanged by the SSR protocols.
#[derive(Clone, Debug, PartialEq)]
pub enum SsrMsg {
    /// Link-local neighbor discovery: "my address is `id`".
    ///
    /// `probe` asks the receiver to reply with its own hello even if it
    /// already knows the sender. Initial broadcasts and retries set it:
    /// adjacency knowledge must end up *mutual*, and without a solicited
    /// reply a node whose hellos were all lost could never repair the
    /// asymmetry — its peer, already satisfied, would stay silent forever.
    Hello {
        /// Sender's address.
        id: NodeId,
        /// Whether the sender requests a reply unconditionally.
        probe: bool,
    },
    /// Source-routed transport.
    Forward(ForwardEnvelope),
    /// Network flood used by the ISPRP baseline's representative mechanism
    /// (this is exactly the message class linearization eliminates).
    Flood {
        /// The flood's origin (the self-believed representative).
        origin: NodeId,
        /// Physical trace from the origin to the current holder.
        trace: Vec<NodeId>,
    },
}

impl SsrMsg {
    /// Metrics kind (see `ssr_sim`'s per-kind counters).
    pub fn kind(&self) -> &'static str {
        match self {
            SsrMsg::Hello { .. } => "hello",
            SsrMsg::Forward(env) => env.payload.kind(),
            SsrMsg::Flood { .. } => "flood",
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 0;
const TAG_FORWARD: u8 = 1;
const TAG_FLOOD: u8 = 2;

const PTAG_NOTIFY: u8 = 0;
const PTAG_NOTIFY_ACK: u8 = 1;
const PTAG_TEARDOWN: u8 = 2;
const PTAG_DISCOVER: u8 = 3;
const PTAG_CLOSE_RING: u8 = 4;
const PTAG_SUCC_NOTIFY: u8 = 5;
const PTAG_SUCC_UPDATE: u8 = 6;
const PTAG_DATA_PROBE: u8 = 7;

fn put_dir(buf: &mut BytesMut, dir: Direction) {
    buf.put_u8(match dir {
        Direction::Cw => 0,
        Direction::Ccw => 1,
    });
}

fn get_dir(buf: &mut Bytes) -> Result<Direction, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError {
            context: "direction",
        });
    }
    match buf.get_u8() {
        0 => Ok(Direction::Cw),
        1 => Ok(Direction::Ccw),
        _ => Err(DecodeError {
            context: "direction tag",
        }),
    }
}

/// Encodes a message into `buf`.
pub fn encode(msg: &SsrMsg, buf: &mut BytesMut) {
    match msg {
        SsrMsg::Hello { id, probe } => {
            buf.put_u8(TAG_HELLO);
            wire::put_node_id(buf, *id);
            buf.put_u8(u8::from(*probe));
        }
        SsrMsg::Forward(env) => {
            buf.put_u8(TAG_FORWARD);
            wire::put_id_list(buf, &env.route);
            buf.put_u32(env.pos as u32);
            wire::put_id_list(buf, &env.trace);
            encode_payload(&env.payload, buf);
        }
        SsrMsg::Flood { origin, trace } => {
            buf.put_u8(TAG_FLOOD);
            wire::put_node_id(buf, *origin);
            wire::put_id_list(buf, trace);
        }
    }
}

fn encode_payload(p: &Payload, buf: &mut BytesMut) {
    match p {
        Payload::Notify {
            initiator,
            target_route,
            reply_route,
            seq,
        } => {
            buf.put_u8(PTAG_NOTIFY);
            wire::put_node_id(buf, *initiator);
            wire::put_id_list(buf, target_route);
            wire::put_id_list(buf, reply_route);
            wire::put_seq(buf, *seq);
        }
        Payload::NotifyAck { about, seq } => {
            buf.put_u8(PTAG_NOTIFY_ACK);
            wire::put_node_id(buf, *about);
            wire::put_seq(buf, *seq);
        }
        Payload::Teardown { from } => {
            buf.put_u8(PTAG_TEARDOWN);
            wire::put_node_id(buf, *from);
        }
        Payload::Discover { origin, dir } => {
            buf.put_u8(PTAG_DISCOVER);
            wire::put_node_id(buf, *origin);
            put_dir(buf, *dir);
        }
        Payload::CloseRing {
            acceptor,
            dir,
            route,
        } => {
            buf.put_u8(PTAG_CLOSE_RING);
            wire::put_node_id(buf, *acceptor);
            put_dir(buf, *dir);
            wire::put_id_list(buf, route);
        }
        Payload::SuccNotify { from, reply_route } => {
            buf.put_u8(PTAG_SUCC_NOTIFY);
            wire::put_node_id(buf, *from);
            wire::put_id_list(buf, reply_route);
        }
        Payload::SuccUpdate {
            better,
            route_to_better,
        } => {
            buf.put_u8(PTAG_SUCC_UPDATE);
            wire::put_node_id(buf, *better);
            wire::put_id_list(buf, route_to_better);
        }
        Payload::DataProbe { target, hops } => {
            buf.put_u8(PTAG_DATA_PROBE);
            wire::put_node_id(buf, *target);
            buf.put_u32(*hops);
        }
    }
}

/// Decodes a message from `buf`.
pub fn decode(buf: &mut Bytes) -> Result<SsrMsg, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError {
            context: "message tag",
        });
    }
    match buf.get_u8() {
        TAG_HELLO => {
            let id = wire::get_node_id(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError {
                    context: "hello probe flag",
                });
            }
            Ok(SsrMsg::Hello {
                id,
                probe: buf.get_u8() != 0,
            })
        }
        TAG_FORWARD => {
            let route = wire::get_id_list(buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError {
                    context: "envelope position",
                });
            }
            let pos = buf.get_u32() as usize;
            let trace = wire::get_id_list(buf)?;
            let payload = decode_payload(buf)?;
            Ok(SsrMsg::Forward(ForwardEnvelope {
                route,
                pos,
                trace,
                payload,
            }))
        }
        TAG_FLOOD => Ok(SsrMsg::Flood {
            origin: wire::get_node_id(buf)?,
            trace: wire::get_id_list(buf)?,
        }),
        _ => Err(DecodeError {
            context: "message tag value",
        }),
    }
}

fn decode_payload(buf: &mut Bytes) -> Result<Payload, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError {
            context: "payload tag",
        });
    }
    match buf.get_u8() {
        PTAG_NOTIFY => Ok(Payload::Notify {
            initiator: wire::get_node_id(buf)?,
            target_route: wire::get_id_list(buf)?,
            reply_route: wire::get_id_list(buf)?,
            seq: wire::get_seq(buf)?,
        }),
        PTAG_NOTIFY_ACK => Ok(Payload::NotifyAck {
            about: wire::get_node_id(buf)?,
            seq: wire::get_seq(buf)?,
        }),
        PTAG_TEARDOWN => Ok(Payload::Teardown {
            from: wire::get_node_id(buf)?,
        }),
        PTAG_DISCOVER => Ok(Payload::Discover {
            origin: wire::get_node_id(buf)?,
            dir: get_dir(buf)?,
        }),
        PTAG_CLOSE_RING => Ok(Payload::CloseRing {
            acceptor: wire::get_node_id(buf)?,
            dir: get_dir(buf)?,
            route: wire::get_id_list(buf)?,
        }),
        PTAG_SUCC_NOTIFY => Ok(Payload::SuccNotify {
            from: wire::get_node_id(buf)?,
            reply_route: wire::get_id_list(buf)?,
        }),
        PTAG_SUCC_UPDATE => Ok(Payload::SuccUpdate {
            better: wire::get_node_id(buf)?,
            route_to_better: wire::get_id_list(buf)?,
        }),
        PTAG_DATA_PROBE => {
            let target = wire::get_node_id(buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError {
                    context: "probe hops",
                });
            }
            Ok(Payload::DataProbe {
                target,
                hops: buf.get_u32(),
            })
        }
        _ => Err(DecodeError {
            context: "payload tag value",
        }),
    }
}

/// Encodes into a fresh buffer (convenience for tests and benches).
pub fn encode_to_bytes(msg: &SsrMsg) -> Bytes {
    let mut buf = BytesMut::new();
    encode(msg, &mut buf);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn roundtrip(msg: SsrMsg) {
        let mut b = encode_to_bytes(&msg);
        let back = decode(&mut b).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(b.remaining(), 0, "trailing bytes");
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(SsrMsg::Hello {
            id: NodeId(7),
            probe: false,
        });
        roundtrip(SsrMsg::Hello {
            id: NodeId(7),
            probe: true,
        });
    }

    #[test]
    fn all_payloads_roundtrip() {
        let payloads = vec![
            Payload::Notify {
                initiator: NodeId(1),
                target_route: ids(&[2, 1, 3]),
                reply_route: ids(&[2, 1]),
                seq: SeqNo(9),
            },
            Payload::NotifyAck {
                about: NodeId(3),
                seq: SeqNo(9),
            },
            Payload::Teardown { from: NodeId(1) },
            Payload::Discover {
                origin: NodeId(4),
                dir: Direction::Cw,
            },
            Payload::Discover {
                origin: NodeId(4),
                dir: Direction::Ccw,
            },
            Payload::CloseRing {
                acceptor: NodeId(30),
                dir: Direction::Cw,
                route: ids(&[4, 9, 30]),
            },
            Payload::SuccNotify {
                from: NodeId(5),
                reply_route: ids(&[6, 5]),
            },
            Payload::SuccUpdate {
                better: NodeId(8),
                route_to_better: ids(&[6, 5, 8]),
            },
            Payload::DataProbe {
                target: NodeId(99),
                hops: 12,
            },
        ];
        for payload in payloads {
            roundtrip(SsrMsg::Forward(ForwardEnvelope {
                route: ids(&[1, 2]),
                pos: 0,
                trace: if payload.wants_trace() {
                    ids(&[1])
                } else {
                    vec![]
                },
                payload,
            }));
        }
    }

    #[test]
    fn flood_roundtrip() {
        roundtrip(SsrMsg::Flood {
            origin: NodeId(42),
            trace: ids(&[42, 3, 5]),
        });
    }

    #[test]
    fn kinds() {
        assert_eq!(
            SsrMsg::Hello {
                id: NodeId(0),
                probe: false
            }
            .kind(),
            "hello"
        );
        assert_eq!(
            SsrMsg::Flood {
                origin: NodeId(0),
                trace: vec![]
            }
            .kind(),
            "flood"
        );
        let env = |payload| {
            SsrMsg::Forward(ForwardEnvelope {
                route: vec![],
                pos: 0,
                trace: vec![],
                payload,
            })
        };
        assert_eq!(
            env(Payload::Teardown { from: NodeId(0) }).kind(),
            "teardown"
        );
        assert_eq!(
            env(Payload::Discover {
                origin: NodeId(0),
                dir: Direction::Cw
            })
            .kind(),
            "discover"
        );
        assert_eq!(
            env(Payload::DataProbe {
                target: NodeId(0),
                hops: 0
            })
            .kind(),
            "data"
        );
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let full = encode_to_bytes(&SsrMsg::Forward(ForwardEnvelope {
            route: ids(&[1, 2, 3]),
            pos: 1,
            trace: vec![],
            payload: Payload::Teardown { from: NodeId(1) },
        }));
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode(&mut b).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn only_discover_wants_trace() {
        assert!(Payload::Discover {
            origin: NodeId(0),
            dir: Direction::Cw
        }
        .wants_trace());
        assert!(!Payload::Teardown { from: NodeId(0) }.wants_trace());
        assert!(!Payload::CloseRing {
            acceptor: NodeId(0),
            dir: Direction::Cw,
            route: vec![]
        }
        .wants_trace());
    }
}
