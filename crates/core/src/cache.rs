//! The route cache — SSR's memory, and the reason linearized SSR inherits
//! LSN's polylogarithmic convergence.
//!
//! Nodes "store (some of) these source routes": every route that passes by
//! is a candidate cache entry. Retention follows the shortcut-neighbor
//! structure: relative to the owner, the identifier space on each side is
//! split into exponentially growing intervals, and each interval holds at
//! most one *unpinned* entry (the one identifier-closest to the owner, with
//! route length as tie-break). Virtual-ring neighbors are *pinned* and never
//! evicted. As demonstrated in the SSR papers, "a node typically caches at
//! least one node for each of the exponentially growing intervals" — this
//! module makes that structural guarantee explicit.

use std::collections::BTreeMap;

use ssr_types::{cw_dist, IntervalPartition, NodeId, Side};

use crate::route::SourceRoute;

/// One cached route plus its pin state.
#[derive(Clone, Debug)]
struct CacheEntry {
    route: SourceRoute,
    pinned: bool,
}

/// What [`RouteCache::insert`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// Stored in a free slot.
    Inserted,
    /// Replaced a worse route to the same destination, or evicted the
    /// interval's previous occupant.
    Replaced,
    /// Rejected: the interval's occupant is better (or the route was a
    /// self-route / worse duplicate).
    Rejected,
}

/// A node's route cache.
#[derive(Clone, Debug)]
pub struct RouteCache {
    me: NodeId,
    partition: IntervalPartition,
    entries: BTreeMap<NodeId, CacheEntry>,
    /// Unpinned occupant per (side, interval).
    occupant: BTreeMap<(Side, u32), NodeId>,
}

impl RouteCache {
    /// An empty cache owned by `me`, with base-2 intervals.
    pub fn new(me: NodeId) -> Self {
        Self::with_partition(me, IntervalPartition::base2())
    }

    /// An empty cache with an explicit interval partition (the E9 ablation
    /// varies the base).
    pub fn with_partition(me: NodeId, partition: IntervalPartition) -> Self {
        RouteCache {
            me,
            partition,
            entries: BTreeMap::new(),
            occupant: BTreeMap::new(),
        }
    }

    /// The owner's address.
    pub fn owner(&self) -> NodeId {
        self.me
    }

    /// Number of cached routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total physical hops over all cached routes (a memory/state proxy
    /// reported by experiment E9).
    pub fn total_hops(&self) -> usize {
        self.entries.values().map(|e| e.route.len()).sum()
    }

    /// The cached route to `dst`, if any.
    pub fn get(&self, dst: NodeId) -> Option<&SourceRoute> {
        self.entries.get(&dst).map(|e| &e.route)
    }

    /// `true` iff a route to `dst` is cached.
    pub fn contains(&self, dst: NodeId) -> bool {
        self.entries.contains_key(&dst)
    }

    /// All `(destination, route)` pairs in ascending destination order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SourceRoute)> + '_ {
        self.entries.iter().map(|(&d, e)| (d, &e.route))
    }

    /// All cached destinations in ascending order.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.keys().copied()
    }

    /// Inserts a route (must start at the owner), applying interval
    /// retention. Pinned inserts always succeed; pinning an existing entry
    /// upgrades it.
    ///
    /// # Panics
    /// Panics if the route does not start at the owner.
    pub fn insert(&mut self, route: SourceRoute, pinned: bool) -> InsertOutcome {
        assert_eq!(route.src(), self.me, "cached routes start at the owner");
        let dst = route.dst();
        if dst == self.me {
            return InsertOutcome::Rejected;
        }
        if let Some(existing) = self.entries.get_mut(&dst) {
            let upgraded = pinned && !existing.pinned;
            let better = route.len() < existing.route.len();
            if upgraded {
                // remove from occupant slot — pinned entries don't hold one
                let slot = self.partition.index(self.me, dst).unwrap();
                if self.occupant.get(&slot) == Some(&dst) {
                    self.occupant.remove(&slot);
                }
                existing.pinned = true;
            }
            if better {
                existing.route = route;
            }
            return if better || upgraded {
                InsertOutcome::Replaced
            } else {
                InsertOutcome::Rejected
            };
        }
        let slot = self.partition.index(self.me, dst).unwrap();
        if pinned {
            self.entries.insert(
                dst,
                CacheEntry {
                    route,
                    pinned: true,
                },
            );
            return InsertOutcome::Inserted;
        }
        match self.occupant.get(&slot).copied() {
            None => {
                self.occupant.insert(slot, dst);
                self.entries.insert(
                    dst,
                    CacheEntry {
                        route,
                        pinned: false,
                    },
                );
                InsertOutcome::Inserted
            }
            Some(old) => {
                // LSN rule: keep the identifier-closest to the owner;
                // tie-break on route length.
                let new_key = (self.me.line_dist(dst), route.len());
                let old_len = self.entries[&old].route.len();
                let old_key = (self.me.line_dist(old), old_len);
                if new_key < old_key {
                    self.entries.remove(&old);
                    self.occupant.insert(slot, dst);
                    self.entries.insert(
                        dst,
                        CacheEntry {
                            route,
                            pinned: false,
                        },
                    );
                    InsertOutcome::Replaced
                } else {
                    InsertOutcome::Rejected
                }
            }
        }
    }

    /// Unpins the entry for `dst` (it becomes evictable; if its interval
    /// already has an unpinned occupant the worse of the two is evicted
    /// immediately).
    pub fn unpin(&mut self, dst: NodeId) {
        let Some(entry) = self.entries.get_mut(&dst) else {
            return;
        };
        if !entry.pinned {
            return;
        }
        entry.pinned = false;
        let route = entry.route.clone();
        self.entries.remove(&dst);
        // re-insert through the normal retention path
        let _ = self.insert(route, false);
    }

    /// Removes the entry for `dst` entirely.
    pub fn remove(&mut self, dst: NodeId) -> Option<SourceRoute> {
        let entry = self.entries.remove(&dst)?;
        if !entry.pinned {
            if let Some(slot) = self.partition.index(self.me, dst) {
                if self.occupant.get(&slot) == Some(&dst) {
                    self.occupant.remove(&slot);
                }
            }
        }
        Some(entry.route)
    }

    /// Drops every route that traverses `via` (used when a physical
    /// neighbor disappears — routes through it are no longer trustworthy).
    pub fn purge_via(&mut self, via: NodeId) -> usize {
        let stale: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.route.hops()[1..].contains(&via))
            .map(|(&d, _)| d)
            .collect();
        for d in &stale {
            self.remove(*d);
        }
        stale.len()
    }

    /// Greedy-routing lookup: among cached destinations lying on the
    /// clockwise arc `(me, target]`, the one minimizing the remaining
    /// clockwise distance to `target`; ties broken by shorter route. This
    /// is the "virtually closest to the final destination, physically
    /// closest to itself" rule, with the clockwise-progress constraint that
    /// makes greedy routing loop-free.
    pub fn best_toward(&self, target: NodeId) -> Option<(NodeId, &SourceRoute)> {
        let my_gap = cw_dist(self.me, target);
        let mut best: Option<(u64, usize, NodeId)> = None;
        for (&d, e) in &self.entries {
            let progress = cw_dist(self.me, d);
            if progress == 0 || progress > my_gap {
                continue; // not on the clockwise arc toward the target
            }
            let remaining = cw_dist(d, target);
            let key = (remaining, e.route.len());
            if best.map(|(r, l, _)| key < (r, l)).unwrap_or(true) {
                best = Some((remaining, e.route.len(), d));
            }
        }
        best.map(|(_, _, d)| (d, &self.entries[&d].route))
    }

    /// The numerically largest cached destination greater than the owner
    /// (used by clockwise discovery probes seeking the ring's maximum).
    pub fn largest_above_me(&self) -> Option<(NodeId, &SourceRoute)> {
        self.entries
            .range(self.me..)
            .next_back()
            .filter(|(&d, _)| d > self.me)
            .map(|(&d, e)| (d, &e.route))
    }

    /// The numerically smallest cached destination below the owner (used by
    /// counter-clockwise discovery probes seeking the ring's minimum).
    pub fn smallest_below_me(&self) -> Option<(NodeId, &SourceRoute)> {
        self.entries
            .range(..self.me)
            .next()
            .map(|(&d, e)| (d, &e.route))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u64]) -> SourceRoute {
        SourceRoute::from_hops(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = RouteCache::new(NodeId(100));
        assert_eq!(c.insert(route(&[100, 120]), false), InsertOutcome::Inserted);
        assert_eq!(c.get(NodeId(120)).unwrap().len(), 1);
        assert!(c.contains(NodeId(120)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn self_route_rejected() {
        let mut c = RouteCache::new(NodeId(100));
        assert_eq!(
            c.insert(SourceRoute::trivial(NodeId(100)), false),
            InsertOutcome::Rejected
        );
    }

    #[test]
    fn shorter_route_to_same_destination_wins() {
        let mut c = RouteCache::new(NodeId(100));
        c.insert(route(&[100, 5, 6, 120]), false);
        assert_eq!(c.insert(route(&[100, 120]), false), InsertOutcome::Replaced);
        assert_eq!(c.get(NodeId(120)).unwrap().len(), 1);
        // longer duplicate rejected
        assert_eq!(
            c.insert(route(&[100, 7, 120]), false),
            InsertOutcome::Rejected
        );
    }

    #[test]
    fn interval_eviction_keeps_identifier_closest() {
        let mut c = RouteCache::new(NodeId(0));
        // 5 and 7 share the base-2 interval [4, 8)
        c.insert(route(&[0, 7]), false);
        assert_eq!(c.insert(route(&[0, 1, 5]), false), InsertOutcome::Replaced);
        assert!(c.contains(NodeId(5)));
        assert!(!c.contains(NodeId(7)));
        // 6 is farther from 0 than 5 → rejected
        assert_eq!(c.insert(route(&[0, 6]), false), InsertOutcome::Rejected);
    }

    #[test]
    fn different_intervals_coexist() {
        let mut c = RouteCache::new(NodeId(0));
        for d in [1u64, 2, 4, 8, 16, 32] {
            assert_eq!(
                c.insert(route(&[0, d]), false),
                InsertOutcome::Inserted,
                "dst {d}"
            );
        }
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn left_and_right_sides_are_independent() {
        let mut c = RouteCache::new(NodeId(100));
        assert_eq!(c.insert(route(&[100, 95]), false), InsertOutcome::Inserted);
        assert_eq!(c.insert(route(&[100, 105]), false), InsertOutcome::Inserted);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pinned_entries_never_evicted() {
        let mut c = RouteCache::new(NodeId(0));
        c.insert(route(&[0, 7]), true); // pinned
        assert_eq!(c.insert(route(&[0, 5]), false), InsertOutcome::Inserted);
        assert!(c.contains(NodeId(7)) && c.contains(NodeId(5)));
        // second unpinned in the interval evicts among unpinned only
        assert_eq!(c.insert(route(&[0, 6]), false), InsertOutcome::Rejected);
        assert!(c.contains(NodeId(5)));
    }

    #[test]
    fn unpin_makes_entry_evictable() {
        let mut c = RouteCache::new(NodeId(0));
        c.insert(route(&[0, 7]), true);
        c.insert(route(&[0, 5]), false);
        c.unpin(NodeId(7));
        // 5 is closer to 0 than 7: 7 must have been evicted on unpin
        assert!(!c.contains(NodeId(7)));
        assert!(c.contains(NodeId(5)));
    }

    #[test]
    fn remove_clears_slot() {
        let mut c = RouteCache::new(NodeId(0));
        c.insert(route(&[0, 5]), false);
        assert!(c.remove(NodeId(5)).is_some());
        assert!(c.remove(NodeId(5)).is_none());
        assert_eq!(c.insert(route(&[0, 7]), false), InsertOutcome::Inserted);
    }

    #[test]
    fn purge_via_removes_transiting_routes() {
        let mut c = RouteCache::new(NodeId(0));
        c.insert(route(&[0, 3, 9]), false);
        c.insert(route(&[0, 4, 17]), false);
        c.insert(route(&[0, 3]), true);
        assert_eq!(c.purge_via(NodeId(3)), 2); // the 9-route and the pinned direct route...
                                               // routes *through* 3: [0,3,9] transits 3; [0,3] ends at 3 (also purged:
                                               // hops()[1..] contains 3)
        assert!(!c.contains(NodeId(9)));
        assert!(!c.contains(NodeId(3)));
        assert!(c.contains(NodeId(17)));
    }

    #[test]
    fn best_toward_picks_clockwise_progress() {
        let mut c = RouteCache::new(NodeId(10));
        c.insert(route(&[10, 20]), false);
        c.insert(route(&[10, 40]), false);
        c.insert(route(&[10, 90]), false);
        // target 50: candidates on (10, 50] are 20 and 40; 40 is closest
        let (d, _) = c.best_toward(NodeId(50)).unwrap();
        assert_eq!(d, NodeId(40));
        // target 95: 90 wins
        assert_eq!(c.best_toward(NodeId(95)).unwrap().0, NodeId(90));
        // exact hit
        assert_eq!(c.best_toward(NodeId(20)).unwrap().0, NodeId(20));
    }

    #[test]
    fn best_toward_never_overshoots() {
        let mut c = RouteCache::new(NodeId(10));
        c.insert(route(&[10, 90]), false);
        // target 50: 90 overshoots the arc (10, 50] → no candidate
        assert!(c.best_toward(NodeId(50)).is_none());
    }

    #[test]
    fn best_toward_wraps_clockwise() {
        let mut c = RouteCache::new(NodeId(u64::MAX - 5));
        c.insert(route(&[u64::MAX - 5, 3]), false);
        // target 10 lies clockwise past the wrap point
        assert_eq!(c.best_toward(NodeId(10)).unwrap().0, NodeId(3));
    }

    #[test]
    fn ties_broken_by_route_length() {
        let mut c = RouteCache::new(NodeId(0));
        c.insert(route(&[0, 9, 40]), false);
        c.insert(route(&[0, 40]), false); // replaces with shorter
        let (_, r) = c.best_toward(NodeId(40)).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn extremal_queries() {
        let mut c = RouteCache::new(NodeId(50));
        assert!(c.largest_above_me().is_none());
        assert!(c.smallest_below_me().is_none());
        c.insert(route(&[50, 60]), false);
        c.insert(route(&[50, 80]), false);
        c.insert(route(&[50, 20]), false);
        c.insert(route(&[50, 5]), false);
        assert_eq!(c.largest_above_me().unwrap().0, NodeId(80));
        assert_eq!(c.smallest_below_me().unwrap().0, NodeId(5));
    }

    #[test]
    fn total_hops_accounts_all_routes() {
        let mut c = RouteCache::new(NodeId(0));
        c.insert(route(&[0, 1]), false);
        c.insert(route(&[0, 1, 2]), true);
        assert_eq!(c.total_hops(), 3);
    }
}
