//! Route-validation helpers shared by the protocol implementations.
//!
//! Incoming routes are untrusted data from the network: they may be empty,
//! not anchored at the receiver, or contain consecutive duplicates from a
//! buggy/adversarial peer. These helpers normalize them or reject them.

use ssr_types::NodeId;

use crate::route::SourceRoute;

/// Validates an incoming route: non-empty, starts at `me`, no consecutive
/// duplicates. Returns the cycle-pruned route.
pub fn checked_route(me: NodeId, hops: Vec<NodeId>) -> Option<SourceRoute> {
    if hops.is_empty() || hops[0] != me {
        return None;
    }
    if hops.windows(2).any(|w| w[0] == w[1]) {
        return None;
    }
    Some(SourceRoute::from_hops(hops).pruned())
}

/// Validates a flood/discovery *trace* (`origin → … → me`) and returns the
/// reversed, pruned route `me → origin`.
pub fn checked_route_rev(me: NodeId, trace: &[NodeId], origin: NodeId) -> Option<SourceRoute> {
    if trace.first() != Some(&origin) || trace.last() != Some(&me) {
        return None;
    }
    let mut hops: Vec<NodeId> = trace.to_vec();
    hops.reverse();
    hops.dedup();
    if hops.len() < 2 {
        return None;
    }
    Some(SourceRoute::from_hops(hops).pruned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn checked_route_accepts_valid() {
        let r = checked_route(NodeId(1), ids(&[1, 2, 3])).unwrap();
        assert_eq!(r.dst(), NodeId(3));
    }

    #[test]
    fn checked_route_rejects_bad_anchor_and_dups() {
        assert!(checked_route(NodeId(1), ids(&[])).is_none());
        assert!(checked_route(NodeId(1), ids(&[2, 3])).is_none());
        assert!(checked_route(NodeId(1), ids(&[1, 1, 2])).is_none());
    }

    #[test]
    fn checked_route_prunes_cycles() {
        let r = checked_route(NodeId(1), ids(&[1, 2, 3, 2, 4])).unwrap();
        assert_eq!(r.hops(), &[NodeId(1), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn rev_trace_roundtrip() {
        let r = checked_route_rev(NodeId(5), &ids(&[9, 3, 5]), NodeId(9)).unwrap();
        assert_eq!(r.src(), NodeId(5));
        assert_eq!(r.dst(), NodeId(9));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn rev_trace_rejects_mismatched_ends() {
        assert!(checked_route_rev(NodeId(5), &ids(&[9, 3]), NodeId(9)).is_none());
        assert!(checked_route_rev(NodeId(5), &ids(&[8, 3, 5]), NodeId(9)).is_none());
        assert!(checked_route_rev(NodeId(5), &[], NodeId(9)).is_none());
        // origin == me: a one-element trace has no edge
        assert!(checked_route_rev(NodeId(5), &ids(&[5]), NodeId(5)).is_none());
    }
}
