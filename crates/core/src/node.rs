//! The linearized SSR node — Section 4 of the paper, as a message-level
//! protocol.
//!
//! Upon initialization the virtual edge set is the physical edge set
//! (`E_v := E_p`, learned through link-local hellos). Each node keeps its
//! virtual neighbors split into a **left** and a **right** set by linear
//! address order. Whenever a side holds more than one neighbor, the node
//! linearizes the two *farthest* on that side (the paper's `v2 < v3` with
//! all other right neighbors below both): it sends each a *neighbor
//! notification* carrying a source route to the other, waits for both
//! acknowledgments, then tears down its own edge to the farthest — whose
//! route may survive in the route cache as an LSN shortcut. Repeating this
//! transforms the virtual graph into the sorted line while never
//! disconnecting it.
//!
//! To complete the virtual ring, a node with an empty left set sends a
//! *clockwise discovery* routed greedily toward ever-larger addresses until
//! it reaches a node with an empty right set, which accepts and
//! acknowledges — that edge closes the ring. A node with an empty right set
//! symmetrically probes counter-clockwise "for sake of redundancy".
//! Premature closures (a node that merely *believed* itself an extreme) are
//! self-correcting: discovery claims are themselves linearized — the
//! acceptor introduces competing claimants to each other, and a node whose
//! supposedly-empty side gains a neighbor demotes its ring edge and tears
//! it down.
//!
//! **No message in this protocol floods the network.**

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use ssr_sim::{CauseClass, Ctx, Protocol};
use ssr_types::{IntervalPartition, NodeId, SeqNo};

use crate::cache::RouteCache;
use crate::message::{Direction, ForwardEnvelope, Payload, SsrMsg};
use crate::route::SourceRoute;

/// Timer tokens.
const TOKEN_ACT: u64 = 0;
const TOKEN_RETRY_LEFT: u64 = 1;
const TOKEN_RETRY_RIGHT: u64 = 2;
const TOKEN_DISCOVER: u64 = 3;
const TOKEN_AUDIT: u64 = 4;
const TOKEN_HELLO: u64 = 5;

/// Tuning knobs for the linearized bootstrap.
#[derive(Clone, Copy, Debug)]
pub struct SsrConfig {
    /// Interval base of the route cache's LSN retention.
    pub partition_base: u64,
    /// Delay before the first linearization action (lets hellos land).
    pub act_delay: u64,
    /// Batching window between a state change and the linearization action
    /// it triggers.
    pub act_interval: u64,
    /// Re-send interval for un-acknowledged notification handshakes.
    pub retry_interval: u64,
    /// Delay before the first ring-closure probe.
    pub discover_delay: u64,
    /// Re-probe interval while the node's ring edge is unresolved.
    pub discover_retry: u64,
    /// Launch counter-clockwise probes too (the paper's redundancy
    /// suggestion; ablation `--no-ccw` switches it off).
    pub ccw_redundancy: bool,
    /// Virtual-neighbor audit period: a node periodically re-announces
    /// itself along each virtual edge so a peer that lost the edge (e.g. it
    /// crashed and purged state, or rejoined fresh) re-adopts it. Edges
    /// stay *mutual*, which is what lets linearization resume after churn.
    /// Audits stop after `audit_quiet` unchanged rounds. The default is
    /// `u32::MAX` — never: a crashed-and-rejoined peer leaves no local
    /// signal at the surviving endpoint, so eventual self-stabilization
    /// requires the heartbeat to keep running (it is two messages per node
    /// per period, still flood-free — the lightweight analogue of Chord's
    /// stabilize loop). Set a finite value for self-quiescing simulations.
    pub audit_interval: u64,
    /// Quiet audit rounds before the audit timer stops (`u32::MAX` = never).
    pub audit_quiet: u32,
    /// Tear down delegated edges (the paper's protocol). Off = the
    /// with-memory ablation: neighbor sets only ever grow.
    pub teardown: bool,
    /// Re-probe attempts for links whose peer never identified itself. A
    /// single lost hello (or lost reply) would otherwise leave physical
    /// adjacency *asymmetric* forever: the peer, already satisfied, treats
    /// the link as ground truth while this side cannot route over it.
    pub hello_retries: u32,
    /// Base interval between hello re-probes (backs off exponentially).
    pub hello_retry_interval: u64,
}

impl Default for SsrConfig {
    fn default() -> Self {
        SsrConfig {
            partition_base: 2,
            act_delay: 2,
            act_interval: 2,
            retry_interval: 24,
            discover_delay: 8,
            discover_retry: 48,
            ccw_redundancy: true,
            audit_interval: 48,
            audit_quiet: u32::MAX,
            teardown: true,
            hello_retries: 5,
            hello_retry_interval: 16,
        }
    }
}

/// An in-flight linearization handshake: both notified nodes must ACK
/// before the delegated edge is torn down. Retries re-send with the *same*
/// sequence number (otherwise a round trip longer than the retry interval
/// could never complete) and back off exponentially.
#[derive(Clone, Copy, Debug)]
struct Pending {
    keep: NodeId,
    drop: NodeId,
    seq: SeqNo,
    keep_acked: bool,
    drop_acked: bool,
    retries: u8,
}

impl Pending {
    fn done(&self) -> bool {
        self.keep_acked && self.drop_acked
    }
}

/// Per-node state of the linearized SSR bootstrap.
#[derive(Clone, Debug)]
pub struct SsrNode {
    /// This node's address.
    id: NodeId,
    config: SsrConfig,
    /// Physical neighbors: address → simulator index, learned from hellos.
    nbr_index: BTreeMap<NodeId, usize>,
    /// Physical neighbors: simulator index → address.
    nbr_id: BTreeMap<usize, NodeId>,
    /// Virtual left neighbors (addresses `< id`).
    left: BTreeSet<NodeId>,
    /// Virtual right neighbors (addresses `> id`).
    right: BTreeSet<NodeId>,
    /// Ring-closure edge toward the address-space maximum (set at the node
    /// that believes itself the minimum).
    wrap_pred: Option<NodeId>,
    /// Ring-closure edge toward the address-space minimum (set at the node
    /// that believes itself the maximum).
    wrap_succ: Option<NodeId>,
    /// The route cache (pinned entries = virtual neighbors + ring edges).
    cache: RouteCache,
    pending_left: Option<Pending>,
    pending_right: Option<Pending>,
    seq: SeqNo,
    /// Outstanding discovery probes (cleared by closure or retry timer).
    disc_cw_out: bool,
    disc_ccw_out: bool,
    discover_timer_armed: bool,
    /// Whether an ACT timer is already queued (actions are batched so each
    /// linearization step sees settled state rather than reacting to every
    /// single message — the asynchronous analogue of synchronous rounds).
    act_scheduled: bool,
    audit_armed: bool,
    audit_quiet_rounds: u32,
    audit_last_sig: u64,
    /// Hello re-probe rounds used so far (reset when a link comes up).
    hello_round: u32,
    /// Data probes that reached this node: `(source, physical hops)`.
    delivered_probes: Vec<(NodeId, u32)>,
}

impl SsrNode {
    /// A fresh node with the given address and default configuration.
    pub fn new(id: NodeId) -> Self {
        Self::with_config(id, SsrConfig::default())
    }

    /// A fresh node with explicit tuning.
    pub fn with_config(id: NodeId, config: SsrConfig) -> Self {
        SsrNode {
            id,
            config,
            nbr_index: BTreeMap::new(),
            nbr_id: BTreeMap::new(),
            left: BTreeSet::new(),
            right: BTreeSet::new(),
            wrap_pred: None,
            wrap_succ: None,
            cache: RouteCache::with_partition(id, IntervalPartition::new(config.partition_base)),
            pending_left: None,
            pending_right: None,
            seq: SeqNo::ZERO,
            disc_cw_out: false,
            disc_ccw_out: false,
            discover_timer_armed: false,
            act_scheduled: false,
            audit_armed: false,
            audit_quiet_rounds: 0,
            audit_last_sig: 0,
            hello_round: 0,
            delivered_probes: Vec::new(),
        }
    }

    /// Signature over the neighbor structure; a change restarts audits.
    fn audit_signature(&self) -> u64 {
        let sig = self.closest_left().map_or(0, |k| k.raw().rotate_left(13))
            ^ self.closest_right().map_or(0, |k| k.raw().rotate_left(17));
        sig ^ self.wrap_pred.map_or(0, |p| p.raw().rotate_left(29))
            ^ self.wrap_succ.map_or(0, |p| p.raw().rotate_left(47))
    }

    fn arm_audit(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        if !self.audit_armed {
            self.audit_armed = true;
            ctx.set_timer(self.config.audit_interval, TOKEN_AUDIT);
        }
    }

    /// Re-announces this node along its *ring-relevant* edges — closest
    /// neighbor per side plus the wrap partners: exactly the edges the
    /// global ring needs to be mutual. Auditing every set member instead
    /// would perpetually resurrect edges linearization just delegated away.
    fn run_audit(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        let prev = ctx.set_cause(CauseClass::LinearizationStep);
        // wrap partners are deliberately NOT audited: an audit arrives as a
        // plain notification, which would enter the wrap edge into the
        // peer's *side set* and get it linearized away. Lost wrap edges
        // self-repair through the discovery retry instead.
        let members: Vec<NodeId> = self
            .closest_left()
            .into_iter()
            .chain(self.closest_right())
            .collect();
        let seq = self.seq.bump();
        for m in members {
            let Some(route) = self.cache.get(m).cloned() else {
                continue;
            };
            let back = route.reversed();
            let payload = Payload::Notify {
                initiator: self.id,
                target_route: back.hops().to_vec(),
                reply_route: back.hops().to_vec(),
                seq,
            };
            self.send_payload(ctx, &route, payload);
        }
        ctx.set_cause(prev);
    }

    /// Queues a (deduplicated) linearization action `act_interval` ticks
    /// out. Immediate per-message reactions act on half-updated neighbor
    /// sets and can sustain add/teardown churn; batching lets each step see
    /// the settled outcome of the previous wave.
    fn schedule_act(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        if !self.act_scheduled {
            self.act_scheduled = true;
            ctx.set_timer(self.config.act_interval, TOKEN_ACT);
        }
        self.arm_audit(ctx);
    }

    /// This node's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The route cache (read-only).
    pub fn cache(&self) -> &RouteCache {
        &self.cache
    }

    /// The left virtual-neighbor set.
    pub fn left_set(&self) -> &BTreeSet<NodeId> {
        &self.left
    }

    /// The right virtual-neighbor set.
    pub fn right_set(&self) -> &BTreeSet<NodeId> {
        &self.right
    }

    /// Closest left neighbor (the largest address below ours).
    pub fn closest_left(&self) -> Option<NodeId> {
        self.left.iter().next_back().copied()
    }

    /// Closest right neighbor (the smallest address above ours).
    pub fn closest_right(&self) -> Option<NodeId> {
        self.right.iter().next().copied()
    }

    /// The ring-closure predecessor edge (only meaningful at the minimum).
    pub fn wrap_pred(&self) -> Option<NodeId> {
        self.wrap_pred
    }

    /// The ring-closure successor edge (only meaningful at the maximum).
    pub fn wrap_succ(&self) -> Option<NodeId> {
        self.wrap_succ
    }

    /// The node this one considers its *ring successor*: the closest right
    /// neighbor, or the ring-closure edge when the right side is empty.
    pub fn ring_succ(&self) -> Option<NodeId> {
        self.closest_right().or(self.wrap_succ)
    }

    /// The node this one considers its *ring predecessor*.
    pub fn ring_pred(&self) -> Option<NodeId> {
        self.closest_left().or(self.wrap_pred)
    }

    /// `true` once this node is locally consistent on the line: at most one
    /// neighbor per side and no handshake in flight.
    pub fn locally_consistent(&self) -> bool {
        self.left.len() <= 1
            && self.right.len() <= 1
            && self.pending_left.is_none()
            && self.pending_right.is_none()
    }

    /// Data probes that terminated here.
    pub fn delivered_probes(&self) -> &[(NodeId, u32)] {
        &self.delivered_probes
    }

    // -- state injection (experiments & self-stabilization tests) ----------

    /// Injects a virtual neighbor (experiment-side state setup: the figure
    /// reproductions start from adversarial states — loopy rings, separate
    /// rings — and watch the protocol stabilize out of them).
    pub fn inject_neighbor(&mut self, route: SourceRoute) {
        self.adopt_neighbor(route);
    }

    /// Injects a ring-closure predecessor edge.
    pub fn inject_wrap_pred(&mut self, other: NodeId, route: SourceRoute) {
        assert_eq!(route.src(), self.id);
        assert_eq!(route.dst(), other);
        self.cache.insert(route, true);
        self.wrap_pred = Some(other);
    }

    /// Injects a ring-closure successor edge.
    pub fn inject_wrap_succ(&mut self, other: NodeId, route: SourceRoute) {
        assert_eq!(route.src(), self.id);
        assert_eq!(route.dst(), other);
        self.cache.insert(route, true);
        self.wrap_succ = Some(other);
    }

    /// Injects physical-neighbor knowledge (address ↔ simulator index), as
    /// if a hello had been received. Experiment-side setup only.
    pub fn inject_phys_neighbor(&mut self, id: NodeId, index: usize) {
        self.nbr_index.insert(id, index);
        self.nbr_id.insert(index, id);
    }

    /// Injects an arbitrary *unpinned* route-cache entry — chaos-harness
    /// setup for stale or fabricated cache routes (the hops need not be
    /// physically adjacent; forwarding over them must degrade gracefully,
    /// never panic).
    ///
    /// # Panics
    /// Panics unless the route starts at this node.
    pub fn inject_cache_route(&mut self, route: SourceRoute) {
        assert_eq!(route.src(), self.id, "cache route must start here");
        self.cache.insert(route, false);
    }

    // -- internals ---------------------------------------------------------

    /// Records `route` (me → someone) as a *virtual neighbor*: pinned cache
    /// entry plus membership in the proper side set. Returns `true` if the
    /// node was new to the side set.
    fn adopt_neighbor(&mut self, route: SourceRoute) -> bool {
        let other = route.dst();
        if other == self.id {
            return false;
        }
        self.cache.insert(route, true);
        if other < self.id {
            self.left.insert(other)
        } else {
            self.right.insert(other)
        }
    }

    /// Removes `other` from the side sets and lets the cache's LSN
    /// retention decide whether its route survives as a shortcut.
    fn drop_neighbor(&mut self, other: NodeId) {
        self.left.remove(&other);
        self.right.remove(&other);
        self.unpin_unless_phys(other);
    }

    /// Unpins `other`'s cached route unless `other` is a current physical
    /// neighbor. Physical adjacency is locally-known ground truth: its
    /// one-hop route stays pinned so LSN retention can never evict the
    /// knowledge the union-graph connectivity invariant depends on.
    fn unpin_unless_phys(&mut self, other: NodeId) {
        if !self.nbr_index.contains_key(&other) {
            self.cache.unpin(other);
        }
    }

    /// Sends `payload` source-routed along `route` (which must start at this
    /// node). Trivial routes are ignored.
    fn send_payload(&mut self, ctx: &mut Ctx<'_, SsrMsg>, route: &SourceRoute, payload: Payload) {
        debug_assert_eq!(route.src(), self.id);
        if route.is_empty() {
            return;
        }
        let trace = if payload.wants_trace() {
            vec![self.id]
        } else {
            Vec::new()
        };
        let env = ForwardEnvelope {
            route: route.hops().to_vec(),
            pos: 0,
            trace,
            payload,
        };
        self.forward_env(ctx, env);
    }

    /// Advances an envelope one physical hop (from `pos` to `pos + 1`).
    fn forward_env(&mut self, ctx: &mut Ctx<'_, SsrMsg>, mut env: ForwardEnvelope) {
        let next_pos = env.pos + 1;
        let Some(&next_id) = env.route.get(next_pos) else {
            ctx.metrics().incr("fwd.truncated");
            return;
        };
        let Some(&next_idx) = self.nbr_index.get(&next_id) else {
            // the physical link vanished under the route
            ctx.metrics().incr("fwd.broken");
            return;
        };
        env.pos = next_pos;
        ctx.send(next_idx, SsrMsg::Forward(env));
    }

    /// Route lookup for virtual neighbors (pinned, so always present while
    /// the neighbor is in a set).
    fn route_to(&self, other: NodeId) -> Option<&SourceRoute> {
        self.cache.get(other)
    }

    /// Introduces `about` to `to`: sends `to` a notification with a source
    /// route `to → about` built by concatenation through this node.
    fn introduce(&mut self, ctx: &mut Ctx<'_, SsrMsg>, to: NodeId, about: NodeId, seq: SeqNo) {
        if to == about || to == self.id || about == self.id {
            return;
        }
        let (Some(r_to), Some(r_about)) = (self.route_to(to), self.route_to(about)) else {
            ctx.metrics().incr("fwd.no_route");
            return;
        };
        let reply = r_to.reversed();
        let target = reply.concat(r_about);
        if target.is_empty() {
            return;
        }
        let payload = Payload::Notify {
            initiator: self.id,
            target_route: target.hops().to_vec(),
            reply_route: reply.hops().to_vec(),
            seq,
        };
        let r_to = r_to.clone();
        self.send_payload(ctx, &r_to, payload);
    }

    /// The linearization driver: performs one handshake per side, launches
    /// discovery, demotes stale ring edges. Called after every relevant
    /// state change; safe to call at any time.
    fn act(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        self.demote_stale_wraps(ctx);
        self.linearize_side(ctx, Direction::Cw);
        self.linearize_side(ctx, Direction::Ccw);
        self.maybe_discover(ctx);
    }

    /// Handshake retry: re-send the un-acked notifications with the *same*
    /// sequence number and exponential backoff. After several retries the
    /// handshake is abandoned (the peer or route may be gone) and `act`
    /// re-evaluates from scratch.
    fn retry_pending(&mut self, ctx: &mut Ctx<'_, SsrMsg>, side: Direction, seq: SeqNo) {
        let slot = match side {
            Direction::Ccw => &mut self.pending_left,
            Direction::Cw => &mut self.pending_right,
        };
        let Some(p) = slot else { return };
        if p.seq != seq {
            return; // timer from a superseded handshake
        }
        let prev = ctx.set_cause(CauseClass::LinearizationStep);
        if p.retries >= 4 {
            // the handshake cannot complete — after churn, a set member's
            // source route may silently be dead. Drop the unresponsive
            // endpoints (their routes too): live nodes re-enter via hellos
            // and fresh notifications; ghosts stay gone.
            //
            // Exception: a *current physical neighbor* is never a ghost —
            // the link is up, so a one-hop direct route cannot be dead.
            // Forgetting it here would violate the E_p ⊆ knowledge
            // invariant the linearization convergence argument rests on:
            // a burst of loss exhausting the retries could then sever the
            // only knowledge bridge across an address gap and freeze the
            // whole system short of consistency. Re-adopt the direct edge
            // instead and let `act` linearize it again once the burst ends.
            let p = *p;
            *slot = None;
            for (ep, acked) in [(p.keep, p.keep_acked), (p.drop, p.drop_acked)] {
                if acked {
                    continue;
                }
                if self.nbr_index.contains_key(&ep) {
                    self.adopt_neighbor(SourceRoute::direct(self.id, ep));
                } else {
                    self.drop_neighbor(ep);
                    self.cache.remove(ep);
                }
            }
            self.schedule_act(ctx);
            ctx.set_cause(prev);
            return;
        }
        p.retries += 1;
        let p = *p;
        let delay = self.config.retry_interval << p.retries;
        if !p.keep_acked {
            self.introduce(ctx, p.keep, p.drop, p.seq);
        }
        if !p.drop_acked {
            self.introduce(ctx, p.drop, p.keep, p.seq);
        }
        let token = match side {
            Direction::Ccw => TOKEN_RETRY_LEFT,
            Direction::Cw => TOKEN_RETRY_RIGHT,
        };
        ctx.set_timer(delay, token | ((seq.0 as u64) << 8));
        ctx.set_cause(prev);
    }

    /// A ring edge at a node whose "empty" side gained a neighbor was
    /// premature: tear it down so both ends re-resolve.
    fn demote_stale_wraps(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        if !self.left.is_empty() {
            if let Some(p) = self.wrap_pred.take() {
                self.teardown_to(ctx, p);
            }
        }
        if !self.right.is_empty() {
            if let Some(s) = self.wrap_succ.take() {
                self.teardown_to(ctx, s);
            }
        }
    }

    fn teardown_to(&mut self, ctx: &mut Ctx<'_, SsrMsg>, other: NodeId) {
        let prev = ctx.set_cause(CauseClass::LinearizationStep);
        if let Some(route) = self.route_to(other).cloned() {
            self.send_payload(ctx, &route, Payload::Teardown { from: self.id });
        }
        self.cache.unpin(other);
        ctx.set_cause(prev);
    }

    /// One linearization step on one side, if that side has more than one
    /// neighbor and no handshake is already in flight.
    fn linearize_side(&mut self, ctx: &mut Ctx<'_, SsrMsg>, side: Direction) {
        let pending = match side {
            Direction::Cw => &self.pending_right,
            Direction::Ccw => &self.pending_left,
        };
        if pending.is_some() {
            return;
        }
        // The two *farthest* on the side (the paper's v2 < v3 with every
        // other right neighbor below both): drop the farthest, keep the
        // second-farthest, introduce them to each other.
        let (keep, drop) = match side {
            Direction::Cw => {
                if self.right.len() < 2 {
                    return;
                }
                let mut it = self.right.iter().rev();
                let drop = *it.next().unwrap();
                let keep = *it.next().unwrap();
                (keep, drop)
            }
            Direction::Ccw => {
                if self.left.len() < 2 {
                    return;
                }
                let mut it = self.left.iter();
                let drop = *it.next().unwrap();
                let keep = *it.next().unwrap();
                (keep, drop)
            }
        };
        let prev = ctx.set_cause(CauseClass::LinearizationStep);
        let seq = self.seq.bump();
        self.introduce(ctx, keep, drop, seq);
        self.introduce(ctx, drop, keep, seq);
        let pending = Pending {
            keep,
            drop,
            seq,
            keep_acked: false,
            drop_acked: false,
            retries: 0,
        };
        // the retry token carries the handshake's seq so a late timer from a
        // completed handshake cannot cancel its successor
        match side {
            Direction::Cw => {
                self.pending_right = Some(pending);
                ctx.set_timer(
                    self.config.retry_interval,
                    TOKEN_RETRY_RIGHT | ((seq.0 as u64) << 8),
                );
            }
            Direction::Ccw => {
                self.pending_left = Some(pending);
                ctx.set_timer(
                    self.config.retry_interval,
                    TOKEN_RETRY_LEFT | ((seq.0 as u64) << 8),
                );
            }
        }
        ctx.set_cause(prev);
    }

    /// Launches ring-closure probes for empty sides; (re)arms the probe
    /// retry timer while any side is unresolved.
    fn maybe_discover(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        if self.cache.is_empty() {
            return;
        }
        let prev = ctx.set_cause(CauseClass::LinearizationStep);
        let need_cw = self.left.is_empty() && self.wrap_pred.is_none();
        let need_ccw =
            self.config.ccw_redundancy && self.right.is_empty() && self.wrap_succ.is_none();
        let now = ctx.now().ticks();
        if now < self.config.discover_delay {
            // too early to probe — wake up again once the settle delay is
            // over, otherwise an already-linear network would quiesce
            // without ever closing its ring
            if (need_cw || need_ccw) && !self.discover_timer_armed {
                self.discover_timer_armed = true;
                ctx.set_timer(self.config.discover_delay - now, TOKEN_DISCOVER);
            }
            ctx.set_cause(prev);
            return;
        }
        if need_cw && !self.disc_cw_out {
            self.disc_cw_out = true;
            let env = ForwardEnvelope {
                route: vec![self.id],
                pos: 0,
                trace: vec![self.id],
                payload: Payload::Discover {
                    origin: self.id,
                    dir: Direction::Cw,
                },
            };
            self.handle_discover_here(ctx, env);
        }
        if need_ccw && !self.disc_ccw_out {
            self.disc_ccw_out = true;
            let env = ForwardEnvelope {
                route: vec![self.id],
                pos: 0,
                trace: vec![self.id],
                payload: Payload::Discover {
                    origin: self.id,
                    dir: Direction::Ccw,
                },
            };
            self.handle_discover_here(ctx, env);
        }
        if (need_cw || need_ccw) && !self.discover_timer_armed {
            self.discover_timer_armed = true;
            ctx.set_timer(self.config.discover_retry, TOKEN_DISCOVER);
        }
        ctx.set_cause(prev);
    }

    /// A discovery probe is at this virtual node: forward it greedily along
    /// the line, or accept it if this node is a believed extreme.
    fn handle_discover_here(&mut self, ctx: &mut Ctx<'_, SsrMsg>, env: ForwardEnvelope) {
        let Payload::Discover { origin, dir } = env.payload else {
            unreachable!("handle_discover_here requires a Discover payload");
        };
        let next = match dir {
            Direction::Cw => self.cache.largest_above_me().map(|(d, r)| (d, r.clone())),
            Direction::Ccw => self.cache.smallest_below_me().map(|(d, r)| (d, r.clone())),
        };
        match next {
            Some((_, route)) => {
                // keep traveling toward the extreme
                let fresh = ForwardEnvelope {
                    route: route.hops().to_vec(),
                    pos: 0,
                    trace: env.trace,
                    payload: env.payload,
                };
                self.forward_env(ctx, fresh);
            }
            None => self.accept_discovery(ctx, origin, dir, env.trace),
        }
    }

    /// This node is a believed extreme: accept (or arbitrate) the probe.
    fn accept_discovery(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        origin: NodeId,
        dir: Direction,
        trace: Vec<NodeId>,
    ) {
        if origin == self.id {
            return; // alone in the network (or the probe looped home)
        }
        let path = SourceRoute::from_hops(dedup_consecutive(trace)).pruned();
        if path.src() != origin || path.dst() != self.id {
            ctx.metrics().incr("fwd.bad_trace");
            return;
        }
        let to_origin = path.reversed();
        match dir {
            Direction::Cw => {
                // I believe I am the maximum; `origin` believes it is the
                // minimum. Keep the smallest claimant as ring successor and
                // linearize the rest.
                match self.wrap_succ {
                    None => {
                        self.wrap_succ = Some(origin);
                        self.cache.insert(to_origin.clone(), true);
                        self.close_ring_reply(ctx, &to_origin, dir, &path);
                    }
                    Some(cur) if origin == cur => {
                        // duplicate probe: re-acknowledge
                        self.cache.insert(to_origin.clone(), true);
                        self.close_ring_reply(ctx, &to_origin, dir, &path);
                    }
                    Some(cur) if origin < cur => {
                        let seq = self.seq.bump();
                        self.cache.insert(to_origin.clone(), true);
                        self.wrap_succ = Some(origin);
                        // the displaced claimant learns about the smaller one
                        self.introduce(ctx, cur, origin, seq);
                        self.unpin_unless_phys(cur);
                        self.close_ring_reply(ctx, &to_origin, dir, &path);
                    }
                    Some(cur) => {
                        // origin is not the minimum: point it at the better
                        // claimant instead of accepting
                        self.cache.insert(to_origin, false);
                        let seq = self.seq.bump();
                        self.introduce(ctx, origin, cur, seq);
                    }
                }
            }
            Direction::Ccw => {
                // I believe I am the minimum; `origin` believes it is the
                // maximum. Keep the largest claimant as ring predecessor.
                match self.wrap_pred {
                    None => {
                        self.wrap_pred = Some(origin);
                        self.cache.insert(to_origin.clone(), true);
                        self.close_ring_reply(ctx, &to_origin, dir, &path);
                    }
                    Some(cur) if origin == cur => {
                        self.cache.insert(to_origin.clone(), true);
                        self.close_ring_reply(ctx, &to_origin, dir, &path);
                    }
                    Some(cur) if origin > cur => {
                        let seq = self.seq.bump();
                        self.cache.insert(to_origin.clone(), true);
                        self.wrap_pred = Some(origin);
                        self.introduce(ctx, cur, origin, seq);
                        self.unpin_unless_phys(cur);
                        self.close_ring_reply(ctx, &to_origin, dir, &path);
                    }
                    Some(cur) => {
                        self.cache.insert(to_origin, false);
                        let seq = self.seq.bump();
                        self.introduce(ctx, origin, cur, seq);
                    }
                }
            }
        }
    }

    fn close_ring_reply(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        to_origin: &SourceRoute,
        dir: Direction,
        origin_to_me: &SourceRoute,
    ) {
        let payload = Payload::CloseRing {
            acceptor: self.id,
            dir,
            route: origin_to_me.hops().to_vec(),
        };
        let to_origin = to_origin.clone();
        self.send_payload(ctx, &to_origin, payload);
    }

    /// A closure acknowledgment arrived back at the probe's origin.
    fn handle_close_ring(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        acceptor: NodeId,
        dir: Direction,
        route: Vec<NodeId>,
    ) {
        if acceptor == self.id {
            return;
        }
        let Some(path) = checked_route(self.id, route) else {
            ctx.metrics().incr("fwd.bad_trace");
            return;
        };
        if path.dst() != acceptor {
            ctx.metrics().incr("fwd.bad_trace");
            return;
        }
        match dir {
            Direction::Cw => {
                self.disc_cw_out = false;
                match self.wrap_pred {
                    None => {
                        self.wrap_pred = Some(acceptor);
                        self.cache.insert(path, true);
                    }
                    Some(cur) if acceptor == cur => {
                        self.cache.insert(path, true);
                    }
                    Some(cur) if acceptor > cur => {
                        // the new acceptor is closer to the true maximum
                        self.cache.insert(path, true);
                        self.wrap_pred = Some(acceptor);
                        let seq = self.seq.bump();
                        self.introduce(ctx, cur, acceptor, seq);
                        self.unpin_unless_phys(cur);
                    }
                    Some(cur) => {
                        // current is better: tell the lesser acceptor
                        self.cache.insert(path, false);
                        let seq = self.seq.bump();
                        self.introduce(ctx, acceptor, cur, seq);
                    }
                }
            }
            Direction::Ccw => {
                self.disc_ccw_out = false;
                match self.wrap_succ {
                    None => {
                        self.wrap_succ = Some(acceptor);
                        self.cache.insert(path, true);
                    }
                    Some(cur) if acceptor == cur => {
                        self.cache.insert(path, true);
                    }
                    Some(cur) if acceptor < cur => {
                        self.cache.insert(path, true);
                        self.wrap_succ = Some(acceptor);
                        let seq = self.seq.bump();
                        self.introduce(ctx, cur, acceptor, seq);
                        self.unpin_unless_phys(cur);
                    }
                    Some(cur) => {
                        self.cache.insert(path, false);
                        let seq = self.seq.bump();
                        self.introduce(ctx, acceptor, cur, seq);
                    }
                }
            }
        }
        self.schedule_act(ctx);
    }

    /// End-to-end payload arrived at this node.
    fn handle_payload(&mut self, ctx: &mut Ctx<'_, SsrMsg>, env: ForwardEnvelope) {
        match env.payload {
            Payload::Discover { .. } => self.handle_discover_here(ctx, env),
            Payload::Notify {
                initiator,
                target_route,
                reply_route,
                seq,
            } => {
                let target = match checked_route(self.id, target_route) {
                    Some(r) => r,
                    None => {
                        ctx.metrics().incr("fwd.bad_trace");
                        return;
                    }
                };
                let reply = match checked_route(self.id, reply_route) {
                    Some(r) => r,
                    None => {
                        ctx.metrics().incr("fwd.bad_trace");
                        return;
                    }
                };
                let _ = initiator;
                let pointed_at = target.dst();
                if !target.is_empty() {
                    self.adopt_neighbor(target);
                }
                // the initiator itself is shortcut knowledge
                if !reply.is_empty() {
                    self.cache.insert(reply.clone(), false);
                    // `about` names the node we were pointed to, so the
                    // initiator can tell which of its two notifications
                    // this acknowledges
                    let ack = Payload::NotifyAck {
                        about: pointed_at,
                        seq,
                    };
                    self.send_payload(ctx, &reply, ack);
                }
                self.schedule_act(ctx);
            }
            Payload::NotifyAck { about, seq } => {
                self.handle_ack(ctx, about, seq);
            }
            Payload::Teardown { from } => {
                self.drop_neighbor(from);
                if self.wrap_pred == Some(from) {
                    self.wrap_pred = None;
                }
                if self.wrap_succ == Some(from) {
                    self.wrap_succ = None;
                }
                self.schedule_act(ctx);
            }
            Payload::CloseRing {
                acceptor,
                dir,
                route,
            } => self.handle_close_ring(ctx, acceptor, dir, route),
            Payload::DataProbe { target, hops } => self.handle_probe(ctx, target, hops),
            Payload::SuccNotify { .. } | Payload::SuccUpdate { .. } => {
                // ISPRP messages are not part of the linearized protocol
                ctx.metrics().incr("fwd.unexpected");
            }
        }
    }

    fn handle_ack(&mut self, ctx: &mut Ctx<'_, SsrMsg>, about: NodeId, seq: SeqNo) {
        for side in [Direction::Ccw, Direction::Cw] {
            let slot = match side {
                Direction::Ccw => &mut self.pending_left,
                Direction::Cw => &mut self.pending_right,
            };
            if let Some(p) = slot {
                if p.seq == seq {
                    // the ack names the node its sender was pointed to:
                    // `about == drop` means the *keep* endpoint acked
                    if about == p.drop {
                        p.keep_acked = true;
                    } else if about == p.keep {
                        p.drop_acked = true;
                    }
                    if p.done() {
                        let drop = p.drop;
                        let keep = p.keep;
                        *slot = None;
                        debug_assert_ne!(drop, keep);
                        // the delegated edge leaves the neighbor set either
                        // way (that is what makes linearization progress);
                        // with `teardown` off we skip the tear-down message
                        // and keep the route pinned — the with-memory
                        // ablation trades state for messages
                        match side {
                            Direction::Ccw => {
                                self.left.remove(&drop);
                            }
                            Direction::Cw => {
                                self.right.remove(&drop);
                            }
                        }
                        if self.config.teardown {
                            self.teardown_to(ctx, drop);
                            self.unpin_unless_phys(drop);
                        }
                        self.schedule_act(ctx);
                    }
                    return;
                }
            }
        }
        // stale ACK from a superseded handshake: ignore
    }

    /// Greedy forwarding of an application probe.
    fn handle_probe(&mut self, ctx: &mut Ctx<'_, SsrMsg>, target: NodeId, hops: u32) {
        if target == self.id {
            self.delivered_probes.push((target, hops));
            ctx.metrics().incr("probe.delivered");
            return;
        }
        let prev = ctx.set_cause(CauseClass::Routing);
        match self.cache.best_toward(target) {
            Some((_, route)) => {
                let route = route.clone();
                let payload = Payload::DataProbe {
                    target,
                    hops: hops + route.len() as u32,
                };
                self.send_payload(ctx, &route, payload);
            }
            None => {
                ctx.metrics().incr("probe.stuck");
            }
        }
        ctx.set_cause(prev);
    }

    /// Handles a link-local hello: learn the neighbor, adopt it as a
    /// virtual neighbor (`E_v ⊇ E_p`), and reply if it is new *or* the
    /// sender asked (a probe means the sender may still be blind to us —
    /// staying silent would leave the adjacency asymmetric for good).
    fn handle_hello(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        from_idx: usize,
        id: NodeId,
        probe: bool,
    ) {
        let known = self.nbr_id.get(&from_idx) == Some(&id);
        self.nbr_index.insert(id, from_idx);
        self.nbr_id.insert(from_idx, id);
        self.adopt_neighbor(SourceRoute::direct(self.id, id));
        if !known || probe {
            ctx.send(
                from_idx,
                SsrMsg::Hello {
                    id: self.id,
                    probe: false,
                },
            );
        }
        if !known {
            self.schedule_act(ctx);
        }
    }

    /// Re-probes every link whose peer has not identified itself yet, with
    /// exponential backoff up to `hello_retries` rounds. Lossy links can
    /// swallow both the initial broadcast and the solicited reply; without
    /// this sweep the resulting one-way adjacency view never heals and
    /// source routes built over it by the peer are dead on arrival.
    fn hello_sweep(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        let unidentified: Vec<usize> = ctx
            .neighbors()
            .iter()
            .copied()
            .filter(|idx| !self.nbr_id.contains_key(idx))
            .collect();
        if unidentified.is_empty() || self.hello_round >= self.config.hello_retries {
            return;
        }
        let prev = ctx.set_cause(CauseClass::HelloSweep);
        for idx in unidentified {
            ctx.send(
                idx,
                SsrMsg::Hello {
                    id: self.id,
                    probe: true,
                },
            );
        }
        self.hello_round += 1;
        ctx.set_timer(
            self.config.hello_retry_interval << self.hello_round,
            TOKEN_HELLO,
        );
        ctx.set_cause(prev);
    }
}

/// Collapses consecutive duplicate hops (a trace records the holder at both
/// ends of a virtual-hop boundary).
fn dedup_consecutive(mut hops: Vec<NodeId>) -> Vec<NodeId> {
    hops.dedup();
    hops
}

use crate::node_util::checked_route;

impl Protocol for SsrNode {
    type Msg = SsrMsg;

    fn on_init(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        ctx.broadcast(SsrMsg::Hello {
            id: self.id,
            probe: true,
        });
        ctx.set_timer(self.config.act_delay, TOKEN_ACT);
        ctx.set_timer(self.config.hello_retry_interval, TOKEN_HELLO);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SsrMsg>, from: usize, msg: SsrMsg) {
        match msg {
            SsrMsg::Hello { id, probe } => self.handle_hello(ctx, from, id, probe),
            SsrMsg::Forward(mut env) => {
                let Some(&holder) = env.route.get(env.pos) else {
                    ctx.metrics().incr("fwd.misrouted");
                    return;
                };
                if holder != self.id {
                    ctx.metrics().incr("fwd.misrouted");
                    return;
                }
                if env.payload.wants_trace() && env.trace.last() != Some(&self.id) {
                    env.trace.push(self.id);
                }
                if env.pos + 1 == env.route.len() {
                    self.handle_payload(ctx, env);
                } else {
                    self.forward_env(ctx, env);
                }
            }
            SsrMsg::Flood { .. } => {
                // the linearized protocol never floods; ignore strays
                ctx.metrics().incr("fwd.unexpected");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SsrMsg>, token: u64) {
        let seq = SeqNo((token >> 8) as u32);
        match token & 0xFF {
            TOKEN_ACT => {
                self.act_scheduled = false;
                self.act(ctx);
            }
            TOKEN_RETRY_LEFT => self.retry_pending(ctx, Direction::Ccw, seq),
            TOKEN_RETRY_RIGHT => self.retry_pending(ctx, Direction::Cw, seq),
            TOKEN_DISCOVER => {
                self.discover_timer_armed = false;
                self.disc_cw_out = false;
                self.disc_ccw_out = false;
                self.maybe_discover(ctx);
            }
            TOKEN_HELLO => self.hello_sweep(ctx),
            TOKEN_AUDIT => {
                self.audit_armed = false;
                let sig = self.audit_signature();
                if sig != self.audit_last_sig {
                    self.audit_last_sig = sig;
                    self.audit_quiet_rounds = 0;
                } else {
                    self.audit_quiet_rounds += 1;
                }
                if self.audit_quiet_rounds < self.config.audit_quiet {
                    self.run_audit(ctx);
                    self.arm_audit(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_neighbor_up(&mut self, ctx: &mut Ctx<'_, SsrMsg>, neighbor: usize) {
        ctx.send(
            neighbor,
            SsrMsg::Hello {
                id: self.id,
                probe: true,
            },
        );
        // a fresh link restarts the identification sweep: its hello (or the
        // reply) can be lost just like the boot-time broadcast
        self.hello_round = 0;
        ctx.set_timer(self.config.hello_retry_interval, TOKEN_HELLO);
    }

    fn on_neighbor_down(&mut self, ctx: &mut Ctx<'_, SsrMsg>, neighbor: usize) {
        let Some(id) = self.nbr_id.remove(&neighbor) else {
            return;
        };
        self.nbr_index.remove(&id);
        // every route whose next hop (or any hop) crossed the dead link's
        // peer is gone; set members whose routes died are dropped too
        self.cache.purge_via(id);
        let routable: Vec<NodeId> = self
            .left
            .iter()
            .chain(self.right.iter())
            .copied()
            .filter(|&v| !self.cache.contains(v))
            .collect();
        for v in routable {
            self.left.remove(&v);
            self.right.remove(&v);
        }
        if self.wrap_pred.is_some_and(|p| !self.cache.contains(p)) {
            self.wrap_pred = None;
        }
        if self.wrap_succ.is_some_and(|s| !self.cache.contains(s)) {
            self.wrap_succ = None;
        }
        self.schedule_act(ctx);
    }

    fn reset(&mut self) {
        *self = SsrNode::with_config(self.id, self.config);
    }

    fn kind(msg: &SsrMsg) -> &'static str {
        msg.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let n = SsrNode::new(NodeId(50));
        assert_eq!(n.id(), NodeId(50));
        assert!(n.left_set().is_empty() && n.right_set().is_empty());
        assert!(n.ring_succ().is_none() && n.ring_pred().is_none());
        assert!(n.locally_consistent());
        assert_eq!(n.cache().len(), 0);
    }

    #[test]
    fn adopt_and_drop_neighbors() {
        let mut n = SsrNode::new(NodeId(50));
        assert!(n.adopt_neighbor(SourceRoute::direct(NodeId(50), NodeId(70))));
        assert!(n.adopt_neighbor(SourceRoute::direct(NodeId(50), NodeId(30))));
        assert!(!n.adopt_neighbor(SourceRoute::direct(NodeId(50), NodeId(70))));
        assert_eq!(n.closest_right(), Some(NodeId(70)));
        assert_eq!(n.closest_left(), Some(NodeId(30)));
        n.drop_neighbor(NodeId(70));
        assert!(n.closest_right().is_none());
        // the route may survive in the cache as an unpinned shortcut
    }

    #[test]
    fn ring_succ_prefers_right_set_over_wrap() {
        let mut n = SsrNode::new(NodeId(50));
        n.wrap_succ = Some(NodeId(1));
        assert_eq!(n.ring_succ(), Some(NodeId(1)));
        n.adopt_neighbor(SourceRoute::direct(NodeId(50), NodeId(70)));
        assert_eq!(n.ring_succ(), Some(NodeId(70)));
    }

    #[test]
    fn checked_route_rejects_garbage() {
        assert!(checked_route(NodeId(1), vec![]).is_none());
        assert!(checked_route(NodeId(1), vec![NodeId(2), NodeId(3)]).is_none());
        assert!(checked_route(NodeId(1), vec![NodeId(1), NodeId(1)]).is_none());
        let ok = checked_route(NodeId(1), vec![NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(ok.dst(), NodeId(2));
    }

    #[test]
    fn reset_clears_state_but_keeps_identity() {
        let mut n = SsrNode::new(NodeId(50));
        n.adopt_neighbor(SourceRoute::direct(NodeId(50), NodeId(70)));
        n.wrap_succ = Some(NodeId(3));
        n.reset();
        assert_eq!(n.id(), NodeId(50));
        assert!(n.right_set().is_empty());
        assert!(n.wrap_succ().is_none());
        assert_eq!(n.cache().len(), 0);
    }

    #[test]
    fn dedup_consecutive_collapses_boundaries() {
        let hops: Vec<NodeId> = [1, 2, 2, 3, 3, 3, 4].iter().map(|&i| NodeId(i)).collect();
        let out = dedup_consecutive(hops);
        assert_eq!(out, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    }
}
