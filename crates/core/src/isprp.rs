//! ISPRP — the Iterative Successor Pointer Rewiring Protocol, SSR's
//! original bootstrap and the paper's baseline.
//!
//! Every node maintains a *successor pointer* toward the clockwise-closest
//! node it knows and notifies that presumed successor. A node receiving
//! several successor claims arbitrates: it keeps the claimant that is its
//! best (clockwise-closest) predecessor and sends the other an *update*
//! pointing it at the better claimant, with a source route built by
//! concatenation (`B→A ++ A→C`). Iterating this achieves **local**
//! consistency: one successor, one predecessor each.
//!
//! Local consistency is not global consistency: loopy states and disjoint
//! rings survive it (Figures 1 and 2). ISPRP therefore has one node — the
//! *representative*, in practice the numerically largest address — **flood
//! the network** with its identifier. Here every node that still believes
//! itself the representative after a settle delay floods; floods from
//! smaller origins are absorbed by nodes that know better, so in the steady
//! state one flood (the true maximum's) traverses every link. Receivers
//! then claim toward the representative, and the ordinary rewiring cascade
//! ("your successor is C") walks each claim down to the node's true
//! successor, merging rings and unwinding loops.
//!
//! The flood is exactly the cost linearization removes; experiment E6
//! meters both protocols' messages by kind.

use std::collections::BTreeMap;

use ssr_sim::{Ctx, Protocol};
use ssr_types::{cw_dist, NodeId};

use crate::cache::RouteCache;
use crate::message::{ForwardEnvelope, Payload, SsrMsg};
use crate::route::SourceRoute;

const TOKEN_ACT: u64 = 0;
const TOKEN_FLOOD: u64 = 1;
const TOKEN_STABILIZE: u64 = 2;

/// Tuning knobs for the ISPRP baseline.
#[derive(Clone, Copy, Debug)]
pub struct IsprpConfig {
    /// Delay before the first rewiring action.
    pub act_delay: u64,
    /// Settle delay before a node that still believes itself the
    /// representative floods.
    pub flood_delay: u64,
    /// The flood switch — disabling it demonstrates why ISPRP needs it
    /// (loopy/partitioned states then persist forever).
    pub enable_flood: bool,
    /// Period of the stabilization re-claim (each round a node re-notifies
    /// its successor, so improved predecessor knowledge keeps percolating —
    /// the "iterative" in ISPRP).
    pub stabilize_interval: u64,
    /// Stop re-claiming after this many stabilization rounds without any
    /// local state change. The default is `u32::MAX` — i.e. **never**: like
    /// Chord's stabilize loop, ISPRP keeps re-claiming periodically, because
    /// a node has no local way to know the global ring is consistent (that
    /// inability is precisely the paper's argument). Experiment drivers
    /// stop the simulation when the global check passes; set a finite limit
    /// only when a self-quiescing run is needed.
    pub quiet_limit: u32,
}

impl Default for IsprpConfig {
    fn default() -> Self {
        IsprpConfig {
            act_delay: 2,
            flood_delay: 32,
            enable_flood: true,
            stabilize_interval: 8,
            quiet_limit: u32::MAX,
        }
    }
}

/// Per-node ISPRP state.
#[derive(Clone, Debug)]
pub struct IsprpNode {
    id: NodeId,
    config: IsprpConfig,
    nbr_index: BTreeMap<NodeId, usize>,
    nbr_id: BTreeMap<usize, NodeId>,
    cache: RouteCache,
    /// Current successor pointer (clockwise-closest known node).
    succ: Option<NodeId>,
    /// The successor we last notified (suppresses duplicate notifications).
    notified: Option<NodeId>,
    /// Best predecessor claimant seen so far.
    pred: Option<NodeId>,
    /// Largest address this node knows of (itself at start).
    rep: NodeId,
    /// The farthest target this node has probed with a claim (the descent
    /// cursor of the ring-merge cascade).
    probe: Option<NodeId>,
    /// Whether this node has flooded.
    flooded: bool,
    /// Largest flood origin this node has forwarded (its own address at
    /// start). Propagation suppression must be tracked separately from
    /// `rep`: a node whose *physical neighbor* is the representative
    /// already has `rep` raised by the hello exchange, but it still has to
    /// forward the representative's flood or the flood dies after one hop.
    flood_forwarded: NodeId,
    /// Whether a stabilization timer is queued.
    stab_armed: bool,
    /// Consecutive stabilization rounds without a state change.
    quiet: u32,
    /// Signature of the state at the last stabilization round.
    last_sig: u64,
}

impl IsprpNode {
    /// A fresh node with default configuration.
    pub fn new(id: NodeId) -> Self {
        Self::with_config(id, IsprpConfig::default())
    }

    /// A fresh node with explicit tuning.
    pub fn with_config(id: NodeId, config: IsprpConfig) -> Self {
        IsprpNode {
            id,
            config,
            nbr_index: BTreeMap::new(),
            nbr_id: BTreeMap::new(),
            cache: RouteCache::new(id),
            succ: None,
            notified: None,
            pred: None,
            rep: id,
            probe: None,
            flooded: false,
            flood_forwarded: id,
            stab_armed: false,
            quiet: 0,
            last_sig: 0,
        }
    }

    /// A cheap state signature: any change restarts the stabilization
    /// rounds.
    fn signature(&self) -> u64 {
        let s = self.succ.map_or(0, |x| x.raw());
        let p = self.pred.map_or(0, |x| x.raw());
        s ^ p.rotate_left(21)
            ^ self.rep.raw().rotate_left(42)
            ^ (self.cache.len() as u64).rotate_left(7)
    }

    fn schedule_stabilize(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        if !self.stab_armed {
            self.stab_armed = true;
            ctx.set_timer(self.config.stabilize_interval, TOKEN_STABILIZE);
        }
    }

    /// This node's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current successor pointer.
    pub fn succ(&self) -> Option<NodeId> {
        self.succ
    }

    /// The current best predecessor claimant.
    pub fn pred(&self) -> Option<NodeId> {
        self.pred
    }

    /// The representative this node currently believes in.
    pub fn rep(&self) -> NodeId {
        self.rep
    }

    /// The route cache (read-only).
    pub fn cache(&self) -> &RouteCache {
        &self.cache
    }

    /// Locally consistent: has a successor and a predecessor claimant.
    pub fn locally_consistent(&self) -> bool {
        self.succ.is_some() && self.pred.is_some()
    }

    /// Injects a successor pointer plus route — used by the figure
    /// reproductions to start from adversarial (loopy / partitioned)
    /// states.
    pub fn inject_succ(&mut self, route: SourceRoute) {
        let s = route.dst();
        assert_ne!(s, self.id);
        self.cache.insert(route, true);
        self.succ = Some(s);
        self.notified = Some(s); // pretend the notification already happened
    }

    /// Injects physical-neighbor knowledge (experiment setup).
    pub fn inject_phys_neighbor(&mut self, id: NodeId, index: usize) {
        self.nbr_index.insert(id, index);
        self.nbr_id.insert(index, id);
    }

    // -- internals ----------------------------------------------------------

    fn send_payload(&mut self, ctx: &mut Ctx<'_, SsrMsg>, route: &SourceRoute, payload: Payload) {
        debug_assert_eq!(route.src(), self.id);
        if route.is_empty() {
            return;
        }
        let env = ForwardEnvelope {
            route: route.hops().to_vec(),
            pos: 0,
            trace: Vec::new(),
            payload,
        };
        self.forward_env(ctx, env);
    }

    fn forward_env(&mut self, ctx: &mut Ctx<'_, SsrMsg>, mut env: ForwardEnvelope) {
        let next_pos = env.pos + 1;
        let Some(&next_id) = env.route.get(next_pos) else {
            ctx.metrics().incr("fwd.truncated");
            return;
        };
        let Some(&next_idx) = self.nbr_index.get(&next_id) else {
            ctx.metrics().incr("fwd.broken");
            return;
        };
        env.pos = next_pos;
        ctx.send(next_idx, SsrMsg::Forward(env));
    }

    /// Picks the clockwise-closest cached node as successor and notifies it
    /// if the pointer changed.
    fn act(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        let best = self
            .cache
            .destinations()
            .min_by_key(|&d| cw_dist(self.id, d));
        let Some(best) = best else {
            return;
        };
        if self.succ != Some(best) {
            if let Some(old) = self.succ {
                self.cache.unpin(old);
            }
            self.succ = Some(best);
        }
        if self.notified != Some(best) {
            if let Some(route) = self.cache.get(best).cloned() {
                self.cache.insert(route.clone(), true); // pin the successor
                let payload = Payload::SuccNotify {
                    from: self.id,
                    reply_route: route.reversed().hops().to_vec(),
                };
                self.send_payload(ctx, &route, payload);
                self.notified = Some(best);
            }
        }
    }

    /// The clockwise-closest cached node strictly between `from` and this
    /// node — the best successor this node can recommend to `from`.
    fn best_between(&self, from: NodeId) -> Option<NodeId> {
        self.cache
            .destinations()
            .filter(|&d| d != from && d != self.id)
            .filter(|&d| ssr_types::ring_between_cw(from, d, self.id))
            .min_by_key(|&d| cw_dist(from, d))
    }

    /// Sends `to` an update pointing it at the best successor candidate we
    /// know between `to` and us (if any improvement exists). This is the
    /// paper's "A sends an update to B pointing it to C" generalized over
    /// the whole route cache — C need not be a claimant, any cached node
    /// between B and A will do, and each redirect strictly shrinks B's
    /// clockwise gap. `route_to` is our route to `to`, passed explicitly
    /// because `to` may have just been unpinned (and interval retention may
    /// evict its cache entry at any moment).
    fn redirect_via(&mut self, ctx: &mut Ctx<'_, SsrMsg>, to: NodeId, route_to: &SourceRoute) {
        let Some(better) = self.best_between(to) else {
            return;
        };
        let Some(r_better) = self.cache.get(better) else {
            return;
        };
        // route to→better = reverse(me→to) ++ me→better
        let to_better = route_to.reversed().concat(r_better);
        if to_better.is_empty() {
            return;
        }
        let payload = Payload::SuccUpdate {
            better,
            route_to_better: to_better.hops().to_vec(),
        };
        self.send_payload(ctx, &route_to.clone(), payload);
    }

    /// A claim "you are my successor" arrived from `claimant`.
    fn handle_claim(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        claimant: NodeId,
        reply_route: Vec<NodeId>,
    ) {
        let Some(route_back) = crate::node_util::checked_route(self.id, reply_route) else {
            ctx.metrics().incr("fwd.bad_trace");
            return;
        };
        if route_back.is_empty() {
            return;
        }
        // claimants enter as ordinary (evictable) knowledge; only the
        // winning predecessor gets pinned below
        self.cache.insert(route_back.clone(), false);
        match self.pred {
            None => {
                self.pred = Some(claimant);
            }
            Some(cur) if cur == claimant => {}
            Some(cur) => {
                // keep the clockwise-closer predecessor; redirect the loser
                // *before* unpinning it (eviction could drop its route)
                let (winner, loser) = if cw_dist(claimant, self.id) < cw_dist(cur, self.id) {
                    (claimant, cur)
                } else {
                    (cur, claimant)
                };
                self.pred = Some(winner);
                if let Some(r_loser) = self.cache.get(loser).cloned() {
                    self.redirect_via(ctx, loser, &r_loser);
                }
                self.cache.unpin(loser);
            }
        }
        if self.pred == Some(claimant) {
            self.cache.insert(route_back.clone(), true);
        }
        // even an accepted claimant may have a better successor in our
        // cache (a node between it and us that never claimed us); use the
        // reply route in hand — the claimant's cache entry may already be
        // unpinned and evicted
        self.redirect_via(ctx, claimant, &route_back);
        self.act(ctx);
    }

    /// A redirect "your successor is `better`" arrived.
    fn handle_update(&mut self, ctx: &mut Ctx<'_, SsrMsg>, better: NodeId, route: Vec<NodeId>) {
        if better == self.id {
            return;
        }
        let Some(route) = crate::node_util::checked_route(self.id, route) else {
            ctx.metrics().incr("fwd.bad_trace");
            return;
        };
        if route.is_empty() || route.dst() != better {
            return;
        }
        // continue the descent: if the redirect target is clockwise-closer
        // than anything we have probed, claim it (this is what merges rings
        // after a flood)
        let closer_than_probe = self
            .probe
            .map(|p| cw_dist(self.id, better) < cw_dist(self.id, p))
            .unwrap_or(true);
        let closer_than_succ = self
            .succ
            .map(|s| cw_dist(self.id, better) < cw_dist(self.id, s))
            .unwrap_or(true);
        // NOTE: a successor candidate must be inserted *pinned*. The
        // cache's interval retention is line-metric (right for LSN
        // shortcuts), but the ring successor across the wrap is the
        // line-FARTHEST node — retention would evict exactly the entry the
        // extremes need and the ring could never close.
        self.cache.insert(route.clone(), closer_than_succ);
        if closer_than_succ {
            // normal adoption path — act() will re-point and notify
            self.act(ctx);
        } else if closer_than_probe {
            self.probe = Some(better);
            let payload = Payload::SuccNotify {
                from: self.id,
                reply_route: route.reversed().hops().to_vec(),
            };
            self.send_payload(ctx, &route, payload);
        }
    }

    /// A representative flood arrived over the physical link from
    /// `from_idx`.
    fn handle_flood(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        from_idx: usize,
        origin: NodeId,
        mut trace: Vec<NodeId>,
    ) {
        if origin <= self.flood_forwarded || origin == self.id {
            return; // absorbed: we already forwarded this or a better flood
        }
        if trace.last() != Some(&self.id) {
            trace.push(self.id);
        }
        self.flood_forwarded = origin;
        self.rep = self.rep.max(origin);
        // the trace gives us a route to the representative
        let Some(path) = crate::node_util::checked_route_rev(self.id, &trace, origin) else {
            ctx.metrics().incr("fwd.bad_trace");
            return;
        };
        // pinned iff the representative becomes our successor candidate —
        // see the retention note in `handle_update`
        let rep_closer = self
            .succ
            .map(|s| cw_dist(self.id, origin) < cw_dist(self.id, s))
            .unwrap_or(true);
        self.cache.insert(path.clone(), rep_closer);
        // propagate to every other physical neighbor
        let targets: Vec<usize> = self
            .nbr_id
            .keys()
            .copied()
            .filter(|&i| i != from_idx)
            .collect();
        for t in targets {
            ctx.send(
                t,
                SsrMsg::Flood {
                    origin,
                    trace: trace.clone(),
                },
            );
        }
        // claim toward the representative: the rewiring cascade from there
        // walks us down to our true successor
        let closer_than_succ = self
            .succ
            .map(|s| cw_dist(self.id, origin) < cw_dist(self.id, s))
            .unwrap_or(true);
        if closer_than_succ {
            self.act(ctx);
        } else {
            self.probe = Some(origin);
            let payload = Payload::SuccNotify {
                from: self.id,
                reply_route: path.reversed().hops().to_vec(),
            };
            self.send_payload(ctx, &path, payload);
        }
    }

    fn handle_hello(
        &mut self,
        ctx: &mut Ctx<'_, SsrMsg>,
        from_idx: usize,
        id: NodeId,
        probe: bool,
    ) {
        let known = self.nbr_id.get(&from_idx) == Some(&id);
        self.nbr_index.insert(id, from_idx);
        self.nbr_id.insert(from_idx, id);
        self.cache.insert(SourceRoute::direct(self.id, id), false);
        if id > self.rep {
            self.rep = id; // suppresses our own flood
        }
        if !known || probe {
            ctx.send(
                from_idx,
                SsrMsg::Hello {
                    id: self.id,
                    probe: false,
                },
            );
        }
        if !known {
            self.act(ctx);
        }
    }
}

impl Protocol for IsprpNode {
    type Msg = SsrMsg;

    fn on_init(&mut self, ctx: &mut Ctx<'_, SsrMsg>) {
        ctx.broadcast(SsrMsg::Hello {
            id: self.id,
            probe: true,
        });
        ctx.set_timer(self.config.act_delay, TOKEN_ACT);
        if self.config.enable_flood {
            ctx.set_timer(self.config.flood_delay, TOKEN_FLOOD);
        }
        self.schedule_stabilize(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SsrMsg>, from: usize, msg: SsrMsg) {
        match msg {
            SsrMsg::Hello { id, probe } => {
                self.handle_hello(ctx, from, id, probe);
                self.schedule_stabilize(ctx);
            }
            SsrMsg::Flood { origin, trace } => {
                self.handle_flood(ctx, from, origin, trace);
                self.schedule_stabilize(ctx);
            }
            SsrMsg::Forward(env) => {
                let Some(&holder) = env.route.get(env.pos) else {
                    ctx.metrics().incr("fwd.misrouted");
                    return;
                };
                if holder != self.id {
                    ctx.metrics().incr("fwd.misrouted");
                    return;
                }
                if env.pos + 1 < env.route.len() {
                    self.forward_env(ctx, env);
                    return;
                }
                match env.payload {
                    Payload::SuccNotify { from, reply_route } => {
                        self.handle_claim(ctx, from, reply_route);
                        self.schedule_stabilize(ctx);
                    }
                    Payload::SuccUpdate {
                        better,
                        route_to_better,
                    } => {
                        self.handle_update(ctx, better, route_to_better);
                        self.schedule_stabilize(ctx);
                    }
                    Payload::Notify { .. }
                    | Payload::NotifyAck { .. }
                    | Payload::Teardown { .. }
                    | Payload::Discover { .. }
                    | Payload::CloseRing { .. }
                    | Payload::DataProbe { .. } => {
                        // linearized-bootstrap messages are not part of
                        // ISPRP; listing them keeps this match honest — a
                        // new payload variant must decide its fate here
                        ctx.metrics().incr("fwd.unexpected");
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SsrMsg>, token: u64) {
        match token {
            TOKEN_ACT => self.act(ctx),
            TOKEN_FLOOD if self.config.enable_flood && !self.flooded && self.rep == self.id => {
                self.flooded = true;
                ctx.broadcast(SsrMsg::Flood {
                    origin: self.id,
                    trace: vec![self.id],
                });
            }
            TOKEN_STABILIZE => {
                self.stab_armed = false;
                let sig = self.signature();
                if sig != self.last_sig {
                    self.last_sig = sig;
                    self.quiet = 0;
                } else {
                    self.quiet += 1;
                }
                if self.quiet < self.config.quiet_limit {
                    // re-claim the successor so improved predecessor
                    // knowledge keeps flowing back as redirects
                    if let Some(s) = self.succ {
                        if let Some(route) = self.cache.get(s).cloned() {
                            let payload = Payload::SuccNotify {
                                from: self.id,
                                reply_route: route.reversed().hops().to_vec(),
                            };
                            self.send_payload(ctx, &route, payload);
                        }
                    }
                    self.schedule_stabilize(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_neighbor_up(&mut self, ctx: &mut Ctx<'_, SsrMsg>, neighbor: usize) {
        ctx.send(
            neighbor,
            SsrMsg::Hello {
                id: self.id,
                probe: true,
            },
        );
    }

    fn on_neighbor_down(&mut self, ctx: &mut Ctx<'_, SsrMsg>, neighbor: usize) {
        let Some(id) = self.nbr_id.remove(&neighbor) else {
            return;
        };
        self.nbr_index.remove(&id);
        self.cache.purge_via(id);
        if self.succ.is_some_and(|s| !self.cache.contains(s)) {
            self.succ = None;
            self.notified = None;
        }
        if self.pred.is_some_and(|p| !self.cache.contains(p)) {
            self.pred = None;
        }
        self.act(ctx);
    }

    fn reset(&mut self) {
        *self = IsprpNode::with_config(self.id, self.config);
    }

    fn kind(msg: &SsrMsg) -> &'static str {
        msg.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_believes_itself_representative() {
        let n = IsprpNode::new(NodeId(9));
        assert_eq!(n.rep(), NodeId(9));
        assert!(n.succ().is_none());
        assert!(!n.locally_consistent());
    }

    #[test]
    fn inject_succ_sets_pointer() {
        let mut n = IsprpNode::new(NodeId(9));
        n.inject_succ(SourceRoute::direct(NodeId(9), NodeId(15)));
        assert_eq!(n.succ(), Some(NodeId(15)));
    }

    #[test]
    fn reset_keeps_identity() {
        let mut n = IsprpNode::new(NodeId(9));
        n.inject_succ(SourceRoute::direct(NodeId(9), NodeId(15)));
        n.reset();
        assert_eq!(n.id(), NodeId(9));
        assert!(n.succ().is_none());
        assert_eq!(n.rep(), NodeId(9));
    }
}
