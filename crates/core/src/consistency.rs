//! Global-observer consistency checkers.
//!
//! These inspect all node states from outside the network (simulation-only
//! omniscience — protocols never get this view) and classify the virtual
//! structure exactly as the paper's Section 3 does:
//!
//! * **locally consistent** — every node has at most (line) / exactly
//!   (ring) one neighbor per side;
//! * **loopy** — locally consistent as a ring, yet the successor cycle
//!   winds around the address space more than once (Figure 1);
//! * **partitioned** — the successor relation decomposes into several
//!   disjoint rings (Figure 2);
//! * **the line** — the linear reading: node `i`'s closest right neighbor
//!   is node `i+1` for every consecutive pair in address order;
//! * **the ring** — the line plus the closing edge between the global
//!   extremes.

use std::collections::BTreeMap;

use ssr_types::NodeId;

use crate::node::SsrNode;

/// Structure classification of a successor relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingShape {
    /// Every node is on one cycle that visits all nodes in address order —
    /// the globally consistent virtual ring.
    ConsistentRing,
    /// One cycle over all nodes, but it winds the address space more than
    /// once — Figure 1's loopy state. The winding number is attached.
    Loopy(usize),
    /// Multiple disjoint cycles — Figure 2's separate rings. The cycle
    /// count is attached.
    Partitioned(usize),
    /// Some node has no successor (or points at an unknown node): the
    /// relation is not even a permutation yet.
    Incomplete,
}

impl RingShape {
    /// A stable, machine-readable label — the vocabulary used by run
    /// manifests and the `obs` tooling: `consistent-ring`, `loopy(k)`,
    /// `partitioned(k)`, `incomplete`.
    pub fn label(&self) -> String {
        match self {
            RingShape::ConsistentRing => "consistent-ring".to_string(),
            RingShape::Loopy(w) => format!("loopy({w})"),
            RingShape::Partitioned(c) => format!("partitioned({c})"),
            RingShape::Incomplete => "incomplete".to_string(),
        }
    }
}

/// Outcome of a consistency check over all node states.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// Nodes with at most one neighbor per side and no handshake pending.
    pub locally_consistent_nodes: usize,
    /// Total nodes inspected.
    pub nodes: usize,
    /// `true` iff the linear reading is globally consistent (sorted line).
    pub line_formed: bool,
    /// `true` iff the line is closed into the ring by the wrap edges.
    pub ring_closed: bool,
    /// Shape of the successor relation.
    pub shape: RingShape,
}

impl ConsistencyReport {
    /// Full global consistency: the line formed and the ring closed.
    pub fn consistent(&self) -> bool {
        self.line_formed && self.ring_closed && self.shape == RingShape::ConsistentRing
    }
}

/// Classifies an arbitrary successor map (also used for the ISPRP baseline).
///
/// `succ` must contain one entry per node. The winding number of the unique
/// cycle is the number of times the address order "wraps" while following
/// successors; 1 = consistent, ≥ 2 = loopy.
pub fn classify_succ_map(succ: &BTreeMap<NodeId, NodeId>) -> RingShape {
    let n = succ.len();
    if n == 0 {
        return RingShape::ConsistentRing;
    }
    // every successor must itself be a node
    if succ.values().any(|s| !succ.contains_key(s)) {
        return RingShape::Incomplete;
    }
    // walk cycles
    let mut visited: BTreeMap<NodeId, bool> = succ.keys().map(|&k| (k, false)).collect();
    let mut cycles = 0usize;
    let mut first_cycle_len = 0usize;
    let mut first_cycle_windings = 0usize;
    for &start in succ.keys() {
        if visited[&start] {
            continue;
        }
        cycles += 1;
        let mut cur = start;
        let mut len = 0usize;
        let mut windings = 0usize;
        loop {
            *visited.get_mut(&cur).unwrap() = true;
            let next = succ[&cur];
            if next <= cur {
                windings += 1; // address order wrapped
            }
            len += 1;
            cur = next;
            if cur == start {
                break;
            }
            if visited[&cur] {
                // entered a previously visited cycle from a tail: the map is
                // not injective — not a permutation
                return RingShape::Incomplete;
            }
            if len > n {
                return RingShape::Incomplete;
            }
        }
        if cycles == 1 {
            first_cycle_len = len;
            first_cycle_windings = windings;
        }
    }
    if cycles > 1 {
        RingShape::Partitioned(cycles)
    } else if first_cycle_len == n && first_cycle_windings <= 1 {
        RingShape::ConsistentRing
    } else {
        RingShape::Loopy(first_cycle_windings)
    }
}

/// Checks the *line* reading over linearized SSR nodes: every consecutive
/// address pair must be mutual closest neighbors.
pub fn check_line(nodes: &[SsrNode]) -> bool {
    let mut sorted: Vec<&SsrNode> = nodes.iter().collect();
    sorted.sort_by_key(|n| n.id());
    for w in sorted.windows(2) {
        if w[0].closest_right() != Some(w[1].id()) || w[1].closest_left() != Some(w[0].id()) {
            return false;
        }
    }
    // the extremes must have empty outward sides
    if let (Some(first), Some(last)) = (sorted.first(), sorted.last()) {
        if first.closest_left().is_some() || last.closest_right().is_some() {
            return false;
        }
    }
    true
}

/// Checks the full virtual *ring* over linearized SSR nodes: the line plus
/// mutually agreed wrap edges between the global extremes. Single-node
/// networks are trivially consistent.
pub fn check_ring(nodes: &[SsrNode]) -> ConsistencyReport {
    let n = nodes.len();
    let locally_consistent_nodes = nodes.iter().filter(|x| x.locally_consistent()).count();
    let line_formed = check_line(nodes);
    let ring_closed = if n <= 1 {
        true
    } else {
        let mut sorted: Vec<&SsrNode> = nodes.iter().collect();
        sorted.sort_by_key(|x| x.id());
        let min = sorted[0];
        let max = sorted[n - 1];
        min.wrap_pred() == Some(max.id()) && max.wrap_succ() == Some(min.id())
    };
    let shape = if n <= 1 {
        RingShape::ConsistentRing
    } else {
        let succ: BTreeMap<NodeId, NodeId> = nodes
            .iter()
            .filter_map(|x| x.ring_succ().map(|s| (x.id(), s)))
            .collect();
        if succ.len() < n {
            RingShape::Incomplete
        } else {
            classify_succ_map(&succ)
        }
    };
    ConsistencyReport {
        locally_consistent_nodes,
        nodes: n,
        line_formed,
        ring_closed,
        shape,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn succ_map(pairs: &[(u64, u64)]) -> BTreeMap<NodeId, NodeId> {
        pairs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect()
    }

    #[test]
    fn consistent_ring_classified() {
        let s = succ_map(&[(1, 4), (4, 9), (9, 13), (13, 1)]);
        assert_eq!(classify_succ_map(&s), RingShape::ConsistentRing);
    }

    #[test]
    fn loopy_state_detected() {
        // Figure 1's doubly-wound ring over {1,4,9,13,18,21,25,29}:
        // 1→9→18→25→4→13→21→29→1 — every node has exactly one successor
        // and one predecessor (locally consistent!) but the cycle winds the
        // address space twice.
        let s = succ_map(&[
            (1, 9),
            (9, 18),
            (18, 25),
            (25, 4),
            (4, 13),
            (13, 21),
            (21, 29),
            (29, 1),
        ]);
        assert_eq!(classify_succ_map(&s), RingShape::Loopy(2));
    }

    #[test]
    fn separate_rings_detected() {
        // Figure 2: {1,9,18} and {4,13,21} as two disjoint rings.
        let s = succ_map(&[(1, 9), (9, 18), (18, 1), (4, 13), (13, 21), (21, 4)]);
        assert_eq!(classify_succ_map(&s), RingShape::Partitioned(2));
    }

    #[test]
    fn incomplete_when_successor_unknown() {
        let s = succ_map(&[(1, 9), (9, 99)]);
        assert_eq!(classify_succ_map(&s), RingShape::Incomplete);
    }

    #[test]
    fn non_injective_map_is_incomplete() {
        // two nodes point at the same successor, one node unreachable
        let s = succ_map(&[(1, 9), (4, 9), (9, 1)]);
        assert_eq!(classify_succ_map(&s), RingShape::Incomplete);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(classify_succ_map(&succ_map(&[])), RingShape::ConsistentRing);
        // a single node whose successor is itself: one cycle, one winding
        assert_eq!(
            classify_succ_map(&succ_map(&[(5, 5)])),
            RingShape::ConsistentRing
        );
    }

    #[test]
    fn triple_winding() {
        // 1→5→9→2→6→10→3→7→11→1 over sorted ids 1,2,3,5,6,7,9,10,11: the
        // successor jumps +4 each time, wrapping three times.
        let s = succ_map(&[
            (1, 5),
            (5, 9),
            (9, 2),
            (2, 6),
            (6, 10),
            (10, 3),
            (3, 7),
            (7, 11),
            (11, 1),
        ]);
        assert_eq!(classify_succ_map(&s), RingShape::Loopy(3));
    }

    #[test]
    fn check_line_and_ring_over_hand_built_nodes() {
        use crate::node::SsrNode;
        use crate::route::SourceRoute;
        let ids = [NodeId(10), NodeId(20), NodeId(30)];
        let mut nodes: Vec<SsrNode> = ids.iter().map(|&i| SsrNode::new(i)).collect();
        // wire the line 10–20–30 through test-only state manipulation
        nodes[0].inject_neighbor(SourceRoute::direct(NodeId(10), NodeId(20)));
        nodes[1].inject_neighbor(SourceRoute::direct(NodeId(20), NodeId(10)));
        nodes[1].inject_neighbor(SourceRoute::direct(NodeId(20), NodeId(30)));
        nodes[2].inject_neighbor(SourceRoute::direct(NodeId(30), NodeId(20)));
        assert!(check_line(&nodes));
        let report = check_ring(&nodes);
        assert!(report.line_formed);
        assert!(!report.ring_closed);
        assert_eq!(report.shape, RingShape::Incomplete); // min/max lack ring edges
                                                         // close the ring
        nodes[0].inject_wrap_pred(
            NodeId(30),
            SourceRoute::from_hops(vec![NodeId(10), NodeId(20), NodeId(30)]),
        );
        nodes[2].inject_wrap_succ(
            NodeId(10),
            SourceRoute::from_hops(vec![NodeId(30), NodeId(20), NodeId(10)]),
        );
        let report = check_ring(&nodes);
        assert!(report.consistent(), "{report:?}");
    }

    #[test]
    fn check_line_fails_on_extra_outer_neighbors() {
        use crate::node::SsrNode;
        use crate::route::SourceRoute;
        let mut nodes = vec![SsrNode::new(NodeId(10)), SsrNode::new(NodeId(20))];
        nodes[0].inject_neighbor(SourceRoute::direct(NodeId(10), NodeId(20)));
        nodes[1].inject_neighbor(SourceRoute::direct(NodeId(20), NodeId(10)));
        assert!(check_line(&nodes));
        // a stale extra neighbor below the minimum breaks the line check
        nodes[0].inject_neighbor(SourceRoute::direct(NodeId(10), NodeId(5)));
        assert!(!check_line(&nodes));
    }
}
