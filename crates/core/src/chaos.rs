//! Adversarial *state* injection and self-stabilization invariants.
//!
//! The paper's central claim is that linearization converges from **any**
//! initial state over any connected graph. The figure reproductions start
//! from two curated adversarial states (Figure 1's doubly-wound loopy ring,
//! Figure 2's separate rings); this module generalizes those constructors
//! into a scenario library usable from any experiment, plus the
//! global-observer invariant checker that verifies the claim while the
//! protocol runs:
//!
//! * **successor-map builders** — [`wound_ring_succ`] (one cycle winding
//!   the address space `w` times; `w = 2` over the figure-1 ids reproduces
//!   figure 1 exactly), [`split_rings_succ`] (`k` disjoint interleaved
//!   rings; `k = 2` over the figure-2 ids reproduces figure 2 exactly),
//!   [`random_succ`] (uniformly random assignment — not even a
//!   permutation);
//! * **state injectors** — [`apply_succ_corruption`] wires a successor map
//!   into live [`SsrNode`]s as virtual edges routed along physical shortest
//!   paths (mutually, or one-sided for mid-handshake truncation) and
//!   [`inject_stale_cache_routes`] plants fabricated route-cache entries
//!   whose hops need not be physically adjacent;
//! * **invariants** — [`invariant_probe`] checks, between audit rounds:
//!   connectedness of the union graph (physical ∪ virtual edges),
//!   the zero-flood invariant, and monotone non-increase of the
//!   linearization potential (sum of virtual-edge address spans). Rises
//!   are *counted*, not asserted: DESIGN.md finding 1 shows transient
//!   rises under simultaneous proposals, and ring-closure discovery
//!   legitimately grows the edge set — the experiment reports the counts;
//! * **watchdog glue** — [`ssr_signature`] / [`ssr_all_locally_consistent`]
//!   plug [`SsrNode`]s into the generic freeze watchdog
//!   (`ssr_sim::watchdog`).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use ssr_graph::{algo, Graph, Labeling};
use ssr_sim::sim::ProbeView;
use ssr_sim::{Simulator, TraceEvent};
use ssr_types::{NodeId, Rng};

use crate::node::SsrNode;
use crate::route::SourceRoute;

// ---------------------------------------------------------------------------
// successor-map builders
// ---------------------------------------------------------------------------

/// One cycle over all `ids` that winds the address space `windings` times:
/// sort the ids, split them into `windings` interleaved residue classes
/// (`j % windings`), and chain the classes into a single cycle. Each class
/// is ascending, so the cycle wraps the address order exactly once per
/// class boundary — `classify_succ_map` reports `Loopy(windings)` (or the
/// consistent ring for `windings == 1`).
///
/// # Panics
/// Panics unless `1 <= windings <= ids.len()`.
pub fn wound_ring_succ(ids: &[NodeId], windings: usize) -> BTreeMap<NodeId, NodeId> {
    assert!(
        windings >= 1 && windings <= ids.len(),
        "need 1 <= windings <= n"
    );
    let mut sorted: Vec<NodeId> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let order: Vec<NodeId> = (0..windings)
        .flat_map(|r| sorted.iter().skip(r).step_by(windings).copied())
        .collect();
    cycle_of(&order)
}

/// `parts` disjoint rings over interleaved residue classes of the sorted
/// ids: class `r` (every `parts`-th id starting at `r`) closes on itself.
/// `classify_succ_map` reports `Partitioned(parts)` (or the consistent
/// ring for `parts == 1`).
///
/// # Panics
/// Panics unless `1 <= parts <= ids.len()`.
pub fn split_rings_succ(ids: &[NodeId], parts: usize) -> BTreeMap<NodeId, NodeId> {
    assert!(parts >= 1 && parts <= ids.len(), "need 1 <= parts <= n");
    let mut sorted: Vec<NodeId> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut succ = BTreeMap::new();
    for r in 0..parts {
        let class: Vec<NodeId> = sorted.iter().skip(r).step_by(parts).copied().collect();
        succ.extend(cycle_of(&class));
    }
    succ
}

/// A uniformly random successor assignment: every id points at a uniformly
/// random *other* id. Deliberately not even a permutation — the hardest
/// corrupted start the self-stabilization claim must recover from.
pub fn random_succ(ids: &[NodeId], rng: &mut Rng) -> BTreeMap<NodeId, NodeId> {
    ids.iter()
        .map(|&a| {
            let mut b = a;
            while b == a && ids.len() > 1 {
                b = ids[rng.index(ids.len())];
            }
            (a, b)
        })
        .collect()
}

/// `count` random ordered pairs `(a, b)`, `a != b`, as a successor map —
/// combined with `mutual = false` in [`apply_succ_corruption`] this models
/// mid-handshake truncation: `a` believes the virtual edge exists, `b`
/// never heard of it.
pub fn half_handshake_pairs(
    ids: &[NodeId],
    count: usize,
    rng: &mut Rng,
) -> BTreeMap<NodeId, NodeId> {
    let mut out = BTreeMap::new();
    if ids.len() < 2 {
        return out;
    }
    for _ in 0..count {
        let a = ids[rng.index(ids.len())];
        let mut b = a;
        while b == a {
            b = ids[rng.index(ids.len())];
        }
        out.insert(a, b);
    }
    out
}

/// The cyclic successor map visiting `order` in sequence.
fn cycle_of(order: &[NodeId]) -> BTreeMap<NodeId, NodeId> {
    let n = order.len();
    (0..n).map(|i| (order[i], order[(i + 1) % n])).collect()
}

// ---------------------------------------------------------------------------
// state injectors
// ---------------------------------------------------------------------------

/// What a corruption pass actually wired in.
#[derive(Clone, Copy, Debug, Default)]
pub struct CorruptionReport {
    /// Virtual edges injected (each counted once, mutual or not).
    pub injected: usize,
    /// Map entries skipped: endpoint unknown to the labeling or physically
    /// unreachable.
    pub skipped: usize,
}

/// Wires `succ` into a live SSR simulation as virtual-edge state: for each
/// `a → b`, `b` enters `a`'s side set with a source route along the current
/// physical shortest path (so the corrupted *virtual* structure sits on
/// valid *physical* routes, exactly like the figure constructions). With
/// `mutual` the reverse edge is injected too; without it the state is
/// one-sided — a truncated handshake.
pub fn apply_succ_corruption(
    sim: &mut Simulator<SsrNode>,
    labels: &Labeling,
    succ: &BTreeMap<NodeId, NodeId>,
    mutual: bool,
) -> CorruptionReport {
    let mut report = CorruptionReport::default();
    let mut routes: Vec<(usize, SourceRoute)> = Vec::new();
    {
        let topo = sim.topology();
        for (&a, &b) in succ {
            if a == b {
                report.skipped += 1;
                continue;
            }
            let (Some(ia), Some(ib)) = (labels.index(a), labels.index(b)) else {
                report.skipped += 1;
                continue;
            };
            let Some(path) = algo::shortest_path(topo, ia, ib) else {
                report.skipped += 1;
                continue;
            };
            let hops: Vec<NodeId> = path.iter().map(|&u| labels.id(u)).collect();
            let fwd = SourceRoute::from_hops(hops);
            if mutual {
                routes.push((ib, fwd.reversed()));
            }
            routes.push((ia, fwd));
            report.injected += 1;
        }
    }
    for (idx, route) in routes {
        sim.protocol_mut(idx).inject_neighbor(route);
    }
    report
}

/// Plants `per_node` fabricated, unpinned route-cache entries at every
/// node: each claims a 3-hop route `a → via → dst` whose middle hop is a
/// random id that need not be physically adjacent to either end. Greedy
/// forwarding that trusts such a route must fail over gracefully
/// (`fwd.broken`), never panic. Returns the number of routes planted.
pub fn inject_stale_cache_routes(
    sim: &mut Simulator<SsrNode>,
    labels: &Labeling,
    per_node: usize,
    rng: &mut Rng,
) -> usize {
    let ids = labels.ids().to_vec();
    if ids.len() < 3 {
        return 0;
    }
    let mut planted = 0;
    for ia in 0..ids.len() {
        let a = ids[ia];
        for _ in 0..per_node {
            let mut dst = a;
            while dst == a {
                dst = ids[rng.index(ids.len())];
            }
            let mut via = a;
            while via == a || via == dst {
                via = ids[rng.index(ids.len())];
            }
            sim.protocol_mut(ia)
                .inject_cache_route(SourceRoute::from_hops(vec![a, via, dst]));
            planted += 1;
        }
    }
    planted
}

// ---------------------------------------------------------------------------
// invariants
// ---------------------------------------------------------------------------

/// The linearization potential: the sum of address spans `|a − b|` over all
/// distinct virtual *line* edges (side-set members) of live nodes. Wrap
/// (ring-closure) edges are excluded — their span is the whole address
/// range by construction, so including them would make the converged ring
/// score worse than a corrupted line. Linearization replaces long line
/// edges by shorter ones, so from a fully-corrupted start this sum shrinks
/// toward the consistent ring's minimum.
pub fn linearization_potential(nodes: &[SsrNode], alive: &[bool]) -> u128 {
    let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for (i, node) in nodes.iter().enumerate() {
        if !alive.get(i).copied().unwrap_or(true) {
            continue;
        }
        let a = node.id();
        for &b in node.left_set().iter().chain(node.right_set().iter()) {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    edges.iter().map(|&(a, b)| (b.0 - a.0) as u128).sum()
}

/// Number of connected components of the **union graph** — physical edges
/// plus virtual edges (side sets and wraps, mapped back to simulator
/// indices) — restricted to live nodes. Self-stabilization requires the
/// union graph to stay connected: linearization may only *replace* edges,
/// never sever the last path between two halves.
pub fn union_components(
    topo: &Graph,
    alive: &[bool],
    labels: &Labeling,
    nodes: &[SsrNode],
) -> usize {
    let n = topo.node_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, v) in topo.edges() {
        adj[u].push(v);
        adj[v].push(u);
    }
    for (i, node) in nodes.iter().enumerate() {
        let virt = node
            .left_set()
            .iter()
            .chain(node.right_set().iter())
            .copied()
            .chain(node.wrap_pred())
            .chain(node.wrap_succ());
        for b in virt {
            if let Some(j) = labels.index(b) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut seen = vec![false; n];
    let mut comps = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if seen[s] || !alive.get(s).copied().unwrap_or(true) {
            continue;
        }
        comps += 1;
        seen[s] = true;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] && alive.get(v).copied().unwrap_or(true) {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
    }
    comps
}

/// Counters accumulated by the [`invariant_probe`], shared with the
/// experiment loop.
#[derive(Clone, Debug)]
pub struct InvariantState {
    /// Violations before this tick are ignored (set it past the fault
    /// window — mid-partition the union graph is *expected* to be split).
    pub armed_after: u64,
    /// Probe firings.
    pub samples: u64,
    /// Armed samples where the union graph had more than one component.
    pub union_disconnected: u64,
    /// Armed sample-to-sample rises of the linearization potential.
    pub potential_rises: u64,
    /// Current `msg.flood` counter (must stay 0 for linearized SSR).
    pub flood_msgs: u64,
    /// Potential at the previous armed sample.
    pub last_potential: Option<u128>,
    /// Potential at the most recent sample.
    pub current_potential: u128,
}

/// Shared handle to an [`InvariantState`].
pub type SharedInvariants = Rc<RefCell<InvariantState>>;

/// A fresh invariant state armed after `armed_after` ticks.
pub fn shared_invariants(armed_after: u64) -> SharedInvariants {
    Rc::new(RefCell::new(InvariantState {
        armed_after,
        samples: 0,
        union_disconnected: 0,
        potential_rises: 0,
        flood_msgs: 0,
        last_potential: None,
        current_potential: 0,
    }))
}

/// Builds the invariant-checker probe. Register with
/// `Simulator::add_probe` on the audit-round grid (DESIGN.md finding 1:
/// the potential is *not* monotone per event under simultaneous proposals;
/// between audit rounds is the granularity the claim holds at). Violations
/// increment `probe.invariant.*` counters and emit one structured `diag`
/// trace event per kind; the shared state carries the totals.
pub fn invariant_probe(
    labels: Labeling,
    state: SharedInvariants,
) -> impl FnMut(&mut ProbeView<'_, SsrNode>) {
    let mut diag_disconnect = false;
    let mut diag_rise = false;
    // (state_gen, potential, union components) at the last full audit.
    // When nothing in the simulation changed between firings
    // (`ProbeView::state_gen` unchanged) the audit result is exact and the
    // O(n + m) rescan is skipped; every sample is still *recorded*, so the
    // counters and manifests are byte-identical with or without the cache.
    let mut audited: Option<(u64, u128, usize)> = None;
    move |view: &mut ProbeView<'_, SsrNode>| {
        let now = view.now.ticks();
        let mut st = state.borrow_mut();
        st.samples += 1;
        st.flood_msgs = view.metrics.counter("msg.flood");
        let (phi, comps) = match audited {
            Some((gen, phi, comps)) if gen == view.state_gen => (phi, comps),
            _ => {
                let phi = linearization_potential(view.protocols, view.alive);
                let comps = union_components(view.topology, view.alive, &labels, view.protocols);
                audited = Some((view.state_gen, phi, comps));
                (phi, comps)
            }
        };
        st.current_potential = phi;
        view.metrics.observe("chaos.potential", phi as f64);
        let armed = now >= st.armed_after;
        if comps > 1 && armed {
            st.union_disconnected += 1;
            view.metrics.incr("probe.invariant.union_disconnected");
            if !diag_disconnect && view.trace.enabled() {
                diag_disconnect = true;
                view.trace.record(TraceEvent::Diag {
                    at: view.now,
                    source: "invariant",
                    text: format!("union graph split into {comps} components"),
                });
            }
        }
        if armed {
            if let Some(prev) = st.last_potential {
                if phi > prev {
                    st.potential_rises += 1;
                    view.metrics.incr("probe.invariant.potential_rise");
                    if !diag_rise && view.trace.enabled() {
                        diag_rise = true;
                        view.trace.record(TraceEvent::Diag {
                            at: view.now,
                            source: "invariant",
                            text: format!("potential rose {prev} -> {phi}"),
                        });
                    }
                }
            }
            st.last_potential = Some(phi);
        } else {
            st.last_potential = None;
        }
    }
}

// ---------------------------------------------------------------------------
// watchdog glue
// ---------------------------------------------------------------------------

/// Hash of all convergence-relevant SSR state (side sets, wraps, pending
/// handshakes), for the generic freeze watchdog: if this stops changing
/// without global consistency, the run is frozen.
pub fn ssr_signature(nodes: &[SsrNode]) -> u64 {
    const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0u64;
    let mut feed = |x: u64| h = h.rotate_left(9) ^ x.wrapping_mul(MIX);
    for node in nodes {
        feed(node.id().0);
        for &b in node.left_set() {
            feed(b.0 ^ 1);
        }
        for &b in node.right_set() {
            feed(b.0 ^ 2);
        }
        feed(node.wrap_pred().map_or(3, |b| b.0.rotate_left(17)));
        feed(node.wrap_succ().map_or(5, |b| b.0.rotate_left(29)));
        feed(u64::from(node.locally_consistent()));
    }
    h
}

/// `true` when every node is locally consistent — the predicate that
/// separates a frozen *crossing* state from a plain stuck state.
pub fn ssr_all_locally_consistent(nodes: &[SsrNode]) -> bool {
    nodes.iter().all(|n| n.locally_consistent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{make_ssr_nodes, BootstrapConfig};
    use crate::consistency::{check_ring, classify_succ_map, RingShape};
    use ssr_graph::generators;
    use ssr_sim::LinkConfig;

    fn ids(raw: &[u64]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn wound_ring_reproduces_figure_1_exactly() {
        let fig1 = ids(&[1, 4, 9, 13, 18, 21, 25, 29]);
        let succ = wound_ring_succ(&fig1, 2);
        // 1→9→18→25→4→13→21→29→1, the paper's Figure 1
        let expect: BTreeMap<NodeId, NodeId> = [
            (1, 9),
            (9, 18),
            (18, 25),
            (25, 4),
            (4, 13),
            (13, 21),
            (21, 29),
            (29, 1),
        ]
        .into_iter()
        .map(|(a, b)| (NodeId(a), NodeId(b)))
        .collect();
        assert_eq!(succ, expect);
        assert_eq!(classify_succ_map(&succ), RingShape::Loopy(2));
    }

    #[test]
    fn split_rings_reproduce_figure_2_exactly() {
        let fig2 = ids(&[1, 4, 9, 13, 18, 21]);
        let succ = split_rings_succ(&fig2, 2);
        // {1,9,18} and {4,13,21} as two disjoint rings
        let expect: BTreeMap<NodeId, NodeId> =
            [(1, 9), (9, 18), (18, 1), (4, 13), (13, 21), (21, 4)]
                .into_iter()
                .map(|(a, b)| (NodeId(a), NodeId(b)))
                .collect();
        assert_eq!(succ, expect);
        assert_eq!(classify_succ_map(&succ), RingShape::Partitioned(2));
    }

    #[test]
    fn wound_ring_winding_number_scales() {
        let many = ids(&(1..=30).map(|i| i * 7).collect::<Vec<_>>());
        for w in 1..=5usize {
            let succ = wound_ring_succ(&many, w);
            let expect = if w == 1 {
                RingShape::ConsistentRing
            } else {
                RingShape::Loopy(w)
            };
            assert_eq!(classify_succ_map(&succ), expect, "windings {w}");
        }
    }

    #[test]
    fn split_rings_part_count_scales() {
        let many = ids(&(1..=24).map(|i| i * 5 + 1).collect::<Vec<_>>());
        for k in 2..=4usize {
            let succ = split_rings_succ(&many, k);
            assert_eq!(classify_succ_map(&succ), RingShape::Partitioned(k));
        }
    }

    #[test]
    fn random_succ_covers_all_ids_without_self_loops() {
        let mut rng = Rng::new(11);
        let all = ids(&(1..=40).map(|i| i * 3).collect::<Vec<_>>());
        let succ = random_succ(&all, &mut rng);
        assert_eq!(succ.len(), all.len());
        for (&a, &b) in &succ {
            assert_ne!(a, b);
            assert!(all.contains(&b));
        }
    }

    #[test]
    fn corrupted_start_converges_with_zero_floods() {
        // end-to-end: wound-ring corruption over a physical ring, linearized
        // SSR stabilizes out of it without flooding — the paper's claim.
        let n = 12;
        let topo = generators::ring(n);
        let mut rng = Rng::new(5);
        let labels = Labeling::random(n, &mut rng);
        let cfg = BootstrapConfig::default();
        let nodes = make_ssr_nodes(&labels, cfg.ssr);
        let mut sim = Simulator::new(topo, nodes, LinkConfig::ideal(), 77);
        let succ = wound_ring_succ(labels.ids(), 3);
        let report = apply_succ_corruption(&mut sim, &labels, &succ, true);
        assert_eq!(report.injected, n);
        assert_eq!(report.skipped, 0);
        let inv = shared_invariants(0);
        sim.add_probe(48, invariant_probe(labels.clone(), Rc::clone(&inv)));
        let phi0 = linearization_potential(sim.protocols(), &vec![true; n]);
        assert!(phi0 > 0);
        let outcome = sim.run_until_stable(8, 100_000, |nodes, _| check_ring(nodes).consistent());
        assert!(outcome.is_quiescent(), "did not converge: {outcome:?}");
        assert_eq!(sim.metrics().counter("msg.flood"), 0);
        let inv = inv.borrow();
        assert_eq!(inv.union_disconnected, 0, "union graph must stay connected");
        assert!(inv.samples > 0);
        assert_eq!(inv.flood_msgs, 0);
        // the corrupted start's long edges are gone
        let phi1 = linearization_potential(sim.protocols(), &vec![true; n]);
        assert!(phi1 < phi0, "potential did not shrink: {phi0} -> {phi1}");
    }

    #[test]
    fn one_sided_corruption_models_truncated_handshake() {
        let n = 8;
        let topo = generators::complete(n);
        let mut rng = Rng::new(9);
        let labels = Labeling::random(n, &mut rng);
        let cfg = BootstrapConfig::default();
        let nodes = make_ssr_nodes(&labels, cfg.ssr);
        let mut sim = Simulator::new(topo, nodes, LinkConfig::ideal(), 3);
        let pairs = half_handshake_pairs(labels.ids(), 5, &mut rng);
        assert!(!pairs.is_empty());
        apply_succ_corruption(&mut sim, &labels, &pairs, false);
        // one side knows the edge, the other does not
        let mut asymmetric = 0;
        for (&a, &b) in &pairs {
            let ia = labels.index(a).unwrap();
            let ib = labels.index(b).unwrap();
            let a_knows = sim.protocol(ia).left_set().contains(&b)
                || sim.protocol(ia).right_set().contains(&b);
            let b_knows = sim.protocol(ib).left_set().contains(&a)
                || sim.protocol(ib).right_set().contains(&a);
            assert!(a_knows);
            if !b_knows {
                asymmetric += 1;
            }
        }
        assert!(asymmetric > 0, "no truncation took effect");
        // audits must still repair this to the consistent ring
        let outcome = sim.run_until_stable(8, 100_000, |nodes, _| check_ring(nodes).consistent());
        assert!(outcome.is_quiescent(), "{outcome:?}");
        assert_eq!(sim.metrics().counter("msg.flood"), 0);
    }

    #[test]
    fn stale_cache_routes_never_panic_forwarding() {
        let n = 10;
        let topo = generators::ring(n);
        let mut rng = Rng::new(13);
        let labels = Labeling::random(n, &mut rng);
        let cfg = BootstrapConfig::default();
        let nodes = make_ssr_nodes(&labels, cfg.ssr);
        let mut sim = Simulator::new(topo, nodes, LinkConfig::ideal(), 21);
        let planted = inject_stale_cache_routes(&mut sim, &labels, 2, &mut rng);
        assert_eq!(planted, 2 * n);
        let outcome = sim.run_until_stable(8, 100_000, |nodes, _| check_ring(nodes).consistent());
        assert!(outcome.is_quiescent(), "{outcome:?}");
    }

    #[test]
    fn union_components_sees_virtual_bridges() {
        // two physical components, bridged only by a virtual edge
        let mut topo = Graph::new(4);
        topo.add_edge(0, 1);
        topo.add_edge(2, 3);
        let labels = Labeling::from_ids(vec![NodeId(10), NodeId(20), NodeId(30), NodeId(40)]);
        let mut nodes: Vec<SsrNode> = labels.ids().iter().map(|&i| SsrNode::new(i)).collect();
        let alive = vec![true; 4];
        assert_eq!(union_components(&topo, &alive, &labels, &nodes), 2);
        nodes[1].inject_neighbor(SourceRoute::direct(NodeId(20), NodeId(30)));
        assert_eq!(union_components(&topo, &alive, &labels, &nodes), 1);
    }

    #[test]
    fn signature_tracks_state_changes() {
        let mut nodes = vec![SsrNode::new(NodeId(10)), SsrNode::new(NodeId(20))];
        let s0 = ssr_signature(&nodes);
        nodes[0].inject_neighbor(SourceRoute::direct(NodeId(10), NodeId(20)));
        let s1 = ssr_signature(&nodes);
        assert_ne!(s0, s1);
        assert_eq!(s1, ssr_signature(&nodes), "signature must be pure");
        assert!(ssr_all_locally_consistent(&nodes));
    }

    #[test]
    #[should_panic(expected = "windings")]
    fn wound_ring_rejects_zero_windings() {
        let _ = wound_ring_succ(&ids(&[1, 2, 3]), 0);
    }
}
