//! Greedy source routing over (converged or converging) node state.
//!
//! "When routing a packet, the respective node chooses that (intermediate)
//! destination from its cache that is physically closest to itself and
//! virtually closest to the final destination of the packet" — realized
//! here as the clockwise-progress rule of [`RouteCache::best_toward`]
//! (virtual progress first, physical route length as tie-break), repeated at
//! every intermediate destination until arrival.
//!
//! "If the virtual ring has been formed consistently, this routing algorithm
//! is guaranteed to succeed for any source and destination pair" — that
//! guarantee is exactly what experiment E7 measures, so this module routes
//! over a *snapshot* of all node states (fast, deterministic, no protocol
//! interference) and reports virtual hops, physical hops, and failures.

use std::collections::BTreeMap;

use ssr_types::NodeId;

use crate::cache::RouteCache;
use crate::node::SsrNode;

/// Outcome of routing one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Arrived; counts are (virtual hops, physical hops).
    Delivered {
        /// Greedy routing steps (intermediate destinations).
        virtual_hops: u32,
        /// Physical link traversals.
        physical_hops: u32,
    },
    /// A node had no cache entry making clockwise progress — the ring is
    /// (still) inconsistent toward this destination.
    Stuck {
        /// Node at which the packet stalled.
        at: NodeId,
    },
    /// The hop budget was exhausted (defensively bounded walk).
    Exhausted,
}

impl RouteOutcome {
    /// `true` iff the packet arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered { .. })
    }
}

/// An immutable routing view over all node states.
pub struct RoutingView<'a> {
    caches: BTreeMap<NodeId, &'a RouteCache>,
}

impl<'a> RoutingView<'a> {
    /// Builds the view from linearized SSR nodes.
    pub fn new(nodes: &'a [SsrNode]) -> Self {
        RoutingView {
            caches: nodes.iter().map(|n| (n.id(), n.cache())).collect(),
        }
    }

    /// Builds the view from bare caches (used by the VRR comparison, whose
    /// path state exposes the same lookup structure).
    pub fn from_caches(caches: impl IntoIterator<Item = &'a RouteCache>) -> Self {
        RoutingView {
            caches: caches.into_iter().map(|c| (c.owner(), c)).collect(),
        }
    }

    /// Routes a packet from `src` to `dst` greedily. `max_virtual_hops`
    /// bounds the walk (n + a margin is plenty on a consistent ring).
    pub fn route(&self, src: NodeId, dst: NodeId, max_virtual_hops: u32) -> RouteOutcome {
        if src == dst {
            return RouteOutcome::Delivered {
                virtual_hops: 0,
                physical_hops: 0,
            };
        }
        let mut cur = src;
        let mut virtual_hops = 0u32;
        let mut physical_hops = 0u32;
        while virtual_hops < max_virtual_hops {
            let Some(cache) = self.caches.get(&cur) else {
                return RouteOutcome::Stuck { at: cur };
            };
            let Some((next, route)) = cache.best_toward(dst) else {
                return RouteOutcome::Stuck { at: cur };
            };
            virtual_hops += 1;
            physical_hops += route.len() as u32;
            cur = next;
            if cur == dst {
                return RouteOutcome::Delivered {
                    virtual_hops,
                    physical_hops,
                };
            }
        }
        RouteOutcome::Exhausted
    }
}

/// Aggregate routing statistics over many trials.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutingStats {
    /// Packets routed.
    pub attempts: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Total virtual hops over delivered packets.
    pub virtual_hops: u64,
    /// Total physical hops over delivered packets.
    pub physical_hops: u64,
    /// Total shortest-path hops over delivered packets (for stretch).
    pub shortest_hops: u64,
}

impl RoutingStats {
    /// Delivery rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempts as f64
        }
    }

    /// Mean physical path stretch vs the shortest path.
    pub fn stretch(&self) -> f64 {
        if self.shortest_hops == 0 {
            0.0
        } else {
            self.physical_hops as f64 / self.shortest_hops as f64
        }
    }

    /// Mean virtual hops per delivered packet.
    pub fn mean_virtual_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.virtual_hops as f64 / self.delivered as f64
        }
    }

    /// Records one trial (`shortest` = ground-truth hop distance).
    pub fn record(&mut self, outcome: RouteOutcome, shortest: u32) {
        self.attempts += 1;
        if let RouteOutcome::Delivered {
            virtual_hops,
            physical_hops,
        } = outcome
        {
            self.delivered += 1;
            self.virtual_hops += u64::from(virtual_hops);
            self.physical_hops += u64::from(physical_hops);
            self.shortest_hops += u64::from(shortest);
        }
    }

    /// Like [`RoutingStats::record`], additionally feeding the canonical
    /// route histograms — `route.len` (physical hops of delivered packets)
    /// and `route.stretch_milli` (per-packet stretch × 1000, so the log
    /// buckets resolve ratios near 1) — plus the `route.attempts` /
    /// `route.delivered` counters.
    pub fn record_observed(
        &mut self,
        outcome: RouteOutcome,
        shortest: u32,
        metrics: &mut ssr_sim::Metrics,
    ) {
        metrics.incr("route.attempts");
        if let RouteOutcome::Delivered { physical_hops, .. } = outcome {
            metrics.incr("route.delivered");
            metrics.observe_hist("route.len", u64::from(physical_hops));
            if shortest > 0 {
                let stretch_milli = u64::from(physical_hops) * 1000 / u64::from(shortest);
                metrics.observe_hist("route.stretch_milli", stretch_milli);
            }
        }
        self.record(outcome, shortest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::SourceRoute;

    /// Hand-build a consistent 4-node ring 10–20–30–40 where each node
    /// caches only its ring neighbors (worst case for greedy: pure
    /// successor walking).
    fn ring_nodes() -> Vec<SsrNode> {
        let ids = [10u64, 20, 30, 40].map(NodeId);
        let mut nodes: Vec<SsrNode> = ids.iter().map(|&i| SsrNode::new(i)).collect();
        for i in 0..4 {
            let me = ids[i];
            let right = ids[(i + 1) % 4];
            let left = ids[(i + 3) % 4];
            if right > me {
                nodes[i].inject_neighbor(SourceRoute::direct(me, right));
            } else {
                nodes[i].inject_wrap_succ(right, SourceRoute::direct(me, right));
            }
            if left < me {
                nodes[i].inject_neighbor(SourceRoute::direct(me, left));
            } else {
                nodes[i].inject_wrap_pred(left, SourceRoute::direct(me, left));
            }
        }
        nodes
    }

    #[test]
    fn ring_walk_delivers_everywhere() {
        let nodes = ring_nodes();
        let view = RoutingView::new(&nodes);
        for src in [10u64, 20, 30, 40] {
            for dst in [10u64, 20, 30, 40] {
                let out = view.route(NodeId(src), NodeId(dst), 16);
                assert!(out.delivered(), "{src}→{dst}: {out:?}");
            }
        }
    }

    #[test]
    fn wrap_edge_used_for_crossing_the_seam() {
        let nodes = ring_nodes();
        let view = RoutingView::new(&nodes);
        // 40 → 10 must cross the wrap edge in one virtual hop
        match view.route(NodeId(40), NodeId(10), 16) {
            RouteOutcome::Delivered { virtual_hops, .. } => assert_eq!(virtual_hops, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shortcut_reduces_virtual_hops() {
        let mut nodes = ring_nodes();
        // give node 10 a shortcut straight to 40
        nodes[0].inject_neighbor(SourceRoute::direct(NodeId(10), NodeId(40)));
        let view = RoutingView::new(&nodes);
        match view.route(NodeId(10), NodeId(40), 16) {
            RouteOutcome::Delivered { virtual_hops, .. } => assert_eq!(virtual_hops, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn broken_ring_reports_stuck() {
        let mut nodes = ring_nodes();
        // amputate node 20's knowledge entirely
        ssr_sim::Protocol::reset(&mut nodes[1]);
        let view = RoutingView::new(&nodes);
        match view.route(NodeId(10), NodeId(30), 16) {
            RouteOutcome::Stuck { at } => assert_eq!(at, NodeId(20)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn self_route_is_free() {
        let nodes = ring_nodes();
        let view = RoutingView::new(&nodes);
        assert_eq!(
            view.route(NodeId(10), NodeId(10), 16),
            RouteOutcome::Delivered {
                virtual_hops: 0,
                physical_hops: 0
            }
        );
    }

    #[test]
    fn hop_budget_bounds_the_walk() {
        let nodes = ring_nodes();
        let view = RoutingView::new(&nodes);
        // 10 → 30 needs two successor hops (the ring edge to 40 overshoots
        // and is never a candidate); budget 1 fails
        assert_eq!(
            view.route(NodeId(10), NodeId(30), 1),
            RouteOutcome::Exhausted
        );
        assert!(view.route(NodeId(10), NodeId(30), 2).delivered());
    }

    #[test]
    fn record_observed_feeds_route_histograms() {
        let mut stats = RoutingStats::default();
        let mut metrics = ssr_sim::Metrics::new();
        stats.record_observed(
            RouteOutcome::Delivered {
                virtual_hops: 2,
                physical_hops: 6,
            },
            4,
            &mut metrics,
        );
        stats.record_observed(RouteOutcome::Exhausted, 3, &mut metrics);
        assert_eq!(stats.attempts, 2);
        let len = metrics.hist("route.len").expect("route.len");
        assert_eq!(len.count(), 1);
        assert_eq!(len.max(), Some(6));
        // 6 hops over a 4-hop shortest path = stretch 1.5 → 1500
        let stretch = metrics.hist("route.stretch_milli").expect("stretch");
        assert_eq!(stretch.max(), Some(1500));
    }

    #[test]
    fn stats_aggregation() {
        let mut stats = RoutingStats::default();
        stats.record(
            RouteOutcome::Delivered {
                virtual_hops: 2,
                physical_hops: 4,
            },
            2,
        );
        stats.record(RouteOutcome::Stuck { at: NodeId(1) }, 1);
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.delivered, 1);
        assert!((stats.success_rate() - 0.5).abs() < 1e-12);
        assert!((stats.stretch() - 2.0).abs() < 1e-12);
        assert!((stats.mean_virtual_hops() - 2.0).abs() < 1e-12);
    }
}
