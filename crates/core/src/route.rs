//! Source routes.
//!
//! A source route is an explicit physical path, written as the sequence of
//! node addresses from the route's owner to its destination, both inclusive.
//! Virtual-ring edges *are* source routes ("virtual neighbors are connected
//! by source routes which act as virtual links"), and nodes manufacture new
//! routes by appending cached ones to each other: when `v1` notifies `v2` of
//! `v3`, the notification carries `reverse(v1→v2) ++ (v1→v3)` — a route
//! `v2 → v3` through `v1` — with any incidental cycles pruned.

use ssr_types::NodeId;

/// A physical path `self → destination` as a sequence of addresses,
/// including both endpoints. A single-element route is the trivial route to
/// oneself; a two-element route is a direct physical link.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SourceRoute {
    hops: Vec<NodeId>,
}

impl SourceRoute {
    /// The trivial route from a node to itself.
    pub fn trivial(me: NodeId) -> Self {
        SourceRoute { hops: vec![me] }
    }

    /// A direct one-hop route to a physical neighbor.
    pub fn direct(me: NodeId, neighbor: NodeId) -> Self {
        assert_ne!(me, neighbor, "direct route to self");
        SourceRoute {
            hops: vec![me, neighbor],
        }
    }

    /// Builds a route from an explicit hop sequence.
    ///
    /// # Panics
    /// Panics if `hops` is empty or has equal consecutive entries.
    pub fn from_hops(hops: Vec<NodeId>) -> Self {
        assert!(!hops.is_empty(), "a route has at least its owner");
        for w in hops.windows(2) {
            assert_ne!(w[0], w[1], "route repeats a hop consecutively");
        }
        SourceRoute { hops }
    }

    /// The route's owner (first hop).
    #[inline]
    pub fn src(&self) -> NodeId {
        self.hops[0]
    }

    /// The route's destination (last hop).
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.hops.last().unwrap()
    }

    /// All hops, owner first.
    #[inline]
    pub fn hops(&self) -> &[NodeId] {
        &self.hops
    }

    /// Number of physical links traversed (`hops - 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len() - 1
    }

    /// `true` for the trivial self-route.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.len() == 1
    }

    /// The same path seen from the other end — valid because physical links
    /// are bidirectional.
    pub fn reversed(&self) -> SourceRoute {
        let mut hops = self.hops.clone();
        hops.reverse();
        SourceRoute { hops }
    }

    /// Appends `other` (which must start where `self` ends) and prunes
    /// cycles, so the result visits no node twice. This is the paper's
    /// "append (parts of) them to each other to create new source routes".
    ///
    /// # Panics
    /// Panics if `other.src() != self.dst()`.
    pub fn concat(&self, other: &SourceRoute) -> SourceRoute {
        assert_eq!(
            self.dst(),
            other.src(),
            "routes do not share the junction node"
        );
        let mut hops = self.hops.clone();
        hops.extend_from_slice(&other.hops[1..]);
        SourceRoute { hops }.pruned()
    }

    /// Removes cycles: whenever a node appears twice, everything between
    /// the two occurrences (inclusive of the second) is cut. The result is
    /// a simple path with the same endpoints, never longer than the input.
    pub fn pruned(&self) -> SourceRoute {
        let mut seen: std::collections::BTreeMap<NodeId, usize> = std::collections::BTreeMap::new();
        let mut out: Vec<NodeId> = Vec::with_capacity(self.hops.len());
        for &hop in &self.hops {
            if let Some(&pos) = seen.get(&hop) {
                // cut the loop: drop everything after the first occurrence
                for dropped in out.drain(pos + 1..) {
                    seen.remove(&dropped);
                }
            } else {
                seen.insert(hop, out.len());
                out.push(hop);
            }
        }
        SourceRoute { hops: out }
    }

    /// `true` iff no node appears twice.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.hops.iter().all(|h| seen.insert(*h))
    }

    /// The hop after `node` on this route, if `node` is on the route and
    /// not its destination — what a forwarding node looks up.
    pub fn next_hop_after(&self, node: NodeId) -> Option<NodeId> {
        let pos = self.hops.iter().position(|&h| h == node)?;
        self.hops.get(pos + 1).copied()
    }

    /// Checks the route against ground truth: every consecutive pair must
    /// be a physical edge. Used by tests and the observer-side validators
    /// (protocols themselves never see the global topology).
    pub fn valid_in<F: Fn(NodeId, NodeId) -> bool>(&self, has_edge: F) -> bool {
        self.hops.windows(2).all(|w| has_edge(w[0], w[1]))
    }
}

impl std::fmt::Display for SourceRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for h in &self.hops {
            if !first {
                write!(f, "→")?;
            }
            write!(f, "{h}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ids: &[u64]) -> SourceRoute {
        SourceRoute::from_hops(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn construction_and_accessors() {
        let route = r(&[1, 2, 3]);
        assert_eq!(route.src(), NodeId(1));
        assert_eq!(route.dst(), NodeId(3));
        assert_eq!(route.len(), 2);
        assert!(!route.is_empty());
        assert!(SourceRoute::trivial(NodeId(9)).is_empty());
        assert_eq!(SourceRoute::direct(NodeId(1), NodeId(2)).len(), 1);
    }

    #[test]
    fn reversal() {
        let route = r(&[1, 2, 3]);
        let rev = route.reversed();
        assert_eq!(rev.hops(), &[NodeId(3), NodeId(2), NodeId(1)]);
        assert_eq!(rev.reversed(), route);
    }

    #[test]
    fn concat_through_junction() {
        // v2→v1 ++ v1→v3  =  v2→v3 (the paper's update construction)
        let back = r(&[2, 7, 1]); // v2 → v1 via 7
        let fwd = r(&[1, 8, 3]); // v1 → v3 via 8
        let combined = back.concat(&fwd);
        assert_eq!(
            combined.hops(),
            &[NodeId(2), NodeId(7), NodeId(1), NodeId(8), NodeId(3)]
        );
        assert!(combined.is_simple());
    }

    #[test]
    fn concat_prunes_shared_prefix_cycle() {
        // v2 → v1 via 7, then v1 → v3 via 7 again: the detour through v1
        // collapses, leaving v2 → 7 → v3.
        let back = r(&[2, 7, 1]);
        let fwd = r(&[1, 7, 3]);
        let combined = back.concat(&fwd);
        assert_eq!(combined.hops(), &[NodeId(2), NodeId(7), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn concat_requires_junction() {
        let _ = r(&[1, 2]).concat(&r(&[3, 4]));
    }

    #[test]
    fn pruning_removes_all_cycles() {
        let looped = SourceRoute {
            hops: vec![1, 2, 3, 4, 2, 5].into_iter().map(NodeId).collect(),
        };
        let pruned = looped.pruned();
        assert_eq!(pruned.hops(), &[NodeId(1), NodeId(2), NodeId(5)]);
        assert!(pruned.is_simple());
        assert_eq!(pruned.src(), looped.src());
        assert_eq!(pruned.dst(), looped.dst());
    }

    #[test]
    fn pruning_handles_nested_cycles() {
        let looped = SourceRoute {
            hops: vec![1, 2, 3, 2, 4, 1, 5].into_iter().map(NodeId).collect(),
        };
        let pruned = looped.pruned();
        assert_eq!(pruned.hops(), &[NodeId(1), NodeId(5)]);
    }

    #[test]
    fn pruning_endpoint_cycle_collapses_to_trivial() {
        let looped = SourceRoute {
            hops: vec![1, 2, 1].into_iter().map(NodeId).collect(),
        };
        assert_eq!(looped.pruned(), SourceRoute::trivial(NodeId(1)));
    }

    #[test]
    fn next_hop_lookup() {
        let route = r(&[1, 2, 3]);
        assert_eq!(route.next_hop_after(NodeId(1)), Some(NodeId(2)));
        assert_eq!(route.next_hop_after(NodeId(2)), Some(NodeId(3)));
        assert_eq!(route.next_hop_after(NodeId(3)), None);
        assert_eq!(route.next_hop_after(NodeId(9)), None);
    }

    #[test]
    fn validity_check() {
        let route = r(&[1, 2, 3]);
        assert!(route.valid_in(|a, b| a.raw() + 1 == b.raw() || b.raw() + 1 == a.raw()));
        assert!(!r(&[1, 3]).valid_in(|a, b| a.raw() + 1 == b.raw() || b.raw() + 1 == a.raw()));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", r(&[1, 2, 3])), "1→2→3");
    }
}
