//! Property-based tests for the SSR core: source-route algebra, cache
//! retention invariants, and end-to-end bootstrap properties on arbitrary
//! connected topologies.

use proptest::prelude::*;
use ssr_core::bootstrap::{run_linearized_bootstrap, BootstrapConfig};
use ssr_core::cache::RouteCache;
use ssr_core::route::SourceRoute;
use ssr_core::routing::RoutingView;
use ssr_graph::{algo, generators, Graph, Labeling};
use ssr_types::{IntervalPartition, NodeId, Rng};

/// Strategy: a route as a list of distinct ids (simple path).
fn simple_path(max_len: usize) -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::btree_set(any::<u64>(), 1..max_len)
        .prop_map(|s| s.into_iter().map(NodeId).collect::<Vec<_>>())
        .prop_shuffle()
}

/// Strategy: a hop list that may contain repeats (cycles), consecutive
/// duplicates removed.
fn loopy_path(max_len: usize) -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::vec(0u64..24, 1..max_len).prop_map(|v| {
        let mut hops: Vec<NodeId> = v.into_iter().map(NodeId).collect();
        hops.dedup();
        hops
    })
}

proptest! {
    #[test]
    fn reverse_is_involutive(hops in simple_path(20)) {
        let r = SourceRoute::from_hops(hops);
        prop_assert_eq!(r.reversed().reversed(), r);
    }

    #[test]
    fn pruning_yields_simple_path_with_same_endpoints(hops in loopy_path(30)) {
        let r = SourceRoute::from_hops(hops);
        let p = r.pruned();
        prop_assert!(p.is_simple());
        prop_assert_eq!(p.src(), r.src());
        prop_assert_eq!(p.dst(), r.dst());
        prop_assert!(p.len() <= r.len());
        // idempotent
        prop_assert_eq!(p.pruned(), p.clone());
    }

    #[test]
    fn pruning_preserves_link_validity(hops in loopy_path(30)) {
        // every consecutive pair of the pruned route was consecutive
        // somewhere in the original (so physical validity is preserved)
        let r = SourceRoute::from_hops(hops);
        let orig_pairs: std::collections::HashSet<(NodeId, NodeId)> = r
            .hops()
            .windows(2)
            .flat_map(|w| [(w[0], w[1]), (w[1], w[0])])
            .collect();
        for w in r.pruned().hops().windows(2) {
            prop_assert!(orig_pairs.contains(&(w[0], w[1])));
        }
    }

    #[test]
    fn concat_endpoints(a in simple_path(10), b in simple_path(10)) {
        // join the two paths at a shared node
        let a = SourceRoute::from_hops(a);
        let mut hops_b = vec![a.dst()];
        hops_b.extend(b.into_iter().filter(|&h| h != a.dst()));
        let b = SourceRoute::from_hops(hops_b);
        let c = a.concat(&b);
        prop_assert_eq!(c.src(), a.src());
        prop_assert_eq!(c.dst(), b.dst());
        prop_assert!(c.is_simple());
    }

    #[test]
    fn cache_interval_invariant(owner: u64, dests in proptest::collection::vec(any::<u64>(), 1..80), base in 2u64..5) {
        // at most one unpinned entry per (side, interval)
        let owner = NodeId(owner);
        let mut cache = RouteCache::with_partition(owner, IntervalPartition::new(base));
        for d in dests {
            if d != owner.raw() {
                cache.insert(SourceRoute::direct(owner, NodeId(d)), false);
            }
        }
        let partition = IntervalPartition::new(base);
        let mut seen = std::collections::HashSet::new();
        for (d, _) in cache.iter() {
            let slot = partition.index(owner, d).unwrap();
            prop_assert!(seen.insert(slot), "two unpinned entries in {slot:?}");
        }
    }

    #[test]
    fn cache_best_toward_makes_cw_progress(owner: u64, dests in proptest::collection::vec(any::<u64>(), 1..40), target: u64) {
        let owner = NodeId(owner);
        let target = NodeId(target);
        let mut cache = RouteCache::new(owner);
        for d in dests {
            if d != owner.raw() {
                cache.insert(SourceRoute::direct(owner, NodeId(d)), false);
            }
        }
        if let Some((next, _)) = cache.best_toward(target) {
            // strict progress: next is on the clockwise arc and closer
            prop_assert!(ssr_types::cw_dist(next, target) < ssr_types::cw_dist(owner, target));
        }
    }

    #[test]
    #[ignore = "slow: full bootstrap per case; run with --ignored"]
    fn bootstrap_converges_and_routes_on_arbitrary_connected_graphs(
        n in 4usize..24, seed: u64, p in 0.0f64..0.3
    ) {
        let mut rng = Rng::new(seed);
        let mut g = generators::gnp(n, p, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let labels = Labeling::random(n, &mut rng);
        let cfg = BootstrapConfig {
            seed,
            max_ticks: 60_000,
            ..Default::default()
        };
        let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
        prop_assert!(report.converged, "no convergence: {report:?}");
        // no flooding ever
        prop_assert!(!report.messages.iter().any(|(k, _)| k == "msg.flood"));
        // greedy routing delivers between all pairs
        let view = RoutingView::new(sim.protocols());
        for a in 0..n {
            for b in 0..n {
                let (src, dst) = (labels.id(a), labels.id(b));
                prop_assert!(
                    view.route(src, dst, 4 * n as u32).delivered(),
                    "{src} -> {dst} failed"
                );
            }
        }
    }
}

/// A smaller, always-run version of the bootstrap property.
#[test]
fn bootstrap_converges_on_a_handful_of_connected_graphs() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(seed);
        let n = 6 + (seed as usize % 10);
        let mut g = generators::gnp(n, 0.2, &mut rng);
        generators::ensure_connected(&mut g, &mut rng);
        let labels = Labeling::random(n, &mut rng);
        let cfg = BootstrapConfig {
            seed,
            max_ticks: 60_000,
            ..Default::default()
        };
        let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
        assert!(report.converged, "seed {seed}: {report:?}");
        let view = RoutingView::new(sim.protocols());
        let mut pairs = 0;
        for a in 0..n {
            for b in 0..n {
                assert!(
                    view.route(labels.id(a), labels.id(b), 4 * n as u32)
                        .delivered(),
                    "seed {seed}: {} -> {} failed",
                    labels.id(a),
                    labels.id(b)
                );
                pairs += 1;
            }
        }
        assert_eq!(pairs, n * n);
        // sanity: the physical graph was connected (bootstrap needs it)
        assert!(algo::is_connected(&g));
    }
}

/// Deterministic replay: same seed, same message counts.
#[test]
fn bootstrap_is_deterministic() {
    let run = || {
        let mut rng = Rng::new(33);
        let (g, _) = generators::unit_disk_connected(25, 1.3, &mut rng);
        let labels = Labeling::random(25, &mut rng);
        let cfg = BootstrapConfig {
            seed: 99,
            ..Default::default()
        };
        let (report, _) = run_linearized_bootstrap(&g, &labels, &cfg);
        (report.ticks, report.total_messages, report.messages.clone())
    };
    assert_eq!(run(), run());
}

/// The graph stays unused if not connected — documents the precondition.
#[test]
fn disconnected_graph_cannot_fully_converge() {
    let g = Graph::new(4); // four isolated nodes
    let labels = Labeling::sequential(4, 10);
    let cfg = BootstrapConfig {
        max_ticks: 2_000,
        ..Default::default()
    };
    let (report, _) = run_linearized_bootstrap(&g, &labels, &cfg);
    assert!(!report.converged);
}

proptest! {
    /// The wire decoder is total: arbitrary bytes either decode or error,
    /// never panic — and every encoded message round-trips.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = bytes::Bytes::from(bytes);
        let _ = ssr_core::message::decode(&mut buf);
    }

    #[test]
    fn encoded_messages_roundtrip(
        route in proptest::collection::vec(any::<u64>(), 2..20),
        target in proptest::collection::vec(any::<u64>(), 1..20),
        reply in proptest::collection::vec(any::<u64>(), 1..20),
        pos in 0usize..10,
        seq: u32,
    ) {
        use ssr_core::message::{decode, encode_to_bytes, ForwardEnvelope, Payload, SsrMsg};
        let msg = SsrMsg::Forward(ForwardEnvelope {
            route: route.into_iter().map(NodeId).collect(),
            pos,
            trace: vec![],
            payload: Payload::Notify {
                initiator: NodeId(1),
                target_route: target.into_iter().map(NodeId).collect(),
                reply_route: reply.into_iter().map(NodeId).collect(),
                seq: ssr_types::SeqNo(seq),
            },
        });
        let mut buf = encode_to_bytes(&msg);
        prop_assert_eq!(decode(&mut buf).unwrap(), msg);
    }
}
