//! The lint rules.
//!
//! Each rule is a pass over the token stream of one file (plus one
//! workspace-level pass for crate attributes). The rules encode invariants
//! that `clippy` cannot express because they are *this workspace's* policy,
//! not general Rust hygiene:
//!
//! * [`determinism-collections`](RULE_COLLECTIONS) — protocol/sim state
//!   crates must not use `std::collections::HashMap`/`HashSet`: their
//!   iteration order is randomized per process, so any map whose order can
//!   leak into messages, metrics, or traces silently breaks the
//!   byte-identical same-seed guarantee the chaos and obs gates rely on.
//! * [`determinism-time`](RULE_TIME) — no wall clocks, OS entropy, or
//!   threads outside the sanctioned infrastructure: simulated time is the
//!   only clock a protocol may read.
//! * [`metric-registry`](RULE_METRICS) — every metric-key literal must
//!   resolve against [`ssr_sim::registry`], so a typo'd name fails CI
//!   instead of forking a series.
//! * [`match-wildcard`](RULE_WILDCARD) — protocol handler matches over
//!   message enums must stay exhaustive: a `_ =>` arm would silently
//!   swallow newly added message variants.
//! * [`forbid-unsafe`](RULE_UNSAFE) — protocol crates must carry
//!   `#![forbid(unsafe_code)]`.

use crate::lexer::{lex, Tok, Token};

/// Rule id: forbidden hash collections in protocol crates.
pub const RULE_COLLECTIONS: &str = "determinism-collections";
/// Rule id: wall clock / OS entropy / threads outside the allowlist.
pub const RULE_TIME: &str = "determinism-time";
/// Rule id: metric-key literal not in the canonical registry.
pub const RULE_METRICS: &str = "metric-registry";
/// Rule id: wildcard arm in a message-enum handler match.
pub const RULE_WILDCARD: &str = "match-wildcard";
/// Rule id: missing `#![forbid(unsafe_code)]` crate attribute.
pub const RULE_UNSAFE: &str = "forbid-unsafe";

/// Crates holding protocol or simulator state: any iteration-order leak
/// here can reach messages, metrics, or traces.
pub const PROTOCOL_CRATES: &[&str] = &["core", "graph", "linearize", "sim", "types", "vrr"];

/// Crates that must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE_CRATES: &[&str] = &[
    "core",
    "graph",
    "linearize",
    "sim",
    "types",
    "vrr",
    "workloads",
];

/// Crates exempt from [`RULE_TIME`]: the criterion stand-in exists to read
/// the wall clock, and the obs tooling reports real elapsed time.
pub const TIME_ALLOWED_CRATES: &[&str] = &["criterion", "obs"];

/// Files allowed to use `std::thread`: the sweep orchestrator is the one
/// sanctioned thread user in the workspace — it fans independent
/// simulations out over scoped workers and collects results by job index,
/// so scheduling never reaches the output bytes (docs/SWEEPS.md). Wall
/// clocks and OS entropy stay banned even here.
pub const THREAD_ALLOWED_FILES: &[&str] = &["crates/workloads/src/orchestrator.rs"];

/// Files whose `match` expressions over message enums must be exhaustive
/// (the protocol message handlers).
pub const HANDLER_FILES: &[&str] = &[
    "crates/core/src/isprp.rs",
    "crates/core/src/node.rs",
    "crates/vrr/src/bootstrap.rs",
    "crates/vrr/src/node.rs",
];

/// The message enums whose variants a handler match must enumerate.
pub const MESSAGE_ENUMS: &[&str] = &[
    "Payload",
    "PathPayload",
    "RoutedPayload",
    "SsrMsg",
    "VrrMsg",
];

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `RULE_*` ids).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending symbol or key — stable across line drift, used for
    /// baseline matching.
    pub symbol: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line rule symbol — message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{} {} `{}` — {}",
            self.file, self.line, self.rule, self.symbol, self.message
        )
    }
}

/// One source file, lexed and annotated for analysis.
pub struct LexedFile {
    /// Crate directory name (`core`, `vrr`, …; `integration-tests` for the
    /// workspace-level test package).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Half-open token-index ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl LexedFile {
    /// Lexes `text` and computes its `#[cfg(test)]` spans.
    pub fn new(crate_name: &str, rel_path: &str, text: &str) -> Self {
        let tokens = lex(text);
        let test_spans = find_test_spans(&tokens);
        LexedFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            tokens,
            test_spans,
        }
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= idx && idx < b)
    }
}

/// Runs every rule over the given files and returns the findings sorted by
/// (file, line, rule).
pub fn analyze(files: &[LexedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        check_collections(f, &mut findings);
        check_time(f, &mut findings);
        check_metrics(f, &mut findings);
        check_wildcard(f, &mut findings);
    }
    check_forbid_unsafe(files, &mut findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `a :: b` starting at `i`.
fn path2_at(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    ident_at(tokens, i) == Some(a)
        && punct_at(tokens, i + 1, ':')
        && punct_at(tokens, i + 2, ':')
        && ident_at(tokens, i + 3) == Some(b)
}

/// Index of the `}` matching the `{` at `open` (or the end of the stream).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert!(punct_at(tokens, open, '{'));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Token-index spans of items annotated `#[cfg(test)]` (test modules and
/// functions). Rule passes that only apply to production code skip these.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    let mut pending_test_attr = false;
    while i < tokens.len() {
        if punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[') {
            // scan the attribute to its matching `]`
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test = false;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    // `cfg(test` — adjacency keeps `cfg(not(test))` live
                    Tok::Ident(s)
                        if s == "cfg"
                            && punct_at(tokens, j + 1, '(')
                            && ident_at(tokens, j + 2) == Some("test") =>
                    {
                        is_test = true;
                    }
                    // plain `#[test]` functions
                    Tok::Ident(s) if s == "test" && j == i + 2 && punct_at(tokens, j + 1, ']') => {
                        is_test = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_test {
                pending_test_attr = true;
            }
            i = j + 1;
            continue;
        }
        if pending_test_attr {
            // the annotated item runs to the end of its first brace block
            let mut j = i;
            while j < tokens.len() && !punct_at(tokens, j, '{') {
                j += 1;
            }
            let end = if j < tokens.len() {
                matching_brace(tokens, j) + 1
            } else {
                tokens.len()
            };
            spans.push((i, end));
            pending_test_attr = false;
            i = end;
            continue;
        }
        i += 1;
    }
    spans
}

// ---------------------------------------------------------------------------
// determinism-collections
// ---------------------------------------------------------------------------

fn check_collections(f: &LexedFile, out: &mut Vec<Finding>) {
    if !PROTOCOL_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    for t in &f.tokens {
        if let Tok::Ident(s) = &t.tok {
            if s == "HashMap" || s == "HashSet" {
                out.push(Finding {
                    rule: RULE_COLLECTIONS,
                    file: f.rel_path.clone(),
                    line: t.line,
                    symbol: s.clone(),
                    message: format!(
                        "std::collections::{s} has per-process-randomized iteration \
                         order; use BTreeMap/BTreeSet so protocol state, metrics, and \
                         traces stay a deterministic function of (config, seed)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// determinism-time
// ---------------------------------------------------------------------------

fn check_time(f: &LexedFile, out: &mut Vec<Finding>) {
    if TIME_ALLOWED_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let (symbol, what): (&str, &str) = if path2_at(toks, i, "Instant", "now") {
            ("Instant::now", "wall-clock reads")
        } else if path2_at(toks, i, "SystemTime", "now") {
            ("SystemTime::now", "wall-clock reads")
        } else if ident_at(toks, i) == Some("thread_rng") {
            ("thread_rng", "OS entropy")
        } else if path2_at(toks, i, "std", "thread") {
            if THREAD_ALLOWED_FILES.contains(&f.rel_path.as_str()) {
                continue;
            }
            ("std::thread", "threads")
        } else {
            continue;
        };
        out.push(Finding {
            rule: RULE_TIME,
            file: f.rel_path.clone(),
            line: toks[i].line,
            symbol: symbol.to_string(),
            message: format!(
                "{what} make runs irreproducible; simulated time (ssr_sim::Time) and \
                 the seeded ssr_types::Rng are the only clocks/entropy protocols may \
                 use (sanctioned uses go in lint-baseline.json)"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// metric-registry
// ---------------------------------------------------------------------------

/// Metrics APIs taking a full key as their first string argument.
const KEY_APIS: &[&str] = &[
    "add",
    "counter",
    "gauge",
    "hist",
    "incr",
    "observe",
    "observe_hist",
];

/// Metrics APIs taking a key *prefix*.
const PREFIX_APIS: &[&str] = &["counter_sum"];

fn check_metrics(f: &LexedFile, out: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        // pattern: `. api ( "literal"`
        if !punct_at(toks, i, '.') {
            continue;
        }
        let Some(api) = ident_at(toks, i + 1) else {
            continue;
        };
        let is_key = KEY_APIS.contains(&api);
        let is_prefix = PREFIX_APIS.contains(&api);
        if !is_key && !is_prefix {
            continue;
        }
        if !punct_at(toks, i + 2, '(') {
            continue;
        }
        let Some(Tok::Str(key)) = toks.get(i + 3).map(|t| &t.tok) else {
            continue;
        };
        if f.in_test(i) {
            continue;
        }
        let ok = if is_key {
            ssr_sim::registry::is_canonical_key(key)
        } else {
            ssr_sim::registry::is_canonical_prefix(key)
        };
        if !ok {
            out.push(Finding {
                rule: RULE_METRICS,
                file: f.rel_path.clone(),
                line: toks[i + 3].line,
                symbol: key.clone(),
                message: format!(
                    "\"{key}\" passed to .{api}() is not in the canonical metric \
                     registry (ssr_sim::registry); a typo here forks a series nothing \
                     aggregates — register the key or fix the name"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// match-wildcard
// ---------------------------------------------------------------------------

fn check_wildcard(f: &LexedFile, out: &mut Vec<Finding>) {
    if !HANDLER_FILES.contains(&f.rel_path.as_str()) {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("match") {
            continue;
        }
        // find the match body's `{`: first brace at paren/bracket depth 0
        let mut j = i + 1;
        let (mut dp, mut db) = (0i32, 0i32);
        let open = loop {
            match toks.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('(')) => dp += 1,
                Some(Tok::Punct(')')) => dp -= 1,
                Some(Tok::Punct('[')) => db += 1,
                Some(Tok::Punct(']')) => db -= 1,
                Some(Tok::Punct('{')) if dp == 0 && db == 0 => break j,
                Some(_) => {}
                None => return,
            }
            j += 1;
        };
        let close = matching_brace(toks, open);
        if let Some(wild_line) = wildcard_over_message_enum(toks, open, close) {
            out.push(Finding {
                rule: RULE_WILDCARD,
                file: f.rel_path.clone(),
                line: wild_line,
                symbol: "_ =>".to_string(),
                message: "wildcard arm in a protocol-handler match over a message enum \
                          swallows future variants silently; enumerate the remaining \
                          variants so adding a message forces a handling decision here"
                    .to_string(),
            });
        }
    }
}

/// Inspects the arms of the match body in `tokens[open..=close]`. Returns
/// the wildcard arm's line when the arms both reference a message enum
/// (`Enum::Variant` pattern) and include a bare `_` arm.
fn wildcard_over_message_enum(tokens: &[Token], open: usize, close: usize) -> Option<u32> {
    let mut saw_enum = false;
    let mut wildcard_line: Option<u32> = None;
    let mut i = open + 1;
    while i < close {
        // ---- pattern: tokens until `=>` at relative depth 0 ----
        let start = i;
        let (mut dp, mut db, mut dc) = (0i32, 0i32, 0i32);
        let mut arrow = None;
        while i < close {
            match tokens[i].tok {
                Tok::Punct('(') => dp += 1,
                Tok::Punct(')') => dp -= 1,
                Tok::Punct('[') => db += 1,
                Tok::Punct(']') => db -= 1,
                Tok::Punct('{') => dc += 1,
                Tok::Punct('}') => dc -= 1,
                Tok::Punct('=')
                    if dp == 0 && db == 0 && dc == 0 && punct_at(tokens, i + 1, '>') =>
                {
                    arrow = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let arrow = arrow?;
        let pattern = &tokens[start..arrow];
        let first = pattern.first()?;
        // bare `_` (possibly with a guard: `_ if …` still swallows variants)
        if matches!(&first.tok, Tok::Ident(s) if s == "_")
            && (pattern.len() == 1 || matches!(&pattern[1].tok, Tok::Ident(s) if s == "if"))
        {
            wildcard_line.get_or_insert(first.line);
        }
        for (k, t) in pattern.iter().enumerate() {
            if let Tok::Ident(s) = &t.tok {
                if MESSAGE_ENUMS.contains(&s.as_str())
                    && matches!(pattern.get(k + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                {
                    saw_enum = true;
                }
            }
        }
        // ---- arm body: a block, or an expression up to `,` at depth 0 ----
        i = arrow + 2;
        if punct_at(tokens, i, '{') {
            i = matching_brace(tokens, i) + 1;
            // optional trailing comma
            if punct_at(tokens, i, ',') {
                i += 1;
            }
        } else {
            let (mut dp, mut db, mut dc) = (0i32, 0i32, 0i32);
            while i < close {
                match tokens[i].tok {
                    Tok::Punct('(') => dp += 1,
                    Tok::Punct(')') => dp -= 1,
                    Tok::Punct('[') => db += 1,
                    Tok::Punct(']') => db -= 1,
                    Tok::Punct('{') => dc += 1,
                    Tok::Punct('}') => dc -= 1,
                    Tok::Punct(',') if dp == 0 && db == 0 && dc == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    if saw_enum {
        wildcard_line
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// forbid-unsafe
// ---------------------------------------------------------------------------

fn check_forbid_unsafe(files: &[LexedFile], out: &mut Vec<Finding>) {
    for &krate in FORBID_UNSAFE_CRATES {
        let lib_path = format!("crates/{krate}/src/lib.rs");
        let Some(lib) = files.iter().find(|f| f.rel_path == lib_path) else {
            continue; // crate not in this scan (e.g. fixture trees in tests)
        };
        let toks = &lib.tokens;
        let has = (0..toks.len()).any(|i| {
            punct_at(toks, i, '#')
                && punct_at(toks, i + 1, '!')
                && punct_at(toks, i + 2, '[')
                && ident_at(toks, i + 3) == Some("forbid")
                && punct_at(toks, i + 4, '(')
                && ident_at(toks, i + 5) == Some("unsafe_code")
        });
        if !has {
            out.push(Finding {
                rule: RULE_UNSAFE,
                file: lib_path,
                line: 1,
                symbol: "#![forbid(unsafe_code)]".to_string(),
                message: format!(
                    "protocol crate `{krate}` must forbid unsafe code at the crate \
                     root; add #![forbid(unsafe_code)] to its lib.rs"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(crate_name: &str, rel_path: &str, src: &str) -> Vec<Finding> {
        analyze(&[LexedFile::new(crate_name, rel_path, src)])
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- determinism-collections ----

    #[test]
    fn collections_fire_in_protocol_crates() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }";
        let f = run("core", "crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_COLLECTIONS, RULE_COLLECTIONS]);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
        assert_eq!(f[0].symbol, "HashMap");
    }

    #[test]
    fn collections_pass_outside_protocol_crates_and_on_btree() {
        assert!(run(
            "bench",
            "crates/bench/src/x.rs",
            "use std::collections::HashSet;"
        )
        .is_empty());
        assert!(run(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::BTreeMap;"
        )
        .is_empty());
    }

    #[test]
    fn collections_ignore_comments_and_strings() {
        let src = "// a HashMap here\nconst S: &str = \"HashMap\";";
        assert!(run("core", "crates/core/src/x.rs", src).is_empty());
    }

    // ---- determinism-time ----

    #[test]
    fn time_rules_fire_everywhere_but_the_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_of(&run("core", "crates/core/src/x.rs", src)),
            vec![RULE_TIME]
        );
        assert_eq!(
            rules_of(&run("bench", "crates/bench/src/bin/e.rs", src)),
            vec![RULE_TIME]
        );
        assert!(run("criterion", "crates/criterion/src/lib.rs", src).is_empty());
        assert!(run("obs", "crates/obs/src/main.rs", src).is_empty());
    }

    #[test]
    fn entropy_and_threads_fire() {
        let f = run(
            "sim",
            "crates/sim/src/x.rs",
            "fn f() { let r = thread_rng(); std::thread::spawn(|| {}); }",
        );
        assert_eq!(rules_of(&f), vec![RULE_TIME, RULE_TIME]);
        assert_eq!(f[0].symbol, "thread_rng");
        assert_eq!(f[1].symbol, "std::thread");
    }

    #[test]
    fn threads_allowed_only_in_the_orchestrator() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        // the one sanctioned thread user: the sweep orchestrator
        assert!(run("workloads", "crates/workloads/src/orchestrator.rs", src).is_empty());
        // same code anywhere else still fires
        assert_eq!(
            rules_of(&run("workloads", "crates/workloads/src/table.rs", src)),
            vec![RULE_TIME]
        );
        // the allowlist covers threads only — clocks stay banned there
        assert_eq!(
            rules_of(&run(
                "workloads",
                "crates/workloads/src/orchestrator.rs",
                "fn f() { let t = Instant::now(); }"
            )),
            vec![RULE_TIME]
        );
    }

    #[test]
    fn simulated_time_passes() {
        assert!(run("core", "crates/core/src/x.rs", "fn f(t: Time) { t.now(); }").is_empty());
    }

    // ---- metric-registry ----

    #[test]
    fn canonical_keys_pass() {
        let src = r#"fn f(m: &mut Metrics) {
            m.incr("tx.total");
            m.observe_hist("route.len", 3);
            m.observe("probe.locally_consistent", 0.5);
            m.counter_sum("msg.");
        }"#;
        assert!(run("core", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn typod_key_fires() {
        let f = run(
            "core",
            "crates/core/src/x.rs",
            r#"fn f(m: &mut Metrics) { m.incr("tx.totall"); }"#,
        );
        assert_eq!(rules_of(&f), vec![RULE_METRICS]);
        assert_eq!(f[0].symbol, "tx.totall");
    }

    #[test]
    fn unregistered_prefix_fires() {
        let f = run(
            "core",
            "crates/core/src/x.rs",
            r#"fn f(m: &Metrics) { m.counter_sum("bogus."); }"#,
        );
        assert_eq!(rules_of(&f), vec![RULE_METRICS]);
    }

    #[test]
    fn test_modules_are_exempt_from_metric_rule() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn t(m: &mut Metrics) { m.incr("alpha"); m.add("msg.a", 2); }
            }
        "#;
        assert!(run("sim", "crates/sim/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn non_literal_keys_are_skipped() {
        // dynamic keys cannot be resolved statically; not a finding
        let src = "fn f(m: &mut Metrics, k: &'static str) { m.incr(k); }";
        assert!(run("core", "crates/core/src/x.rs", src).is_empty());
    }

    // ---- match-wildcard ----

    #[test]
    fn wildcard_over_message_enum_fires() {
        let src = r#"
            fn h(&mut self, p: Payload) {
                match p {
                    Payload::Notify { .. } => self.a(),
                    _ => {}
                }
            }
        "#;
        let f = run("core", "crates/core/src/isprp.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_WILDCARD]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn guarded_wildcard_still_fires() {
        let src = r#"
            fn h(&mut self, m: SsrMsg) {
                match m {
                    SsrMsg::Hello { id, probe } => self.hello(id, probe),
                    _ if true => {}
                }
            }
        "#;
        assert_eq!(
            rules_of(&run("core", "crates/core/src/node.rs", src)),
            vec![RULE_WILDCARD]
        );
    }

    #[test]
    fn exhaustive_message_match_passes() {
        let src = r#"
            fn h(&mut self, m: SsrMsg) {
                match m {
                    SsrMsg::Hello { id, probe } => self.hello(id, probe),
                    SsrMsg::Forward(env) => self.fwd(env),
                    SsrMsg::Flood { origin, trace } => self.flood(origin, trace),
                }
            }
        "#;
        assert!(run("core", "crates/core/src/node.rs", src).is_empty());
    }

    #[test]
    fn wildcard_over_non_message_match_passes() {
        // Option matches and timer-token matches keep their wildcards
        let src = r#"
            fn h(&mut self, token: u64) {
                match token & 0xFF {
                    TOKEN_ACT => self.act(),
                    _ => {}
                }
                match self.greedy_next(t) {
                    Some(next) if ttl > 0 => self.send(next),
                    _ => self.stall(),
                }
            }
        "#;
        assert!(run("vrr", "crates/vrr/src/node.rs", src).is_empty());
    }

    #[test]
    fn nested_wildcard_inside_message_arm_body_is_fine() {
        // the wildcard belongs to the inner Option match, not the message
        // match
        let src = r#"
            fn h(&mut self, m: VrrMsg) {
                match m {
                    VrrMsg::Hello { id, rep } => match self.greedy_next(id) {
                        Some(n) => self.send(n),
                        _ => self.stall(),
                    },
                    VrrMsg::Routed { ttl, payload } => self.routed(ttl, payload),
                }
            }
        "#;
        assert!(run("vrr", "crates/vrr/src/node.rs", src).is_empty());
    }

    #[test]
    fn handler_scope_is_respected() {
        // same code outside the handler files is not checked
        let src = "fn h(p: Payload) { match p { Payload::Notify { .. } => {}, _ => {} } }";
        assert!(run("core", "crates/core/src/cache.rs", src).is_empty());
    }

    // ---- forbid-unsafe ----

    #[test]
    fn missing_forbid_unsafe_fires() {
        let lib = LexedFile::new("core", "crates/core/src/lib.rs", "pub mod cache;");
        let f = analyze(&[lib]);
        assert_eq!(rules_of(&f), vec![RULE_UNSAFE]);
        assert_eq!(f[0].file, "crates/core/src/lib.rs");
    }

    #[test]
    fn present_forbid_unsafe_passes() {
        let lib = LexedFile::new(
            "core",
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod cache;",
        );
        assert!(analyze(&[lib]).is_empty());
    }

    // ---- ordering ----

    #[test]
    fn findings_are_sorted() {
        let a = LexedFile::new("core", "crates/core/src/b.rs", "type M = HashMap<u8, u8>;");
        let b = LexedFile::new("core", "crates/core/src/a.rs", "type S = HashSet<u8>;");
        let f = analyze(&[a, b]);
        assert_eq!(f[0].file, "crates/core/src/a.rs");
        assert_eq!(f[1].file, "crates/core/src/b.rs");
    }
}
