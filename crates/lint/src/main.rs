//! The `ssr-lint` CLI.
//!
//! ```text
//! ssr-lint --workspace [--root DIR] [--baseline FILE] [--json]
//! ```
//!
//! Exit codes: `0` clean (or everything suppressed), `1` live findings,
//! `2` usage or I/O error. CI runs
//! `cargo run -p ssr-lint -- --workspace --baseline lint-baseline.json`
//! between the clippy and fmt steps.

use std::path::PathBuf;
use std::process::ExitCode;

use ssr_lint::{workspace, Baseline, Finding};
use ssr_obs::json::Value;

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
}

const USAGE: &str = "usage: ssr-lint --workspace [--root DIR] [--baseline FILE] [--json]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        baseline: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if !args.workspace {
        return Err(format!("nothing to do: pass --workspace\n{USAGE}"));
    }
    Ok(args)
}

fn render_json(findings: &[Finding], suppressed: usize) -> String {
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Obj(vec![
                ("rule".into(), Value::Str(f.rule.to_string())),
                ("file".into(), Value::Str(f.file.clone())),
                ("line".into(), Value::Num(f.line as f64)),
                ("symbol".into(), Value::Str(f.symbol.clone())),
                ("message".into(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str("ssr-lint/1".into())),
        ("findings".into(), Value::Arr(items)),
        ("suppressed".into(), Value::Num(suppressed as f64)),
    ])
    .to_json_pretty()
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let start = args
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok())
        .ok_or("cannot determine a starting directory")?;
    let root = workspace::find_root(&start)
        .ok_or_else(|| format!("no workspace root at or above {}", start.display()))?;

    let files = workspace::scan(&root).map_err(|e| format!("scan failed: {e}"))?;
    let findings = ssr_lint::analyze(&files);

    let (live, suppressed, stale) = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
            let baseline = Baseline::parse(&text)?;
            let (live, suppressed, stale) = baseline.apply(findings);
            let stale: Vec<String> = stale
                .into_iter()
                .map(|s| format!("{} {} `{}`", s.rule, s.file, s.symbol))
                .collect();
            (live, suppressed, stale)
        }
        None => (findings, 0, Vec::new()),
    };

    if args.json {
        println!("{}", render_json(&live, suppressed));
    } else {
        for f in &live {
            println!("{}", f.render());
        }
        for s in &stale {
            eprintln!("ssr-lint: warning: stale baseline entry: {s}");
        }
        println!(
            "ssr-lint: {} file(s), {} finding(s), {} suppressed",
            files.len(),
            live.len(),
            suppressed
        );
    }
    Ok(live.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ssr-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
